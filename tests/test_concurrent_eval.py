"""Concurrent evaluation property tests (the PR's tentpole): with all
per-query accounting moved onto :class:`EvalContext`, two requests may
evaluate the *same* disk-backed document at the same time — each context
still machine-asserts scan-once, one-pass-per-op and zero leaked pins for
its own request, and every result stays byte-identical to a serial run.

The old design kept scan counters and I/O windows on the shared vectors
(guarded by a per-member evaluation lock); these tests are exactly the
workloads that lock serialized and the shared counters mis-attributed."""

import threading

import pytest

from repro.core.context import EvalContext
from repro.core.engine import eval_query, eval_xq
from repro.core.vdoc import VectorizedDocument
from repro.datasets.synth import xmark_like_xml
from repro.repo import Repository

N_THREADS = 8
ROUNDS = 3

XPATHS = [
    "/site/people/person[profile/age = '32']/name",
    "//item[quantity > 5]/name",
    "/site/regions/*/item/quantity/text()",
]

XQ_JOIN = ("for $c in /site/closed_auctions/closed_auction, "
           "$p in /site/people/person where $c/buyer = $p/@id "
           "return <pair>{$p/name}{$c/price}</pair>")


@pytest.fixture(scope="module")
def saved(tmp_path_factory):
    xml = xmark_like_xml(30, seed=11)
    path = str(tmp_path_factory.mktemp("cc") / "doc.vdoc")
    VectorizedDocument.from_xml(xml).save(path, page_size=256)
    return path


def _run_threads(worker, n=N_THREADS):
    """Run ``worker(idx)`` on ``n`` threads; re-raise the first failure."""
    errors: list[BaseException] = []

    def _wrap(i):
        try:
            worker(i)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=_wrap, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


def test_concurrent_xpath_same_member_byte_identical(saved):
    with VectorizedDocument.open(saved, pool_pages=16) as disk:
        expected = {q: eval_query(disk, q, mode="vx").canonical()
                    for q in XPATHS}

        def worker(idx):
            for r in range(ROUNDS):
                q = XPATHS[(idx + r) % len(XPATHS)]
                ctx = EvalContext.for_doc(disk)
                res = eval_query(disk, q, mode="vx", ctx=ctx)
                assert res.canonical() == expected[q]
                # this thread's own invariants, asserted per request
                assert all(c <= 1 for c in ctx.scan_counts(disk).values())
                assert disk.pool.pinned_local() == 0

        _run_threads(worker)
        assert disk.pool.pinned_total() == 0


def test_concurrent_xq_join_same_member_byte_identical(saved):
    with VectorizedDocument.open(saved, pool_pages=16) as disk:
        expected = eval_xq(disk, XQ_JOIN).to_xml()

        def worker(idx):
            for _ in range(ROUNDS):
                ctx = EvalContext.for_doc(disk)
                res = eval_xq(disk, XQ_JOIN, ctx=ctx)
                assert res.to_xml() == expected
                assert disk.pool.pinned_local() == 0

        _run_threads(worker)
        assert disk.pool.pinned_total() == 0


def test_concurrent_io_windows_are_per_context(saved):
    """Two contexts racing the same cold vector: whichever materializes
    it pays the physical reads, but *neither* context's window may exceed
    one chain pass — concurrent faults no longer inflate a shared
    counter past the invariant bound."""
    with VectorizedDocument.open(saved, pool_pages=16) as disk:
        barrier = threading.Barrier(N_THREADS)
        q = "/site/people/person[profile/age = '32']/name"

        def worker(idx):
            ctx = EvalContext.for_doc(disk)
            barrier.wait()          # maximize same-vector races
            eval_query(disk, q, mode="vx", ctx=ctx)
            for v in disk.vectors.values():
                assert ctx.pages_in_window(v) <= v.n_pages

        _run_threads(worker)


def _make_repo(tmp_path, n_members=3, **open_kw):
    d = str(tmp_path / "repo")
    repo = Repository.init(d, "auctions")
    for i in range(n_members):
        f = tmp_path / f"doc{i}.xml"
        f.write_text(xmark_like_xml(10 + 3 * i, seed=i), encoding="utf-8")
        repo.add(str(f), page_size=512)
    repo.close()
    return Repository.open(d, **open_kw)


REPO_XQ = ("for $p in /site/people/person where $p/profile/age > '30' "
           "return <r>{$p/name}{$p/profile/age}</r>")
REPO_XP = "/site/people/person/name"


def test_concurrent_repository_queries_without_eval_lock(tmp_path):
    """Mixed XQ/XPath over a shared repository from many threads — the
    same member is under evaluation by several requests at once (there is
    no member evaluation lock anymore), and every response matches the
    serial reference byte for byte."""
    with _make_repo(tmp_path, pool_pages=64) as repo:
        exp_xml = repo.xq(REPO_XQ).to_xml()
        exp_counts = [(n, r.count()) for n, r in repo.xpath(REPO_XP)]

        def worker(idx):
            for r in range(ROUNDS):
                if (idx + r) % 2:
                    assert repo.xq(REPO_XQ).to_xml() == exp_xml
                else:
                    got = [(n, res.count())
                           for n, res in repo.xpath(REPO_XP)]
                    assert got == exp_counts
                assert repo.pool.pinned_local() == 0

        _run_threads(worker)
        assert repo.pool.pinned_total() == 0


def test_concurrent_member_open_single_instance(tmp_path):
    """All threads hammering a cold member get the *same* opened document
    (the opening latch admits one leader; everyone else waits), and no
    thread sees a partially opened member."""
    with _make_repo(tmp_path) as repo:
        seen: dict[int, object] = {}
        barrier = threading.Barrier(N_THREADS)

        def worker(idx):
            barrier.wait()
            seen[idx] = repo.member("doc1")

        _run_threads(worker)
        assert len({id(v) for v in seen.values()}) == 1
        assert repo._opening == {}   # no latch left behind
