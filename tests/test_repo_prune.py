"""Repository catalog pruning: members the manifest proves empty are
skipped with zero page I/O, survivors are evaluated
most-selective-first, and results stay byte-identical with pruning on or
off (XQ and XPath)."""

import pytest

from repro.core.qgraph import compile_query
from repro.core.xquery.parser import parse_xq
from repro.datasets.synth import xmark_like_xml
from repro.repo.repository import Repository

XQ = ("for $p in /site/people/person where $p/profile/age > '30' "
      "return <r>{$p/name}{$p/profile/age}</r>")
XQ_JOIN = ("for $c in /site/closed_auctions/closed_auction, "
           "$p in /site/people/person where $c/buyer = $p/@id "
           "return <pair>{$p/name}{$c/price}</pair>")
XPATH = "/site/people/person/name"


def _store_xml(n, seed):
    """Same synthetic shape, different vocabulary: no path aligns with
    /site queries."""
    xml = xmark_like_xml(n, seed=seed)
    return xml.replace("<site>", "<store>", 1).replace("</site>", "</store>")


@pytest.fixture()
def repo(tmp_path):
    """Two matching members (sizes 25 and 8) and two that cannot match."""
    specs = [("big", xmark_like_xml(25, seed=1)),
             ("small", xmark_like_xml(8, seed=2)),
             ("noise0", _store_xml(10, 3)),
             ("noise1", _store_xml(5, 4))]
    for name, xml in specs:
        (tmp_path / f"{name}.xml").write_text(xml, encoding="utf-8")
    with Repository.init(str(tmp_path / "r.repo"), name="r",
                         pool_pages=32) as repo:
        for name, _ in specs:
            repo.add(str(tmp_path / f"{name}.xml"), page_size=512)
        yield repo


def test_pruned_members_cost_zero_pages(repo):
    result = repo.xq(XQ)
    assert sorted(result.pruned) == ["noise0", "noise1"]
    stats = repo.io_stats()
    for name in ("noise0", "noise1"):
        # a pruned member is never even opened, let alone read
        assert name not in repo._open
        assert stats.get(f"{name}.pages_read", 0) == 0
    for name in ("big", "small"):
        assert stats[f"{name}.pages_read"] > 0


def test_pruning_preserves_bytes(repo):
    for query in (XQ, XQ_JOIN):
        assert repo.xq(query).to_xml() == \
            repo.xq(query, prune=False).to_xml()


def test_results_come_back_in_manifest_order(repo):
    result = repo.xq(XQ)
    assert [name for name, _ in result.results] == ["big", "small"]


def test_survivors_ordered_most_selective_first(repo):
    gq, _ = compile_query(parse_xq(XQ))
    order, pruned = repo._member_order(gq)
    # "small" (8 people) has the lower occurrence estimate: goes first
    assert order == ["small", "big"]
    assert sorted(pruned) == ["noise0", "noise1"]


def test_all_members_survive_a_universal_query(repo):
    gq, _ = compile_query(parse_xq(
        "for $p in //person return <r>{$p/name}</r>"))
    order, pruned = repo._member_order(gq)
    assert pruned == [] and sorted(order) == ["big", "noise0", "noise1",
                                              "small"]
    # the noise members *do* hold //person paths under their own root
    result = repo.xq("for $p in //person return <r>{$p/name}</r>")
    assert result.pruned == []


def test_selection_path_absence_prunes(repo):
    """A member whose dataguide lacks the selection's text path cannot
    satisfy the conjunction — pruned even though the variable binds."""
    result = repo.xq("for $p in //person where $p/bogus = 'x' "
                     "return <r>{$p/name}</r>")
    assert sorted(result.pruned) == ["big", "noise0", "noise1", "small"]
    assert result.results == []


def test_xpath_pruning_skips_unalignable_members(repo):
    results = dict(repo.xpath(XPATH))
    assert results["noise0"].count() == 0
    assert results["noise1"].count() == 0
    assert "noise0" not in repo._open and "noise1" not in repo._open
    assert results["big"].count() == 25
    # identical answers with pruning disabled
    full = dict(repo.xpath(XPATH, prune=False))
    assert {n: r.count() for n, r in results.items()} == \
        {n: r.count() for n, r in full.items()}
    assert results["big"].canonical() == full["big"].canonical()


def test_pruned_xq_member_count_matches(repo):
    result = repo.xq(XQ_JOIN)
    assert len(result.results) + len(result.pruned) == 4
