"""Fault-tolerant serving: cooperative deadlines (including the
deterministic every-checkpoint expiry sweep), the buffer pool's bounded
transient-I/O retry, the quarantine lifecycle with supervised recovery,
and the HTTP surface (504s, ``X-Quarantined``, degraded health)."""

import errno
import http.client
import os
import time

import pytest

from repro.core.context import EvalContext
from repro.core.vectors import set_active_context
from repro.datasets.synth import xmark_like_xml
from repro.errors import (
    CorruptDataError,
    DeadlineExceededError,
    PoolExhaustedError,
    StorageError,
)
from repro.repo import Repository
from repro.repo.quarantine import QuarantineRegistry, QuarantineSupervisor
from repro.serve import QueryServer
from repro.storage import BufferPool, PageFile
from repro.storage import faults
from repro.storage.buffer import TransientIOError
from repro.storage.disk import FILE_HEADER
from repro.storage.faults import Fault, FaultPlan

XQ_JOIN = ("for $c in collection('auctions')/site/closed_auctions/"
           "closed_auction, $p in /site/people/person "
           "where $c/buyer = $p/@id "
           "return <pair>{$p/name}{$c/price}</pair>")
XP_NAMES = "/site/people/person/name"
PAGE_SIZE = 512


def _build_repo(tmp_path, sizes=(12, 18)):
    d = str(tmp_path / "repo")
    repo = Repository.init(d, "auctions")
    for i, n in enumerate(sizes):
        f = tmp_path / f"m{i}.xml"
        f.write_text(xmark_like_xml(n, seed=i), encoding="utf-8")
        repo.add(str(f), page_size=PAGE_SIZE)
    repo.close()
    return d


def _corrupt_member(repo_dir, name="m0"):
    """Flip one byte in every data page of a member file; returns the
    original bytes so the test can repair it."""
    path = os.path.join(repo_dir, f"{name}.vdoc")
    original = open(path, "rb").read()
    damaged = bytearray(original)
    off = FILE_HEADER + PAGE_SIZE // 2
    while off < len(damaged):
        damaged[off] ^= 0x40
        off += PAGE_SIZE
    with open(path, "wb") as f:
        f.write(damaged)
    return path, original


def _wait_until(cond, timeout):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if cond():
            return True
        time.sleep(0.02)
    return cond()


# -- cooperative deadlines -------------------------------------------------


def test_deadline_expiry_sweep_every_checkpoint(tmp_path):
    """The deterministic sweep: force expiry at *every* checkpoint index
    a warm evaluation passes — each must unwind with a clean
    DeadlineExceededError and zero leaked pins, and the repository must
    answer the next query normally."""
    repo_dir = _build_repo(tmp_path)
    with Repository.open(repo_dir, pool_pages=16) as repo:
        expected = repo.xq(XQ_JOIN).to_xml()   # cold: materializes columns
        ctx = EvalContext()
        assert repo.xq(XQ_JOIN, ctx=ctx).to_xml() == expected
        n_checkpoints = ctx.checkpoints        # warm, deterministic count
        assert n_checkpoints >= 5

        for i in range(n_checkpoints):
            ctx = EvalContext()
            ctx.expire_at_checkpoint = i
            with pytest.raises(DeadlineExceededError):
                repo.xq(XQ_JOIN, ctx=ctx)
            assert repo.pool.pinned_total() == 0, f"pins leaked at cp {i}"

        # expiry is the request's budget, never the member's health
        assert repo.quarantine.active() == []
        assert repo.xq(XQ_JOIN).to_xml() == expected


def test_deadline_wall_clock_and_disarm(tmp_path):
    repo_dir = _build_repo(tmp_path)
    with Repository.open(repo_dir, pool_pages=16) as repo:
        with pytest.raises(DeadlineExceededError):
            repo.xq(XQ_JOIN, deadline=0.0)
        assert repo.pool.pinned_total() == 0
        assert repo.quarantine.active() == []
        # xpath honors the same budget
        with pytest.raises(DeadlineExceededError):
            repo.xpath(XP_NAMES, deadline=0.0)
        # disarmed (the library default) still works afterwards
        assert repo.xpath(XP_NAMES)


def test_pool_fault_is_a_checkpoint(tmp_path):
    """A buffer-pool page fault consults the thread's active context, so
    an expired deadline stops a scan *before* the physical read — and the
    unwind leaves no pin behind."""
    path = str(tmp_path / "t.pf")
    with PageFile.create(path, page_size=256) as pf:
        pid = pf.allocate()
        pf.write_page(pid, bytearray(b"\x07" * 256))
        pf.sync_close()
    pf = PageFile.open(path)
    pool = BufferPool(pf, capacity=4)
    view = pool._views[0]
    ctx = EvalContext()
    ctx.expire_at_checkpoint = 0
    set_active_context(ctx)
    try:
        with pytest.raises(DeadlineExceededError):
            pool.pin_at(view.fid, pid)
    finally:
        set_active_context(None)
    assert pool.pinned_total() == 0
    assert pool.stats.pages_read == 0   # expired before the physical read
    # the same pool serves the page once the context is gone
    assert bytes(pool.pin_at(view.fid, pid)[:4]) == b"\x07\x07\x07\x07"
    pool.unpin_at(view.fid, pid)
    pool.close()


# -- bounded transient-I/O retry -------------------------------------------


def _page_file_with_data(tmp_path):
    path = str(tmp_path / "retry.pf")
    with PageFile.create(path, page_size=256) as pf:
        pid = pf.allocate()
        pf.write_page(pid, bytearray(b"\x42" * 256))
        pf.sync_close()
    return path, pid


def test_pool_retry_absorbs_transient_oserror(tmp_path):
    path, pid = _page_file_with_data(tmp_path)
    with faults.inject(FaultPlan()) as plan:
        pf = PageFile.open(path)
        pool = BufferPool(pf, capacity=4, io_retries=2, io_retry_delay=0.0)
        view = pool._views[0]
        plan.faults[plan.ops] = Fault("oserror", err=errno.EIO)
        data = pool.pin_at(view.fid, pid)
        assert bytes(data[:4]) == b"\x42" * 4
        pool.unpin_at(view.fid, pid)
        assert pool.stats.read_retries == 1
        assert view.stats.read_retries == 1
        pool.close()


def test_pool_retry_budget_exhausted(tmp_path):
    path, pid = _page_file_with_data(tmp_path)
    with faults.inject(FaultPlan()) as plan:
        pf = PageFile.open(path)
        pool = BufferPool(pf, capacity=4, io_retries=1, io_retry_delay=0.0)
        view = pool._views[0]
        # one fault per attempt: the budget (1 retry) is exhausted
        plan.faults[plan.ops] = Fault("oserror", err=errno.EIO)
        plan.faults[plan.ops + 1] = Fault("oserror", err=errno.EIO)
        with pytest.raises(TransientIOError) as ei:
            pool.pin_at(view.fid, pid)
        assert isinstance(ei.value, StorageError)   # quarantine-eligible
        assert pool.stats.read_retries == 1
        assert pool.pinned_total() == 0             # rolled back cleanly
        # the transient condition has passed: the next pin succeeds
        data = pool.pin_at(view.fid, pid)
        assert bytes(data[:4]) == b"\x42" * 4
        pool.unpin_at(view.fid, pid)
        pool.close()


def test_pool_corruption_is_never_retried(tmp_path):
    path, pid = _page_file_with_data(tmp_path)
    with faults.inject(FaultPlan()) as plan:
        pf = PageFile.open(path)
        pool = BufferPool(pf, capacity=4, io_retries=3, io_retry_delay=0.0)
        view = pool._views[0]
        plan.faults[plan.ops] = Fault("bitflip", byte=17, bit=3)
        with pytest.raises(CorruptDataError):
            pool.pin_at(view.fid, pid)
        assert pool.stats.read_retries == 0   # surfaced immediately
        assert pool.pinned_total() == 0
        pool.close()


# -- quarantine registry + supervisor --------------------------------------


def test_registry_backoff_and_counters():
    now = [100.0]
    reg = QuarantineRegistry(base_delay=1.0, max_delay=8.0, jitter=0.0,
                             clock=lambda: now[0])
    assert reg.quarantine("m0", "page checksum mismatch")
    assert not reg.quarantine("m0", "again")      # one transition wins
    assert reg.is_quarantined("m0") and reg.active() == ["m0"]
    assert reg.due() == []                        # first probe is delayed
    assert reg.next_wake() == pytest.approx(101.0)

    now[0] = 101.5
    assert reg.due() == ["m0"]
    assert not reg.note_probe("m0", healthy=False)
    assert reg.next_wake() == pytest.approx(103.5)   # 2^1 backoff
    now[0] = 104.0
    assert not reg.note_probe("m0", healthy=False)
    assert reg.next_wake() == pytest.approx(108.0)   # 2^2 backoff
    for _ in range(4):                                # capped at max_delay
        assert not reg.note_probe("m0", healthy=False)
    assert reg.next_wake() <= now[0] + 8.0

    assert reg.note_probe("m0", healthy=True)
    assert not reg.is_quarantined("m0")
    snap = reg.snapshot()
    assert snap["quarantined_total"] == 1
    assert snap["reinstated_total"] == 1
    assert snap["probes_total"] == 7
    assert snap["probe_failures"] == 6
    assert snap["active"] == []


def test_repository_quarantine_and_supervised_recovery(tmp_path):
    """The full cycle, driven deterministically (no supervisor thread):
    corrupt page -> first query fails and quarantines -> later queries
    skip and report the member -> a failed probe keeps it out -> on-disk
    repair + clean probe reinstates it -> answers are exact again."""
    repo_dir = _build_repo(tmp_path)
    with Repository.open(repo_dir, pool_pages=16) as repo:
        expected = repo.xq(XQ_JOIN).to_xml()
        expected_xpath = repo.xpath(XP_NAMES)
        assert [n for n, _ in expected_xpath] == ["m0", "m1"]

    path, original = _corrupt_member(repo_dir, "m0")
    with Repository.open(repo_dir, pool_pages=16) as repo:
        with pytest.raises(StorageError, match="m0"):
            repo.xq(XQ_JOIN)
        assert repo.quarantine.active() == ["m0"]
        assert repo.pool.pinned_total() == 0

        # degraded but serving: m0 skipped and *reported*
        res = repo.xq(XQ_JOIN)
        assert res.quarantined == ["m0"]
        skipped = []
        out = repo.xpath(XP_NAMES, skipped=skipped)
        assert skipped == ["m0"]
        assert [n for n, _ in out] == ["m1"]

        sup = QuarantineSupervisor(repo.quarantine, repo._probe_member)
        repo.quarantine._entries["m0"].next_probe = 0.0
        assert sup.run_due() == 0                # still corrupt on disk
        assert repo.quarantine.probe_failures == 1
        assert repo.quarantine.is_quarantined("m0")

        with open(path, "wb") as f:              # operator repairs the file
            f.write(original)
        repo.quarantine._entries["m0"].next_probe = 0.0
        assert sup.run_due() == 1                # clean fsck reinstates
        assert repo.quarantine.active() == []
        assert repo.quarantine.reinstated_total == 1

        # the reopened member serves exact bytes again
        assert repo.xq(XQ_JOIN).to_xml() == expected
        assert repo.pool.pinned_total() == 0


def test_load_failures_do_not_quarantine(tmp_path):
    repo_dir = _build_repo(tmp_path)
    with Repository.open(repo_dir, pool_pages=16) as repo:
        repo._note_quarantine("m0", PoolExhaustedError(16, 16))
        assert repo.quarantine.active() == []


def test_uncacheable_members_counted(tmp_path):
    """A member whose file cannot be stat'ed has no result-cache identity:
    the miss is counted as ``uncacheable``, never silently dropped."""
    repo_dir = _build_repo(tmp_path)
    os.remove(os.path.join(repo_dir, "m0.vdoc"))
    with Repository.open(repo_dir, pool_pages=16,
                         result_cache_bytes=1 << 20) as repo:
        with pytest.raises(StorageError, match="m0"):
            repo.xq(XQ_JOIN)
        assert repo.result_cache.stats()["uncacheable"] >= 1


# -- the HTTP surface ------------------------------------------------------


def _request(srv, method, path, body=None, headers=None):
    conn = http.client.HTTPConnection(*srv.address, timeout=30)
    try:
        conn.request(method, path,
                     body=body.encode("utf-8") if body is not None else None,
                     headers=headers or {})
        resp = conn.getresponse()
        return resp.status, resp.read(), dict(resp.getheaders())
    finally:
        conn.close()


def test_serve_deadline_504_and_bad_header(tmp_path):
    repo_dir = _build_repo(tmp_path)
    srv = QueryServer(repo_dir, port=0, pool_pages=64, workers=4).start()
    try:
        status, body, _ = _request(srv, "POST", "/xq", XQ_JOIN,
                                   {"X-Deadline-Ms": "0.01"})
        assert status == 504
        assert body.startswith(b"error: deadline exceeded")
        for bad in ("nope", "-5", "0", "inf"):
            status, body, _ = _request(srv, "POST", "/xq", XQ_JOIN,
                                       {"X-Deadline-Ms": bad})
            assert status == 400, bad
            assert body.startswith(b"error:")
        # a generous budget changes nothing
        status, ok_body, _ = _request(srv, "POST", "/xq", XQ_JOIN,
                                      {"X-Deadline-Ms": "30000"})
        assert status == 200
        import json
        status, stats, _ = _request(srv, "GET", "/stats")
        snap = json.loads(stats)
        assert snap["timeouts"] >= 1
        assert "quarantine" in snap
    finally:
        srv.shutdown()


def test_serve_quarantine_degraded_and_heals(tmp_path):
    repo_dir = _build_repo(tmp_path)
    srv = QueryServer(repo_dir, port=0, pool_pages=64, workers=4,
                      result_cache_mb=0).start()
    try:
        status, clean_body, headers = _request(srv, "POST", "/xq", XQ_JOIN)
        assert status == 200 and "X-Quarantined" not in headers
    finally:
        srv.shutdown()

    path, original = _corrupt_member(repo_dir, "m0")
    srv = QueryServer(repo_dir, port=0, pool_pages=64, workers=4,
                      result_cache_mb=0, deadline=5.0).start()
    # fast probe schedule so the healing phase stays quick
    srv.repo.quarantine.base_delay = 0.05
    srv.repo.quarantine.max_delay = 0.2
    try:
        status, body, _ = _request(srv, "POST", "/xq", XQ_JOIN)
        assert status == 500 and b"m0" in body
        assert srv.repo.quarantine.active() == ["m0"]

        status, body, headers = _request(srv, "POST", "/xq", XQ_JOIN)
        assert status == 200
        assert headers.get("X-Quarantined") == "m0"
        assert body != clean_body

        status, body, headers = _request(srv, "POST", "/xpath", XP_NAMES)
        assert status == 200
        assert headers.get("X-Quarantined") == "m0"
        assert not body.startswith(b"m0:")

        status, body, _ = _request(srv, "GET", "/healthz")
        assert status == 200                     # alive: do not restart it
        assert body.startswith(b"degraded: quarantined=m0")

        import json
        status, body, _ = _request(srv, "GET", "/repo")
        repo_view = json.loads(body)
        assert repo_view["degraded"] is True
        assert repo_view["quarantined"] == ["m0"]
        assert repo_view["deadline_s"] == 5.0
        by_name = {m["name"]: m for m in repo_view["members"]}
        assert by_name["m0"]["quarantined"] is True
        assert by_name["m1"]["quarantined"] is False

        with open(path, "wb") as f:              # repair; no restart
            f.write(original)
        assert _wait_until(
            lambda: not srv.repo.quarantine.active(), 10.0), \
            srv.repo.quarantine.snapshot()

        status, body, _ = _request(srv, "GET", "/healthz")
        assert status == 200 and body == b"ok\n"
        status, body, headers = _request(srv, "POST", "/xq", XQ_JOIN)
        assert status == 200
        assert "X-Quarantined" not in headers
        assert body == clean_body                # byte-exact post-heal
        status, body, _ = _request(srv, "GET", "/stats")
        snap = json.loads(body)
        assert snap["quarantine"]["reinstated_total"] >= 1
        assert snap["pin_leaks"] == 0
    finally:
        srv.shutdown()
