import pytest

from repro.core.xpath import CHILD, DESCENDANT, parse_xpath
from repro.errors import XPathSyntaxError


def test_simple_path():
    p = parse_xpath("/a/b/c")
    assert [s.test for s in p.steps] == ["a", "b", "c"]
    assert all(s.axis == CHILD for s in p.steps)


def test_descendant_wildcard_text_attr():
    p = parse_xpath("//a/*/text()")
    assert p.steps[0].axis == DESCENDANT
    assert p.steps[1].test == "*"
    assert p.steps[2].test == "#"
    p = parse_xpath("/a//b/@id")
    assert p.steps[1].axis == DESCENDANT
    assert p.steps[2].test == "@id"


def test_predicates():
    p = parse_xpath("/a/b[c/d = 'x'][e]/f[g != \"y\"][h/text() <= 3]")
    b = p.steps[1]
    assert b.preds[0].relpath == ("c", "d")
    assert b.preds[0].op == "=" and b.preds[0].value == "x"
    assert b.preds[1].relpath == ("e",) and b.preds[1].op is None
    f = p.steps[2]
    assert f.preds[0].op == "!=" and f.preds[0].value == "y"
    assert f.preds[1].relpath == ("h", "#")
    assert f.preds[1].op == "<=" and f.preds[1].value == "3"


def test_attr_predicate():
    p = parse_xpath("/a/b[@id = '7']")
    assert p.steps[1].preds[0].relpath == ("@id",)


def test_roundtrip_str():
    s = "/a//b[c = 'x']/text()"
    assert str(parse_xpath(s)).replace(" ", "") == s.replace(" ", "")


@pytest.mark.parametrize(
    "bad",
    [
        "a/b",            # relative
        "/a/b[",          # unterminated predicate
        "/a/text()/b",    # text() not last
        "/a/@id/b",       # attr followed by element
        "/a[*]",          # wildcard in predicate
        "/a[b//c]",       # descendant in predicate
        "/a/b[c = ]",     # missing literal
        "/",              # empty step
        "",               # empty
    ],
)
def test_syntax_errors(bad):
    with pytest.raises(XPathSyntaxError):
        parse_xpath(bad)
