"""Satellite tests: bulk ``occ`` statistics and cross-path document order.

* ``NodeStore.occ_column`` computes per-node path statistics iteratively
  (one topological pass per suffix) — it must agree with the definitional
  recursion on arbitrary documents and survive relative paths far beyond
  the Python recursion limit;
* ``PathsCatalog.order_keys`` assigns every occurrence its global preorder
  rank, comparable *across* label paths — the basis for interleaving
  ``//`` results in true document order without decompression.
"""

import random
import sys

import numpy as np
import pytest

from repro.core.engine import eval_query
from repro.core.vdoc import VectorizedDocument
from repro.xmldata.model import node_label, xpath_children

from test_roundtrip_property import random_tree


def _occ_ref(store, nid, rel):
    """Definitional recursion: occ(n, (l, *rest)) = Σ count·occ(c, rest)."""
    if not rel:
        return 1
    return sum(k * _occ_ref(store, c, rel[1:])
               for c, k in store.children(nid)
               if store.label(c) == rel[0])


@pytest.mark.parametrize("seed", range(15))
def test_occ_column_matches_definition(seed):
    vdoc = VectorizedDocument.from_tree(random_tree(random.Random(seed + 40)))
    store, catalog = vdoc.store, vdoc.catalog
    nodes = sorted(store.reachable(vdoc.root))
    rels = {g[d:] for g in catalog.dataguide() for d in range(len(g))}
    for rel in sorted(rels):
        col = store.occ_column(rel)
        assert col.dtype == np.int64 and len(col) == len(store)
        for nid in nodes:
            assert col[nid] == _occ_ref(store, nid, rel), (nid, rel)


def test_occ_column_beyond_recursion_limit():
    depth = sys.getrecursionlimit() + 300
    xml = "<a>" * depth + "x" + "</a>" * depth
    vdoc = VectorizedDocument.from_xml(xml)
    rel = ("a",) * (depth - 1) + ("#",)
    # one occurrence of the full chain under the root; no RecursionError
    assert vdoc.store.occ(vdoc.root, rel) == 1
    assert vdoc.catalog.extension_total(("a",), rel) == 1


def test_occ_column_extends_after_store_growth():
    vdoc = VectorizedDocument.from_xml("<a><b><c>1</c></b><b><c>2</c></b></a>")
    store = vdoc.store
    col = store.occ_column(("b", "c"))
    assert col[vdoc.root] == 2
    # result construction interns new nodes later; cached columns must
    # cover them on the next request
    b = store.occ_column(("c",))
    new = store.intern_list("wrap", [vdoc.root, vdoc.root])
    grown = store.occ_column(("b", "c"))
    assert len(grown) == len(store)
    assert store.occ(new, ("a", "b", "c")) == 4
    assert list(grown[: len(col)]) == list(col)
    assert len(store.occ_column(("c",))) == len(store) and b is not None


def _expected_ranks(tree):
    """Global preorder position of every node, grouped by root label path."""
    ranks: dict[tuple, list[int]] = {}
    pos = 0

    def walk(node, path):
        nonlocal pos
        ranks.setdefault(path, []).append(pos)
        pos += 1
        for c in xpath_children(node):
            walk(c, (*path, node_label(c)))

    walk(tree, (node_label(tree),))
    return ranks


@pytest.mark.parametrize("seed", range(15))
def test_order_keys_are_global_preorder_ranks(seed):
    tree = random_tree(random.Random(seed + 77))
    vdoc = VectorizedDocument.from_tree(tree)
    catalog = vdoc.catalog
    expected = _expected_ranks(tree)
    assert set(expected) == set(catalog.dataguide())
    for path in catalog.dataguide():
        keys = catalog.order_keys(path)
        assert list(keys) == expected[path], path
        assert len(keys) == catalog.index(path).total


@pytest.mark.parametrize("seed", range(15))
def test_descendant_results_interleave_in_document_order(seed):
    """`//` text results must come out exactly as a document-order tree
    walk emits them, even when several concrete paths interleave."""
    vdoc = VectorizedDocument.from_tree(random_tree(random.Random(seed + 31)))
    for q in ["//b/text()", "//c//text()", "//*/text()", "//@id"]:
        vx = eval_query(vdoc, q, mode="vx")
        naive = eval_query(vdoc, q, mode="naive")
        assert vx.text_values() == naive.text_values(), q
        assert vx.canonical() == naive.canonical(), q


def test_interleaving_fixed_example():
    vdoc = VectorizedDocument.from_xml(
        "<r><x><y>1</y></x><z><y>2</y></z><x><y>3</y></x><y>4</y></r>")
    vx = eval_query(vdoc, "//y/text()", mode="vx")
    # occurrences of r/x/y, r/z/y and r/y interleaved by document position,
    # not grouped per concrete path
    assert vx.text_values() == ["1", "2", "3", "4"]
