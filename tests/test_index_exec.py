"""Index-aware execution: indexed and scan access produce byte-identical
results (memory and disk, batched and per-combo), the planner stamps the
access path it actually priced cheaper, repeated compiles yield the
identical plan, and format-v2 files (no index segments) open unchanged."""

import pytest

from repro.core.engine import eval_xq
from repro.core.planner import plan_query
from repro.core.qgraph import compile_query
from repro.core.vdoc import VectorizedDocument
from repro.core.xquery.parser import parse_xq
from repro.datasets.synth import xmark_like_xml
from repro.storage import vdocfile
from repro.storage.fsck import verify_vdoc
from repro.storage.vdocfile import open_vdoc, save_vdoc

N_PEOPLE = 60

QUERIES = {
    "eq-selection": (
        "for $p in /site/people/person where $p/name = 'name 3' "
        "return <r>{$p/emailaddress}</r>"),
    "attr-selection": (
        "for $p in /site/people/person where $p/@id = 'person5' "
        "return <r>{$p/name}</r>"),
    "neq-selection": (
        "for $p in /site/people/person where $p/name != 'name 3' "
        "return <r>{$p/name}</r>"),
    "range-selection": (
        "for $p in /site/people/person where $p/profile/age > '40' "
        "return <r>{$p/name}{$p/profile/age}</r>"),
    "eq-join": (
        "for $c in /site/closed_auctions/closed_auction, "
        "$p in /site/people/person where $c/buyer = $p/@id "
        "return <pair>{$c/price}{$p/name}</pair>"),
    "join-plus-selection": (
        "for $c in /site/closed_auctions/closed_auction, "
        "$p in /site/people/person "
        "where $p/name = 'name 7' and $c/buyer = $p/@id "
        "return <pair>{$c/price}</pair>"),
    "empty-selection": (
        "for $p in /site/people/person where $p/name = 'no such name' "
        "return <r>{$p/name}</r>"),
}


@pytest.fixture(scope="module")
def mem_vdoc():
    vdoc = VectorizedDocument.from_xml(xmark_like_xml(N_PEOPLE, seed=9))
    vdoc.build_indexes()
    return vdoc


@pytest.fixture(scope="module")
def disk_path(tmp_path_factory):
    vdoc = VectorizedDocument.from_xml(xmark_like_xml(N_PEOPLE, seed=9))
    path = str(tmp_path_factory.mktemp("ix") / "doc.vdoc")
    save_vdoc(vdoc, path, page_size=512, index_paths="all")
    return path


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_indexed_equals_scan_in_memory(mem_vdoc, name):
    query = QUERIES[name]
    ix = eval_xq(mem_vdoc, query, use_indexes=True)
    scan = eval_xq(mem_vdoc, query, use_indexes=False)
    assert ix.to_xml() == scan.to_xml()
    assert all(op.access == "scan" for op in scan.plan.ops)
    # filters on indexed vectors of this size must actually probe
    filters = [op for op in ix.plan.ops if op.kind in ("select", "join")]
    assert filters and all(op.access == "index" for op in filters), name


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_indexed_equals_scan_on_disk(disk_path, name):
    query = QUERIES[name]
    with open_vdoc(disk_path, pool_pages=64) as doc:
        ix = eval_xq(doc, query, use_indexes=True).to_xml()
        doc.drop_caches()
        scan = eval_xq(doc, query, use_indexes=False).to_xml()
    assert ix == scan


def test_per_combo_executor_probes_too(mem_vdoc):
    query = QUERIES["join-plus-selection"]
    ix = eval_xq(mem_vdoc, query, batched=False, use_indexes=True)
    scan = eval_xq(mem_vdoc, query, batched=False, use_indexes=False)
    assert ix.to_xml() == scan.to_xml()
    assert any(op.access == "index" for op in ix.plan.ops)


def test_probe_skips_the_column_on_disk(disk_path):
    """A selective probe must not materialize the indexed vector: the
    index segment is read, the name column itself is not."""
    with open_vdoc(disk_path, pool_pages=64) as doc:
        eval_xq(doc, QUERIES["eq-selection"], use_indexes=True)
        name_path = ("site", "people", "person", "name", "#")
        assert not doc.vectors[name_path].is_loaded()
        assert doc._vindexes[name_path].is_loaded()


def test_plan_reports_cost_estimates(mem_vdoc):
    gq, _ = compile_query(parse_xq(QUERIES["join-plus-selection"]))
    plan = plan_query(gq, mem_vdoc)
    text = plan.explain()
    assert "est" in text and "[index]" in text
    for op in plan.ops:
        assert op.cost >= 0 and op.scan_cost >= 0
        if op.access == "index":
            assert op.cost < op.scan_cost  # the probe won on estimate


def test_repeated_compiles_produce_identical_plans(mem_vdoc):
    """Satellite: deterministic tie-breaking — the same query against the
    same statistics always yields the same op order, access stamps and
    estimates."""
    for query in QUERIES.values():
        plans = []
        for _ in range(3):
            gq, _ = compile_query(parse_xq(query))
            plans.append(plan_query(gq, mem_vdoc))
        base = [(op.kind, str(op.payload), op.op_id, op.access, op.cost)
                for op in plans[0].ops]
        for plan in plans[1:]:
            assert [(op.kind, str(op.payload), op.op_id, op.access, op.cost)
                    for op in plan.ops] == base
        assert plans[0].explain() == plans[1].explain()


def test_use_indexes_false_never_probes(disk_path):
    with open_vdoc(disk_path, pool_pages=64) as doc:
        res = eval_xq(doc, QUERIES["eq-join"], use_indexes=False)
        assert all(op.access == "scan" for op in res.plan.ops)
        assert not any(h.is_loaded() for h in doc._vindexes.values())


def test_format_v2_files_open_and_query_unchanged(tmp_path, monkeypatch):
    """A pre-index (format 2) file — no index entries, format stamp 2 —
    still opens, queries and fscks exactly as before."""
    vdoc = VectorizedDocument.from_xml(xmark_like_xml(12, seed=4))
    path = str(tmp_path / "legacy.vdoc")
    monkeypatch.setattr(vdocfile, "VDOC_FORMAT", 2)
    save_vdoc(vdoc, path, page_size=512)
    monkeypatch.undo()
    assert verify_vdoc(path) == []
    assert verify_vdoc(path, deep=True) == []
    query = QUERIES["eq-join"]
    want = eval_xq(vdoc, query).to_xml()
    with open_vdoc(path, pool_pages=32) as doc:
        assert doc._vindexes == {}
        res = eval_xq(doc, query)
        assert res.to_xml() == want
        assert all(op.access == "scan" for op in res.plan.ops)
