import pathlib
import sys

SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)
