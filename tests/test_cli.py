from repro.cli import main


def _gen(tmp_path, n=20):
    import io
    from contextlib import redirect_stdout

    buf = io.StringIO()
    with redirect_stdout(buf):
        assert main(["gen", str(n), "--seed", "2"]) == 0
    f = tmp_path / "doc.xml"
    f.write_text(buf.getvalue(), encoding="utf-8")
    return f


def test_gen_stats_query_reconstruct(tmp_path, capsys):
    f = _gen(tmp_path)

    assert main(["stats", str(f)]) == 0
    out = capsys.readouterr().out
    assert "skeleton_nodes" in out and "vectors" in out

    assert main(["query", str(f),
                 "/site/people/person/profile/age/text()", "--values"]) == 0
    out = capsys.readouterr().out.splitlines()
    assert out[0].startswith("count ")
    assert int(out[0].split()[1]) == len(out) - 1 == 20

    for mode in ("vx", "naive"):
        assert main(["query", str(f), "//item[quantity > 5]/name",
                     "--mode", mode, "--canonical"]) == 0
    capsys.readouterr()

    assert main(["reconstruct", str(f)]) == 0
    xml = capsys.readouterr().out.rstrip("\n")
    assert xml == f.read_text(encoding="utf-8")


def test_cli_reports_errors(tmp_path, capsys):
    f = tmp_path / "bad.xml"
    f.write_text("<a><b></a>", encoding="utf-8")
    assert main(["stats", str(f)]) == 1
    assert "error" in capsys.readouterr().err

    g = _gen(tmp_path, 5)
    assert main(["query", str(g), "not-an-xpath"]) == 1


def test_cli_rejects_inapplicable_flags(tmp_path, capsys):
    """Regression: --values/--canonical on XQ and --plan on XPath used to
    be silently ignored; they are usage errors naming the flag."""
    f = _gen(tmp_path, 5)
    xq = "for $p in //person return <r>{$p/name}</r>"

    assert main(["query", str(f), xq, "--values"]) == 2
    assert "--values" in capsys.readouterr().err

    assert main(["query", str(f), xq, "--canonical"]) == 2
    assert "--canonical" in capsys.readouterr().err

    assert main(["query", str(f), "/site/people/person", "--plan"]) == 2
    assert "--plan" in capsys.readouterr().err

    # the still-valid combinations keep working
    assert main(["query", str(f), "/site/people/person", "--values",
                 "--canonical"]) == 0
    capsys.readouterr()
    assert main(["query", str(f), xq, "--plan"]) == 0
    capsys.readouterr()


def test_cli_save_open_query_disk(tmp_path, capsys):
    f = _gen(tmp_path, 12)
    vdoc_path = str(tmp_path / "doc.vdoc")

    assert main(["save", str(f), vdoc_path, "--page-size", "256"]) == 0
    out = capsys.readouterr().out
    assert "pages" in out and "vectors" in out

    assert main(["open", vdoc_path]) == 0
    out = capsys.readouterr().out
    assert "page_size" in out and "vector_pages" in out

    query = "//item[quantity > 2]/name"
    assert main(["query", str(f), query, "--canonical"]) == 0
    mem_out = capsys.readouterr().out
    assert main(["query", vdoc_path, query, "--canonical",
                 "--pool", "16", "--io-stats"]) == 0
    captured = capsys.readouterr()
    assert captured.out == mem_out  # byte-identical to the in-memory path
    assert "pages_read=" in captured.err and "pinned=0" in captured.err

    # stats and reconstruct accept vdoc inputs transparently
    assert main(["stats", vdoc_path, "--pool", "16"]) == 0
    assert "vectors" in capsys.readouterr().out
    assert main(["reconstruct", vdoc_path]) == 0
    assert capsys.readouterr().out.rstrip("\n") == \
        f.read_text(encoding="utf-8").rstrip("\n")

    # corrupt / non-vdoc binary input is a reported error, not a traceback
    bad = tmp_path / "bad.vdoc"
    bad.write_bytes(b"\x00" * 64)
    assert main(["stats", str(bad)]) == 1
    assert "error" in capsys.readouterr().err


def test_cli_xq_query(tmp_path, capsys):
    f = _gen(tmp_path, 15)
    q = ("for $p in /site/people/person where $p/profile/age > '40' "
         "return <r>{$p/name}</r>")

    assert main(["query", str(f), q, "--plan"]) == 0
    captured = capsys.readouterr()
    assert captured.out.startswith("<result")
    assert "instantiate" in captured.err and "select" in captured.err

    assert main(["query", str(f), q, "--mode", "naive"]) == 0
    naive_out = capsys.readouterr().out
    assert naive_out == captured.out

    # XQ syntax errors are reported, not raised
    assert main(["query", str(f), "for $x in"]) == 1
    assert "error" in capsys.readouterr().err


def _make_cli_repo(tmp_path, capsys, n_docs=2):
    from repro.datasets.synth import xmark_like_xml

    d = str(tmp_path / "repo")
    assert main(["repo", "init", d, "--name", "auctions"]) == 0
    for i in range(n_docs):
        f = tmp_path / f"m{i}.xml"
        f.write_text(xmark_like_xml(8 + 4 * i, seed=i), encoding="utf-8")
        assert main(["repo", "add", d, str(f), "--page-size", "512"]) == 0
    capsys.readouterr()
    return d


def test_cli_repo_init_add_ls(tmp_path, capsys):
    d = _make_cli_repo(tmp_path, capsys)
    assert main(["repo", "ls", d]) == 0
    out = capsys.readouterr().out
    assert "repository 'auctions': 2 member(s)" in out
    assert "m0" in out and "m1" in out and "paths=" in out

    # init refuses an existing repository; add refuses duplicate names
    assert main(["repo", "init", d, "--name", "other"]) == 1
    assert "already a repository" in capsys.readouterr().err
    assert main(["repo", "add", d, str(tmp_path / "m0.xml")]) == 1
    assert "already exists" in capsys.readouterr().err


def test_cli_repo_query_collection(tmp_path, capsys):
    d = _make_cli_repo(tmp_path, capsys)
    q = ("for $p in collection('auctions')/site/people/person "
         "where $p/profile/age > '40' return <r>{$p/name}</r>")
    assert main(["repo", "query", d, q, "--pool", "6", "--io-stats"]) == 0
    captured = capsys.readouterr()
    assert captured.out.startswith("<result")
    err = captured.err
    assert "pool_pages_read=" in err and "pinned=0" in err
    assert "m0.pages_read=" in err and "m1.pages_read=" in err

    # per-combo baseline produces the same bytes through the CLI too
    assert main(["repo", "query", d, q, "--per-combo"]) == 0
    assert capsys.readouterr().out == captured.out

    # XPath over a repository: per-member counts
    assert main(["repo", "query", d, "/site/people/person"]) == 0
    out = capsys.readouterr().out.splitlines()
    assert out == ["m0: count 8", "m1: count 12"]

    # a collection name that is not this repository is an error
    assert main(["repo", "query", d, q.replace("auctions", "nope")]) == 1
    assert "error" in capsys.readouterr().err


def test_cli_repo_io_stats_printed_on_error(tmp_path, capsys):
    """A failing collection query still reports what it read, and the
    error names the corrupt member; `check` on the directory agrees."""
    import os

    d = _make_cli_repo(tmp_path, capsys)
    victim = os.path.join(d, "m1.vdoc")
    size = os.path.getsize(victim)
    with open(victim, "r+b") as f:     # corrupt pages, keep the header
        for off in range(512, size - 1024, 512):
            f.seek(off + 64)
            f.write(b"\xee" * 32)
    q = ("for $p in /site/people/person where $p/profile/age > '40' "
         "return <r>{$p/name}</r>")
    assert main(["repo", "query", d, q, "--io-stats"]) == 1
    captured = capsys.readouterr()
    assert "pool_pages_read=" in captured.err  # stats despite the failure
    assert "pinned=0" in captured.err          # and the pool stayed clean
    assert "member 'm1'" in captured.err

    assert main(["check", d]) == 1
    captured = capsys.readouterr()
    assert "member 'm1'" in captured.out
    assert "integrity finding(s)" in captured.err


def test_cli_check_repo_ok_and_not_a_repo(tmp_path, capsys):
    d = _make_cli_repo(tmp_path, capsys)
    assert main(["check", d]) == 0
    assert "ok" in capsys.readouterr().out
    empty = tmp_path / "not-a-repo"
    empty.mkdir()
    assert main(["check", str(empty)]) == 1
    out = capsys.readouterr().out
    assert "repo.json" in out


def _codec_rich_xml(tmp_path, n=200):
    items = "".join(
        f"<it><id>{1000 + i}</id><cat>c{i % 5}</cat>"
        f"<note>shared prose, distinct tail number {i} of many</note></it>"
        for i in range(n))
    f = tmp_path / "codec.xml"
    f.write_text(f"<r>{items}</r>", encoding="utf-8")
    return f


def test_cli_save_format_and_index_ls_compression(tmp_path, capsys):
    f = _codec_rich_xml(tmp_path)
    v4, v3 = str(tmp_path / "d4.vdoc"), str(tmp_path / "d3.vdoc")

    assert main(["save", str(f), v4, "--page-size", "512"]) == 0
    out = capsys.readouterr().out
    assert "format           4" in out
    assert "compression_ratio" in out and "codecs" in out

    assert main(["save", str(f), v3, "--page-size", "512",
                 "--format", "3"]) == 0
    out = capsys.readouterr().out
    assert "format           3" in out
    assert "compression_ratio" not in out

    # index ls prints per-vector codec + logical/on-disk bytes from the
    # catalog alone, before any index exists
    assert main(["index", "ls", v4]) == 0
    out = capsys.readouterr().out
    assert "codec=dict" in out and "codec=delta" in out
    assert "logical=" in out and "disk=" in out
    assert "ratio=" in out
    assert "no index segments" in out

    # the two formats answer queries byte-identically through the CLI
    q = "for $i in /r/it where $i/cat = 'c2' return <o>{$i/id}</o>"
    assert main(["query", v4, q, "--pool", "8"]) == 0
    out4 = capsys.readouterr().out
    assert main(["query", v3, q, "--pool", "8"]) == 0
    assert capsys.readouterr().out == out4
    assert main(["query", v4, q, "--pool", "8", "--no-codec-eval"]) == 0
    assert capsys.readouterr().out == out4


def test_cli_repo_ls_compression_summary(tmp_path, capsys):
    f = _codec_rich_xml(tmp_path)
    d = str(tmp_path / "repo")
    assert main(["repo", "init", d, "--name", "col"]) == 0
    assert main(["repo", "add", d, str(f), "--name", "m0"]) == 0
    capsys.readouterr()
    assert main(["repo", "ls", d]) == 0
    out = capsys.readouterr().out
    assert "codecs[" in out and "dict=" in out
    assert "compression: logical=" in out and "ratio=" in out

    q = "for $i in /r/it where $i/cat = 'c1' return <o>{$i/id}</o>"
    assert main(["repo", "query", d, q]) == 0
    base = capsys.readouterr().out
    assert main(["repo", "query", d, q, "--no-codec-eval"]) == 0
    assert capsys.readouterr().out == base
