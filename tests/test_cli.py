from repro.cli import main


def _gen(tmp_path, n=20):
    import io
    from contextlib import redirect_stdout

    buf = io.StringIO()
    with redirect_stdout(buf):
        assert main(["gen", str(n), "--seed", "2"]) == 0
    f = tmp_path / "doc.xml"
    f.write_text(buf.getvalue(), encoding="utf-8")
    return f


def test_gen_stats_query_reconstruct(tmp_path, capsys):
    f = _gen(tmp_path)

    assert main(["stats", str(f)]) == 0
    out = capsys.readouterr().out
    assert "skeleton_nodes" in out and "vectors" in out

    assert main(["query", str(f),
                 "/site/people/person/profile/age/text()", "--values"]) == 0
    out = capsys.readouterr().out.splitlines()
    assert out[0].startswith("count ")
    assert int(out[0].split()[1]) == len(out) - 1 == 20

    for mode in ("vx", "naive"):
        assert main(["query", str(f), "//item[quantity > 5]/name",
                     "--mode", mode, "--canonical"]) == 0
    capsys.readouterr()

    assert main(["reconstruct", str(f)]) == 0
    xml = capsys.readouterr().out.rstrip("\n")
    assert xml == f.read_text(encoding="utf-8")


def test_cli_reports_errors(tmp_path, capsys):
    f = tmp_path / "bad.xml"
    f.write_text("<a><b></a>", encoding="utf-8")
    assert main(["stats", str(f)]) == 1
    assert "error" in capsys.readouterr().err

    g = _gen(tmp_path, 5)
    assert main(["query", str(g), "not-an-xpath"]) == 1


def test_cli_xq_query(tmp_path, capsys):
    f = _gen(tmp_path, 15)
    q = ("for $p in /site/people/person where $p/profile/age > '40' "
         "return <r>{$p/name}</r>")

    assert main(["query", str(f), q, "--plan"]) == 0
    captured = capsys.readouterr()
    assert captured.out.startswith("<result")
    assert "instantiate" in captured.err and "select" in captured.err

    assert main(["query", str(f), q, "--mode", "naive"]) == 0
    naive_out = capsys.readouterr().out
    assert naive_out == captured.out

    # XQ syntax errors are reported, not raised
    assert main(["query", str(f), "for $x in"]) == 1
    assert "error" in capsys.readouterr().err
