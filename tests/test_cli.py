from repro.cli import main


def _gen(tmp_path, n=20):
    import io
    from contextlib import redirect_stdout

    buf = io.StringIO()
    with redirect_stdout(buf):
        assert main(["gen", str(n), "--seed", "2"]) == 0
    f = tmp_path / "doc.xml"
    f.write_text(buf.getvalue(), encoding="utf-8")
    return f


def test_gen_stats_query_reconstruct(tmp_path, capsys):
    f = _gen(tmp_path)

    assert main(["stats", str(f)]) == 0
    out = capsys.readouterr().out
    assert "skeleton_nodes" in out and "vectors" in out

    assert main(["query", str(f),
                 "/site/people/person/profile/age/text()", "--values"]) == 0
    out = capsys.readouterr().out.splitlines()
    assert out[0].startswith("count ")
    assert int(out[0].split()[1]) == len(out) - 1 == 20

    for mode in ("vx", "naive"):
        assert main(["query", str(f), "//item[quantity > 5]/name",
                     "--mode", mode, "--canonical"]) == 0
    capsys.readouterr()

    assert main(["reconstruct", str(f)]) == 0
    xml = capsys.readouterr().out.rstrip("\n")
    assert xml == f.read_text(encoding="utf-8")


def test_cli_reports_errors(tmp_path, capsys):
    f = tmp_path / "bad.xml"
    f.write_text("<a><b></a>", encoding="utf-8")
    assert main(["stats", str(f)]) == 1
    assert "error" in capsys.readouterr().err

    g = _gen(tmp_path, 5)
    assert main(["query", str(g), "not-an-xpath"]) == 1


def test_cli_rejects_inapplicable_flags(tmp_path, capsys):
    """Regression: --values/--canonical on XQ and --plan on XPath used to
    be silently ignored; they are usage errors naming the flag."""
    f = _gen(tmp_path, 5)
    xq = "for $p in //person return <r>{$p/name}</r>"

    assert main(["query", str(f), xq, "--values"]) == 2
    assert "--values" in capsys.readouterr().err

    assert main(["query", str(f), xq, "--canonical"]) == 2
    assert "--canonical" in capsys.readouterr().err

    assert main(["query", str(f), "/site/people/person", "--plan"]) == 2
    assert "--plan" in capsys.readouterr().err

    # the still-valid combinations keep working
    assert main(["query", str(f), "/site/people/person", "--values",
                 "--canonical"]) == 0
    capsys.readouterr()
    assert main(["query", str(f), xq, "--plan"]) == 0
    capsys.readouterr()


def test_cli_save_open_query_disk(tmp_path, capsys):
    f = _gen(tmp_path, 12)
    vdoc_path = str(tmp_path / "doc.vdoc")

    assert main(["save", str(f), vdoc_path, "--page-size", "256"]) == 0
    out = capsys.readouterr().out
    assert "pages" in out and "vectors" in out

    assert main(["open", vdoc_path]) == 0
    out = capsys.readouterr().out
    assert "page_size" in out and "vector_pages" in out

    query = "//item[quantity > 2]/name"
    assert main(["query", str(f), query, "--canonical"]) == 0
    mem_out = capsys.readouterr().out
    assert main(["query", vdoc_path, query, "--canonical",
                 "--pool", "16", "--io-stats"]) == 0
    captured = capsys.readouterr()
    assert captured.out == mem_out  # byte-identical to the in-memory path
    assert "pages_read=" in captured.err and "pinned=0" in captured.err

    # stats and reconstruct accept vdoc inputs transparently
    assert main(["stats", vdoc_path, "--pool", "16"]) == 0
    assert "vectors" in capsys.readouterr().out
    assert main(["reconstruct", vdoc_path]) == 0
    assert capsys.readouterr().out.rstrip("\n") == \
        f.read_text(encoding="utf-8").rstrip("\n")

    # corrupt / non-vdoc binary input is a reported error, not a traceback
    bad = tmp_path / "bad.vdoc"
    bad.write_bytes(b"\x00" * 64)
    assert main(["stats", str(bad)]) == 1
    assert "error" in capsys.readouterr().err


def test_cli_xq_query(tmp_path, capsys):
    f = _gen(tmp_path, 15)
    q = ("for $p in /site/people/person where $p/profile/age > '40' "
         "return <r>{$p/name}</r>")

    assert main(["query", str(f), q, "--plan"]) == 0
    captured = capsys.readouterr()
    assert captured.out.startswith("<result")
    assert "instantiate" in captured.err and "select" in captured.err

    assert main(["query", str(f), q, "--mode", "naive"]) == 0
    naive_out = capsys.readouterr().out
    assert naive_out == captured.out

    # XQ syntax errors are reported, not raised
    assert main(["query", str(f), "for $x in"]) == 1
    assert "error" in capsys.readouterr().err
