"""The concurrent query service: endpoints, byte-identity with the CLI,
session isolation under 16 concurrent clients, admission-control 503s,
and corruption staying confined to the member it hit."""

import http.client
import json
import math
import socket
import threading

import pytest

from repro.cli import main as cli_main
from repro.datasets.synth import xmark_like_xml
from repro.repo import Repository
from repro.serve import (
    AdmissionController,
    OverloadError,
    QueryServer,
    size_inflight,
)
from repro.serve.metrics import LatencyHistogram

NOTES_XML = (
    "<notes>"
    "<note><title>alpha</title><body>one</body></note>"
    "<note><title>beta</title><body>two</body></note>"
    "</notes>"
)

XQ_SITE = ("for $p in /site/people/person where $p/profile/age > '30' "
           "return <r>{$p/name}{$p/profile/age}</r>")
XQ_NOTES = ("for $n in /notes/note where $n/title = 'beta' "
            "return <r>{$n/body}</r>")
XP_SITE = "/site/people/person/name"


def _build_repo(tmp_path):
    d = str(tmp_path / "repo")
    repo = Repository.init(d, "auctions")
    for i, n in enumerate((10, 14)):
        f = tmp_path / f"doc{i}.xml"
        f.write_text(xmark_like_xml(n, seed=i), encoding="utf-8")
        repo.add(str(f), page_size=512)
    notes = tmp_path / "notes.xml"
    notes.write_text(NOTES_XML, encoding="utf-8")
    repo.add(str(notes), page_size=512)
    repo.close()
    return d


@pytest.fixture
def repo_dir(tmp_path):
    return _build_repo(tmp_path)


@pytest.fixture
def server(repo_dir):
    srv = QueryServer(repo_dir, port=0, pool_pages=64, workers=8).start()
    yield srv
    srv.shutdown()   # asserts zero pinned pages pool-wide


def _request(srv, method, path, body=None):
    conn = http.client.HTTPConnection(*srv.address, timeout=30)
    try:
        conn.request(method, path,
                     body=body.encode("utf-8") if body is not None else None)
        resp = conn.getresponse()
        return resp.status, resp.read(), dict(resp.getheaders())
    finally:
        conn.close()


def _cli_stdout(capsys, repo_dir, query):
    capsys.readouterr()
    assert cli_main(["repo", "query", repo_dir, query]) == 0
    return capsys.readouterr().out


# -- endpoints ---------------------------------------------------------------


def test_healthz_stats_repo(server):
    status, body, _ = _request(server, "GET", "/healthz")
    assert (status, body) == (200, b"ok\n")

    status, body, _ = _request(server, "GET", "/repo")
    assert status == 200
    repo = json.loads(body)
    assert repo["name"] == "auctions"
    assert [m["name"] for m in repo["members"]] == ["doc0", "doc1", "notes"]
    assert all(m["catalog_paths"] > 0 for m in repo["members"])

    status, body, _ = _request(server, "GET", "/stats")
    snap = json.loads(body)
    assert status == 200
    assert snap["pin_leaks"] == 0
    assert {"capacity", "hit_rate", "pinned"} <= snap["pool"].keys()
    assert snap["admission"]["max_inflight"] == size_inflight(8, 64)
    assert snap["endpoints"]["/healthz"]["by_status"] == {"200": 1}

    status, _, _ = _request(server, "GET", "/nope")
    assert status == 404


def test_xq_and_xpath_byte_identical_to_cli(server, repo_dir, capsys):
    for query in (XQ_SITE, XQ_NOTES, XP_SITE):
        endpoint = "/xpath" if query.startswith("/") else "/xq"
        status, body, headers = _request(server, "POST", endpoint, query)
        assert status == 200
        assert body.decode("utf-8") == _cli_stdout(capsys, repo_dir, query)
    # the notes query proves catalog pruning ran server-side too
    _, _, headers = _request(server, "POST", "/xq", XQ_NOTES)
    assert headers["X-Pruned"] == "doc0,doc1"


def test_malformed_queries_are_400(server):
    status, body, _ = _request(server, "POST", "/xq", "for $p in")
    assert status == 400 and body.startswith(b"error:")
    status, body, _ = _request(server, "POST", "/xpath", "not an xpath")
    assert status == 400
    status, _, _ = _request(server, "POST", "/xq",
                            "for $p in collection('elsewhere')//x "
                            "return <r>{$p}</r>")
    assert status == 400   # wrong collection is a compile error
    status, _, _ = _request(server, "POST", "/nope", "x")
    assert status == 404


# -- concurrency -------------------------------------------------------------


def test_16_concurrent_clients_byte_identical_and_clean(server, repo_dir,
                                                        capsys):
    workload = [("/xq", XQ_SITE), ("/xq", XQ_NOTES), ("/xpath", XP_SITE)]
    expected = {q: _cli_stdout(capsys, repo_dir, q).encode("utf-8")
                for _, q in workload}
    failures: list[str] = []

    def client(idx: int) -> None:
        conn = http.client.HTTPConnection(*server.address, timeout=60)
        try:
            for off in range(6):
                endpoint, q = workload[(idx + off) % len(workload)]
                conn.request("POST", endpoint, body=q.encode("utf-8"))
                resp = conn.getresponse()
                body = resp.read()
                if resp.status != 200 or body != expected[q]:
                    failures.append(f"client {idx}: {resp.status} on {q!r}")
        except Exception as exc:  # noqa: BLE001 - surfaced below
            failures.append(f"client {idx}: {exc!r}")
        finally:
            conn.close()

    threads = [threading.Thread(target=client, args=(i,)) for i in range(16)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not failures

    # metrics are observed after the response bytes go out — poll
    def _counted() -> bool:
        eps = server.stats_snapshot()["endpoints"]
        return (eps["/xq"]["by_status"].get("200") == 16 * 4
                and eps["/xpath"]["by_status"].get("200") == 16 * 2)
    _wait_for(_counted)
    snap = server.stats_snapshot()
    assert snap["pin_leaks"] == 0             # per-request isolation held
    assert snap["pool"]["pinned"] == 0        # nothing left pinned
    assert snap["endpoints"]["/xq"]["by_status"] == {"200": 16 * 4}
    assert snap["endpoints"]["/xpath"]["by_status"] == {"200": 16 * 2}


def test_overload_sheds_503_with_retry_after(repo_dir):
    srv = QueryServer(repo_dir, port=0, pool_pages=64, workers=1,
                      max_queue=0, queue_timeout=0.2).start()
    try:
        assert srv.max_inflight == 1
        with srv.admission.admit():           # hold the only slot
            status, body, headers = _request(srv, "POST", "/xq", XQ_SITE)
            assert status == 503
            assert body.startswith(b"error: overloaded")
            assert int(headers["Retry-After"]) >= 1
            # observability must keep answering while queries are shed
            status, body, _ = _request(srv, "GET", "/stats")
            assert status == 200
            assert json.loads(body)["overloads"] == 1
        status, _, _ = _request(srv, "POST", "/xq", XQ_SITE)
        assert status == 200                  # slot free again: recovered
    finally:
        final = srv.shutdown()
    assert final["overloads"] == 1 and final["pin_leaks"] == 0


def test_corrupt_member_fails_by_name_siblings_stay_queryable(repo_dir,
                                                              capsys):
    # trash doc1's pages (header kept so the file still sniffs as a vdoc)
    victim = repo_dir + "/doc1.vdoc"
    with open(victim, "r+b") as f:
        f.seek(0, 2)
        size = f.tell()
        f.seek(40)
        f.write(b"\xee" * (size - 40))

    srv = QueryServer(repo_dir, port=0, pool_pages=64, workers=4).start()
    try:
        status, body, _ = _request(srv, "POST", "/xq", XQ_SITE)
        assert status == 500
        assert b"member 'doc1'" in body      # the failure names its member

        # a query the catalog routes past doc1 still answers over the
        # same pool — corruption degrades one member, not the service
        status, body, _ = _request(srv, "POST", "/xq", XQ_NOTES)
        assert status == 200
        assert body.decode("utf-8") == _cli_stdout(capsys, repo_dir,
                                                   XQ_NOTES)

        snap = srv.stats_snapshot()
        assert snap["pin_leaks"] == 0        # the failure leaked nothing
        assert snap["pool"]["pinned"] == 0
    finally:
        srv.shutdown()


# -- request framing and 503 attribution -------------------------------------


def test_truncated_body_is_400(server):
    """A client that dies mid-body must not have its truncated prefix
    evaluated as a (different, valid) query."""
    host, port = server.address
    with socket.create_connection((host, port), timeout=10) as s:
        s.sendall(b"POST /xq HTTP/1.1\r\nHost: t\r\nContent-Length: 50\r\n"
                  b"Connection: close\r\n\r\n/site/people")
        s.shutdown(socket.SHUT_WR)       # disconnect after 12 of 50 bytes
        data = b""
        while chunk := s.recv(4096):
            data += chunk
    status_line = data.split(b"\r\n", 1)[0]
    assert b" 400 " in status_line
    assert b"truncated body: got 12 of 50" in data


def test_drain_503_attributed_separately(repo_dir):
    srv = QueryServer(repo_dir, port=0, pool_pages=64, workers=2).start()
    try:
        srv.draining = True
        status, body, headers = _request(srv, "POST", "/xq", XQ_SITE)
        assert status == 503 and b"shutting down" in body
        assert int(headers["Retry-After"]) >= 1
        # metrics are recorded just after the response bytes go out: wait
        # for the handler thread to reach the observe call
        _wait_for(lambda: srv.stats_snapshot()["drain_rejects"] == 1)
        snap = srv.stats_snapshot()
        # a drain rejection is not admission pressure: it must not count
        # as an overload shed
        assert snap["drain_rejects"] == 1
        assert snap["overloads"] == 0 and snap["pool_exhausted"] == 0
        srv.draining = False
        status, _, _ = _request(srv, "POST", "/xq", XQ_SITE)
        assert status == 200
    finally:
        srv.shutdown()


def test_unknown_post_latency_is_measured(server):
    status, _, _ = _request(server, "POST", "/nowhere", "x")
    assert status == 404
    _wait_for(lambda: "*unknown*" in server.stats_snapshot()["endpoints"])
    ep = server.stats_snapshot()["endpoints"]["*unknown*"]
    assert ep["by_status"] == {"404": 1}
    # the 404 is measured like every other request, not logged as 0.0
    assert ep["mean_ms"] > 0.0


def test_result_cache_hits_are_byte_identical(server):
    _, cold, _ = _request(server, "POST", "/xq", XQ_SITE)
    _, warm, _ = _request(server, "POST", "/xq", XQ_SITE)
    assert warm == cold
    rc = server.stats_snapshot()["result_cache"]
    assert rc is not None
    assert rc["hits"] >= 1 and rc["misses"] >= 1
    assert rc["entries"] >= 1 and 0.0 < rc["hit_rate"] <= 1.0


def test_result_cache_can_be_disabled(repo_dir):
    srv = QueryServer(repo_dir, port=0, pool_pages=64, workers=2,
                      result_cache_mb=0).start()
    try:
        _, cold, _ = _request(srv, "POST", "/xq", XQ_SITE)
        _, warm, _ = _request(srv, "POST", "/xq", XQ_SITE)
        assert warm == cold
        assert srv.stats_snapshot()["result_cache"] is None
    finally:
        srv.shutdown()


# -- admission control units -------------------------------------------------


def test_size_inflight_caps_from_pool_capacity():
    assert size_inflight(8, None) == 8       # unbounded pool: workers rule
    assert size_inflight(8, 64) == 8         # 64 // 4 = 16 >= workers
    assert size_inflight(16, 24) == 6        # 24 // 4 caps the workers
    assert size_inflight(16, 4) == 1
    assert size_inflight(0, None) == 1       # never below one slot


def test_admission_queue_full_and_timeout():
    ac = AdmissionController(max_inflight=1, max_queue=1, queue_timeout=0.05)
    with ac.admit():
        # one waiter fits the queue and times out waiting for the slot
        with pytest.raises(OverloadError, match="queued"):
            with ac.admit():
                pass
        # a waiter beyond the queue bound is rejected immediately
        blocker = threading.Thread(target=lambda: _try_admit(ac, 0.3))
        blocker.start()
        _wait_for(lambda: ac.depth()["queued"] == 1)
        with pytest.raises(OverloadError, match="capacity"):
            with ac.admit():
                pass
        blocker.join()
    depth = ac.depth()
    assert depth["in_flight"] == 0 and depth["queued"] == 0
    assert depth["admitted"] == 1
    assert depth["rejected_timeout"] == 2 and depth["rejected_queue_full"] == 1


def _try_admit(ac, timeout):
    try:
        ac.queue_timeout = timeout
        with ac.admit():
            pass
    except OverloadError:
        pass


def _wait_for(pred, timeout=2.0):
    import time
    deadline = time.monotonic() + timeout
    while not pred():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.005)


def test_admission_releases_slot_on_error():
    ac = AdmissionController(max_inflight=1, max_queue=0)
    with pytest.raises(ValueError):
        with ac.admit():
            raise ValueError("query blew up")
    with ac.admit():                          # the slot came back
        pass
    assert ac.depth()["in_flight"] == 0


def test_latency_histogram_quantiles():
    h = LatencyHistogram()
    assert h.quantile(0.5) == 0.0
    for ms in (1, 1, 1, 2, 2, 5, 10, 50, 100, 400):
        h.observe(ms / 1e3)
    assert h.n == 10
    # conservative (upper-bound) quantiles: ordered and bracketing
    assert h.quantile(0.5) >= 0.002
    assert h.quantile(0.99) >= 0.4
    assert h.quantile(0.5) <= h.quantile(0.9) <= h.quantile(0.99)
    d = h.as_dict()
    assert d["count"] == 10 and d["p99_ms"] >= d["p50_ms"]
    assert d["overflow"] == 0


def test_latency_histogram_overflow_is_explicit():
    # a rank landing in the overflow bucket has no finite upper bound:
    # clamping it to the last bound would under-report the worst latencies
    h = LatencyHistogram()
    h.observe(0.001)
    h.observe(200.0)          # beyond the ~148 s last bucket bound
    assert h.overflow == 1
    assert h.quantile(0.5) < 1.0          # finite: rank 1 is the 1 ms obs
    assert math.isinf(h.quantile(0.99))   # rank 2 is the overflow obs
    d = h.as_dict()
    assert d["p50_ms"] is not None
    assert d["p99_ms"] is None            # inf is reported as null...
    assert d["overflow"] == 1             # ...with the explicit marker


def test_latency_histogram_all_overflow():
    h = LatencyHistogram()
    h.observe(500.0)
    assert math.isinf(h.quantile(0.5))
    assert h.as_dict()["p50_ms"] is None and h.as_dict()["overflow"] == 1
