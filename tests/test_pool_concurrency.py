"""Buffer pool under threads: the substrate of ``repro.serve``.

Stress pin/unpin/evict from many threads over a pool far smaller than the
page set — content must stay correct, no page may be faulted twice
concurrently, every thread's net pin delta must return to zero — plus the
deterministic single-thread behavior (counter sequences, typed
exhaustion, idempotent close) the rest of the suite relies on.
"""

import random
import threading
import time

import pytest

from repro.errors import PoolExhaustedError, StorageError
from repro.storage import BufferPool, PageFile

#: page content lives past the 12-byte header (crc at bytes [8, 12) is
#: stamped on write-back, so only payload bytes are compared)
_HDR = 12


def _make_file(tmp_path, n_pages: int, page_size: int = 64) -> str:
    """A page file of ``n_pages`` pages, page ``pid`` filled with byte
    ``pid + 1`` (written through a throwaway pool so crcs are stamped)."""
    path = str(tmp_path / "pages.pg")
    file = PageFile.create(path, page_size)
    pool = BufferPool(file, capacity=None)
    for pid in range(n_pages):
        got, buf = pool.new_page()
        assert got == pid
        buf[_HDR:] = bytes([pid + 1]) * (page_size - _HDR)
        pool.unpin(pid, dirty=True)
    pool.flush()
    file.close()
    return path


def test_threaded_stress_no_lost_frames_no_leaked_pins(tmp_path):
    """8 threads hammer a 24-page file through a 12-frame pool (each
    thread holds one pin at a time, so 8 concurrent pins always leave the
    clock a victim — the sizing rule admission control enforces): every
    read sees the right bytes, eviction churns, per-thread and pool-wide
    pin accounting both end at zero, and physical reads equal misses (a
    coalesced fault never reads twice)."""
    n_pages, page_size = 24, 64
    path = _make_file(tmp_path, n_pages, page_size)
    file = PageFile.open(path)
    pool = BufferPool(file, capacity=12)
    errors: list[str] = []
    local_after: dict[int, int] = {}

    def worker(seed: int) -> None:
        rng = random.Random(seed)
        try:
            for _ in range(300):
                pid = rng.randrange(n_pages)
                buf = pool.pin(pid)
                if bytes(buf[_HDR:]) != bytes([pid + 1]) * (page_size - _HDR):
                    errors.append(f"page {pid}: wrong bytes")
                if rng.random() < 0.2:
                    time.sleep(0)  # encourage interleaving
                pool.unpin(pid)
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append(f"seed {seed}: {exc!r}")
        finally:
            local_after[seed] = pool.pinned_local()

    threads = [threading.Thread(target=worker, args=(s,)) for s in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert not errors
    assert set(local_after.values()) == {0}   # per-thread zero net pins
    assert pool.pinned_total() == 0
    assert pool.resident() <= 12
    assert pool.stats.evictions > 0           # the pool actually churned
    assert pool.stats.hits + pool.stats.misses == 8 * 300
    # one physical read per miss: concurrent faults of a page coalesced
    assert pool.stats.pages_read == pool.stats.misses
    file.close()


def test_concurrent_fault_of_same_page_reads_once(tmp_path):
    """The second reader of an in-flight fault blocks on the frame latch
    and is served from the loaded frame — exactly one physical read."""
    path = _make_file(tmp_path, n_pages=2)
    file = PageFile.open(path)
    pool = BufferPool(file, capacity=4)

    reads: list[int] = []
    real_read = file.read_page

    def slow_read(pid, verify=True):
        reads.append(pid)
        time.sleep(0.05)
        return real_read(pid, verify=verify)

    file.read_page = slow_read
    results = []

    def reader():
        buf = pool.pin(1)
        results.append(bytes(buf))
        pool.unpin(1)

    threads = [threading.Thread(target=reader) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert reads == [1]                       # a single physical read
    assert len(set(results)) == 1             # everyone saw the same frame
    assert pool.stats.misses == 1 and pool.stats.hits == 3
    assert pool.pinned_total() == 0
    file.close()


def test_failed_fault_releases_slot_and_wakes_waiters(tmp_path):
    """A fault that dies on I/O removes its reserved frame, wakes blocked
    readers (who then fail the same way), and leaves the pool clean for a
    later retry."""
    path = _make_file(tmp_path, n_pages=2)
    file = PageFile.open(path)
    pool = BufferPool(file, capacity=4)

    real_read = file.read_page
    fail = threading.Event()
    fail.set()

    def flaky_read(pid, verify=True):
        if fail.is_set():
            time.sleep(0.02)                  # let waiters pile on the latch
            raise StorageError("injected read failure")
        return real_read(pid, verify=verify)

    file.read_page = flaky_read
    outcomes: list[str] = []

    def reader():
        try:
            pool.pin(0)
            outcomes.append("ok")
            pool.unpin(0)
        except StorageError:
            outcomes.append("fail")

    threads = [threading.Thread(target=reader) for _ in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert outcomes == ["fail"] * 3
    assert pool.pinned_total() == 0 and pool.resident() == 0

    fail.clear()                              # I/O recovers: retry succeeds
    buf = pool.pin(0)
    assert bytes(buf[_HDR:]) == bytes([1]) * (64 - _HDR)
    pool.unpin(0)
    assert pool.pinned_total() == 0
    file.close()


def test_single_thread_counters_stay_deterministic(tmp_path):
    """The concurrency-safe pool must behave exactly like the sequential
    one when used from one thread: fixed access pattern, fixed counters."""
    path = _make_file(tmp_path, n_pages=4)
    file = PageFile.open(path)
    pool = BufferPool(file, capacity=2)

    for pid in (0, 1, 0, 2, 3, 2, 0):
        pool.pin(pid)
        pool.unpin(pid)
    # 0 miss, 1 miss, 0 hit, 2 miss evicts, 3 miss evicts, 2 hit,
    # 0 miss evicts — second-chance over a 2-frame clock
    assert pool.stats.misses == 5
    assert pool.stats.hits == 2
    assert pool.stats.pages_read == 5
    assert pool.stats.evictions == 3
    assert pool.stats.hit_rate() == pytest.approx(2 / 7)
    assert pool.resident() == 2
    file.close()


def test_pool_exhausted_is_typed_with_counts(tmp_path):
    path = _make_file(tmp_path, n_pages=3)
    file = PageFile.open(path)
    pool = BufferPool(file, capacity=2)
    pool.pin(0)
    pool.pin(1)
    with pytest.raises(PoolExhaustedError) as ei:
        pool.pin(2)
    assert isinstance(ei.value, StorageError)  # old handlers still catch it
    assert ei.value.capacity == 2
    assert ei.value.pinned == 2
    assert "pinned" in str(ei.value)
    pool.unpin(0)
    pool.unpin(1)
    assert pool.pinned_local() == 0 and pool.pinned_total() == 0
    file.close()


def test_pinned_local_is_per_thread(tmp_path):
    path = _make_file(tmp_path, n_pages=3)
    file = PageFile.open(path)
    pool = BufferPool(file, capacity=None)
    pool.pin(0)
    seen: dict[str, int] = {}

    def other():
        seen["start"] = pool.pinned_local()   # blind to main's pin
        pool.pin(1)
        seen["pinned"] = pool.pinned_local()
        pool.unpin(1)
        seen["done"] = pool.pinned_local()

    t = threading.Thread(target=other)
    t.start()
    t.join()
    assert seen == {"start": 0, "pinned": 1, "done": 0}
    assert pool.pinned_local() == 1           # main's own pin, still held
    assert pool.pinned_total() == 1
    pool.unpin(0)
    assert pool.pinned_local() == 0
    file.close()


def test_close_is_idempotent_even_after_failed_close(tmp_path):
    path = _make_file(tmp_path, n_pages=2)
    file = PageFile.open(path)
    pool = BufferPool(file, capacity=2)
    pool.pin(0)
    with pytest.raises(StorageError, match="pinned"):
        pool.close()                          # failed close: page still pinned
    pool.close()                              # second close: clean no-op
    pool.unpin(0)
    pool.close()
    file.close()

    pool2 = BufferPool(PageFile.open(path), capacity=2)
    pool2.close()
    pool2.close()                             # plain double close: no-op
    pool2.file.close()
