"""Crash-safety of the atomic saver, exhaustively: a crash injected at
EVERY numbered I/O operation of ``save_vdoc`` leaves either the old file
or the complete new file at the destination — never a torn mix.  Also:
torn writes, transient OSErrors (with cleanup + retry), and in-transit
bit flips that the checksums must catch at the next read."""

import errno
import os
import shutil

import pytest

from repro.core.vdoc import VectorizedDocument
from repro.datasets.synth import xmark_like_xml
from repro.errors import StorageError
from repro.storage import faults
from repro.storage.faults import CrashInjected, FaultPlan
from repro.storage.fsck import verify_vdoc

PAGE_SIZE = 512


@pytest.fixture(scope="module")
def docs():
    old = VectorizedDocument.from_xml(xmark_like_xml(4, seed=1))
    new = VectorizedDocument.from_xml(xmark_like_xml(6, seed=2))
    return old, new


def _tmp_leftovers(directory):
    return [n for n in os.listdir(directory) if n.endswith(".tmp")]


def test_clean_save_fires_no_faults(docs, tmp_path):
    _, new = docs
    dst = str(tmp_path / "doc.vdoc")
    with faults.inject(FaultPlan()) as plan:
        new.save(dst, page_size=PAGE_SIZE)
    assert plan.ops > 10  # the sweep below has real coverage
    assert plan.fired == []
    assert verify_vdoc(dst, deep=True) == []
    assert _tmp_leftovers(tmp_path) == []


def test_crash_sweep_leaves_old_or_new(docs, tmp_path):
    """The tentpole property: old-or-new at every possible crash point."""
    old, new = docs
    golden_old = str(tmp_path / "old.vdoc")
    old.save(golden_old, page_size=PAGE_SIZE)
    with open(golden_old, "rb") as f:
        old_bytes = f.read()

    with faults.inject(FaultPlan()) as plan:
        new.save(str(tmp_path / "count.vdoc"), page_size=PAGE_SIZE)
    total_ops = plan.ops

    n_old = n_new = 0
    for op in range(total_ops):
        run = tmp_path / f"crash{op}"
        run.mkdir()
        dst = str(run / "doc.vdoc")
        shutil.copyfile(golden_old, dst)
        with faults.inject(FaultPlan.crash_at(op)):
            with pytest.raises(CrashInjected):
                new.save(dst, page_size=PAGE_SIZE)
        with open(dst, "rb") as f:
            now = f.read()
        if now == old_bytes:
            n_old += 1
        else:
            # the rename must have completed: a fully valid NEW document
            assert verify_vdoc(dst, deep=True) == [], \
                f"crash at op {op} left a partial file at the destination"
            n_new += 1
    # the commit point (os.replace) is a single op: crashes before it keep
    # the old file, crashes after it (directory sync) expose the new one
    assert n_new >= 1
    assert n_old == total_ops - n_new


def test_crash_on_fresh_destination(docs, tmp_path):
    """No previous file: after a mid-save crash the destination either
    does not exist or is the complete new document."""
    _, new = docs
    for op in (0, 3, 10):
        run = tmp_path / f"fresh{op}"
        run.mkdir()
        dst = str(run / "doc.vdoc")
        with faults.inject(FaultPlan.crash_at(op)):
            with pytest.raises(CrashInjected):
                new.save(dst, page_size=PAGE_SIZE)
        if os.path.exists(dst):
            assert verify_vdoc(dst, deep=True) == []


def test_torn_write_keeps_old_file(docs, tmp_path):
    """Power-off mid-sector: half a page reaches the temp file, then the
    process dies — the destination still holds the old document."""
    old, new = docs
    dst = str(tmp_path / "doc.vdoc")
    old.save(dst, page_size=PAGE_SIZE)
    with open(dst, "rb") as f:
        old_bytes = f.read()
    with faults.inject(FaultPlan.torn_at(2, keep_bytes=100)):
        with pytest.raises(CrashInjected):
            new.save(dst, page_size=PAGE_SIZE)
    with open(dst, "rb") as f:
        assert f.read() == old_bytes
    assert verify_vdoc(dst) == []


def test_transient_oserror_cleans_up_and_retry_succeeds(docs, tmp_path):
    _, new = docs
    dst = str(tmp_path / "doc.vdoc")
    with faults.inject(FaultPlan.oserror_at(2, err=errno.EIO)):
        with pytest.raises(OSError):
            new.save(dst, page_size=PAGE_SIZE)
        assert not os.path.exists(dst)
        assert _tmp_leftovers(tmp_path) == []  # failed save cleaned up
        # the fault was transient (consumed on first fire): retry works
        new.save(dst, page_size=PAGE_SIZE)
    assert verify_vdoc(dst, deep=True) == []


def test_bitflip_in_transit_caught_by_checksum(docs, tmp_path):
    """A bit flipped between the checksum stamp and the platter: the save
    reports success, but fsck and the next read both catch it."""
    _, new = docs
    dst = str(tmp_path / "doc.vdoc")
    # op 0 is the temp file's header write; op 1 writes page 0 — a data
    # page of the first vector chain
    with faults.inject(FaultPlan.bitflip_at(1, byte=50)) as plan:
        new.save(dst, page_size=PAGE_SIZE)
    assert (1, "bitflip") in plan.fired
    findings = verify_vdoc(dst)
    assert any(f.code == "page-crc" and f.page == 0 for f in findings)
    with VectorizedDocument.open(dst, pool_pages=8) as disk:
        with pytest.raises(StorageError):
            for vec in disk.vectors.values():
                vec.scan()
