"""Storage-layer property tests: slotted pages, heap files, buffer pool.

Random write/read-back over page boundaries, clock eviction under pools
smaller than the data, strict pin accounting, and persistence across
reopen."""

import random

import pytest

from repro.errors import StorageError
from repro.storage import BufferPool, HeapFile, PageFile, SlottedPage
from repro.storage.pages import PAGE_HEADER, check_page_size


def _random_records(rng, n, max_len):
    return [bytes(rng.randrange(256) for _ in range(rng.randrange(max_len)))
            for _ in range(n)]


def test_slotted_page_roundtrip_and_capacity():
    ps = 128
    buf = bytearray(ps)
    page = SlottedPage.init(buf, ps)
    assert page.n_slots == 0 and page.next_page == -1
    assert page.free_ptr == PAGE_HEADER

    written = []
    while page.free_capacity() >= 1:
        data = bytes([len(written)]) * min(11, page.free_capacity())
        page.append_fragment(data, continued=False)
        written.append(data)
    assert page.n_slots == len(written) > 1
    for i, data in enumerate(written):
        frag, cont = page.fragment(i)
        assert frag == data and cont is False

    page.next_page = 42
    assert page.next_page == 42
    # full page rejects further fragments
    with pytest.raises(StorageError):
        page.append_fragment(b"x" * ps, continued=False)


def test_page_size_bounds():
    with pytest.raises(StorageError):
        check_page_size(16)
    with pytest.raises(StorageError):
        check_page_size(1 << 20)


@pytest.mark.parametrize("page_size,capacity", [(64, 4), (128, 2), (256, None)])
def test_heap_random_write_read_back(tmp_path, page_size, capacity):
    """Records of random sizes (0 .. 4x page size) survive write/read-back
    across page boundaries, with interleaved heaps in one file."""
    rng = random.Random(page_size * 1000 + (capacity or 0))
    path = str(tmp_path / "heap.pg")
    file = PageFile.create(path, page_size)
    pool = BufferPool(file, capacity=capacity)

    heaps = [HeapFile.create(pool) for _ in range(3)]
    expect = [[], [], []]
    for _ in range(120):
        h = rng.randrange(3)
        rec = bytes(rng.randrange(256)
                    for _ in range(rng.randrange(4 * page_size)))
        heaps[h].append(rec)
        expect[h].append(rec)

    for h, heap in enumerate(heaps):
        assert list(heap.records()) == expect[h]
        assert len(heap.pages()) == heap.n_pages
    assert pool.pinned_total() == 0
    if capacity is not None:
        assert pool.resident() <= capacity
        assert pool.stats.evictions > 0  # data far exceeds the pool
    heads = [h.head for h in heaps]
    pool.flush()
    file.close()

    # reopen: everything must come back from disk alone
    file2 = PageFile.open(path)
    pool2 = BufferPool(file2, capacity=capacity)
    for h, head in enumerate(heads):
        assert list(HeapFile(pool2, head).records()) == expect[h]
    assert pool2.pinned_total() == 0
    file2.close()


def test_empty_and_huge_records(tmp_path):
    file = PageFile.create(str(tmp_path / "h.pg"), 64)
    pool = BufferPool(file, capacity=2)
    heap = HeapFile.create(pool)
    records = [b"", b"a", b"", b"x" * 5000, b"", b"tail"]
    for r in records:
        heap.append(r)
    assert list(heap.records()) == records
    assert heap.n_pages > 5000 // 64  # really fragmented across the chain
    assert pool.pinned_total() == 0
    file.close()


def test_pool_hits_vs_misses(tmp_path):
    file = PageFile.create(str(tmp_path / "h.pg"), 128)
    pool = BufferPool(file, capacity=None)
    heap = HeapFile.create(pool)
    for i in range(50):
        heap.append(f"record-{i}".encode())
    base_misses = pool.stats.misses
    list(heap.records())  # first pass: writer left everything resident
    assert pool.stats.misses == base_misses
    assert pool.stats.pages_read == 0  # nothing ever hit the disk
    assert pool.stats.hits > 0
    file.close()


def test_pool_eviction_writes_back_dirty_pages(tmp_path):
    path = str(tmp_path / "h.pg")
    file = PageFile.create(path, 64)
    pool = BufferPool(file, capacity=2)
    heap = HeapFile.create(pool)
    recs = [f"value-{i:04d}".encode() for i in range(200)]
    for r in recs:
        heap.append(r)
    assert pool.stats.evictions > 0
    assert pool.stats.pages_written > 0  # evicted dirty pages hit the disk
    pool.flush()
    file.close()
    file2 = PageFile.open(path)
    assert list(HeapFile(BufferPool(file2), heap.head).records()) == recs
    file2.close()


def test_pin_accounting_and_exhaustion(tmp_path):
    file = PageFile.create(str(tmp_path / "h.pg"), 64)
    pool = BufferPool(file, capacity=2)
    p0, _ = pool.new_page()
    p1, _ = pool.new_page()
    p2 = file.allocate()
    # both frames pinned: pinning a third page must fail loudly
    with pytest.raises(StorageError, match="pinned"):
        pool.pin(p2)
    pool.unpin(p0, dirty=True)
    buf = pool.pin(p2)  # now p0 can be evicted
    assert len(buf) == 64
    assert pool.stats.evictions == 1
    pool.unpin(p1, dirty=True)
    pool.unpin(p2)
    assert pool.pinned_total() == 0
    # double unpin is an error, not a silent no-op
    with pytest.raises(StorageError, match="not pinned"):
        pool.unpin(p2)
    file.close()


def test_pool_rejects_capacity_below_two(tmp_path):
    file = PageFile.create(str(tmp_path / "h.pg"), 64)
    with pytest.raises(StorageError):
        BufferPool(file, capacity=1)
    file.close()


def test_page_file_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.vdoc"
    bad.write_bytes(b"definitely not a page file")
    with pytest.raises(StorageError, match="magic"):
        PageFile.open(str(bad))
    assert not PageFile.is_page_file(str(bad))
    assert not PageFile.is_page_file(str(tmp_path / "missing"))


def test_read_page_out_of_range(tmp_path):
    file = PageFile.create(str(tmp_path / "h.pg"), 64)
    with pytest.raises(StorageError, match="out of range"):
        file.read_page(0)
    file.close()
