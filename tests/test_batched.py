"""Batched combo execution: one plan run over the whole combo table.

The invariant under test — each data vector is swept at most once per plan
*operation* regardless of how many concrete-path combos the dataguide
yields — is machine-asserted by ``EvalContext.check_passes``; these tests
exercise both sides of it: the batched executor satisfies it, the
per-combo baseline measurably violates it, and the assertion itself has
teeth."""

import pytest

from repro.core.context import EvalContext
from repro.core.engine import eval_query, eval_xq
from repro.core.vdoc import VectorizedDocument
from repro.datasets.synth import xmark_like_xml
from repro.errors import EngineInvariantError

# //item expands to one concrete path per region (4 combos for $i); the
# selection on $p's age vector is shared by every combo, so the per-combo
# baseline sweeps it once per combo where batched sweeps it once total.
MULTI_COMBO_XQ = (
    "for $i in /site//item, $p in /site/people/person "
    "where $i/quantity > '5' and $p/profile/age > '60' "
    "return <r>{$i/name}{$p/name}</r>"
)
JOIN_XQ = (
    "for $i in /site//item, $j in /site//item "
    "where $i/location = $j/location and $i/quantity > '7' "
    "return <r>{$i/name}{$j/name}</r>"
)


@pytest.fixture(scope="module")
def vdoc():
    return VectorizedDocument.from_xml(xmark_like_xml(20, seed=3))


def test_batched_matches_per_combo_and_naive(vdoc):
    for q in (MULTI_COMBO_XQ, JOIN_XQ):
        batched = eval_xq(vdoc, q, batched=True)
        per_combo = eval_xq(vdoc, q, batched=False)
        naive = eval_xq(vdoc, q, mode="naive")
        assert batched.to_xml() == per_combo.to_xml() == naive.to_xml()
        assert batched.n_tuples == per_combo.n_tuples > 0


def test_batched_one_sweep_per_operation(vdoc):
    """Machine assertion of the acceptance bar: across all combos, batched
    execution sweeps every data vector at most once per plan operation
    (and the run completes with ``strict_passes`` armed)."""
    ctx = EvalContext()
    eval_xq(vdoc, MULTI_COMBO_XQ, batched=True, ctx=ctx)
    counts = ctx.pass_counts()
    assert counts and all(v == 1 for v in counts.values())


def test_per_combo_baseline_violates_the_invariant(vdoc):
    """The regression the batched executor removes: the per-combo baseline
    sweeps shared vectors once per combo.  //item yields 4 concrete paths,
    so the age selection runs once per combo surviving to it (>1) over the
    very same vector."""
    ctx = EvalContext(strict_passes=False)
    eval_xq(vdoc, MULTI_COMBO_XQ, batched=False, ctx=ctx)
    counts = ctx.pass_counts()
    age = [(k, v) for k, v in counts.items()
           if k[-1] == ("site", "people", "person", "profile", "age", "#")]
    assert age and all(v > 1 for _, v in age)
    assert max(counts.values()) > 1
    # the recorded counts are exactly what the armed assertion refuses
    # (the engine disarms it for the baseline — that is the measured gap)
    ctx.strict_passes = True
    with pytest.raises(EngineInvariantError, match="more than once per"):
        ctx.check_passes()


def test_check_passes_has_teeth(vdoc):
    ctx = EvalContext()
    key = (0, ("site", "people", "person", "name", "#"))
    ctx.note_pass(vdoc, key)
    ctx.check_passes()  # one sweep is fine
    ctx.note_pass(vdoc, key)
    with pytest.raises(EngineInvariantError, match="person/name"):
        ctx.check_passes()
    # disarmed contexts count but do not raise
    ctx.strict_passes = False
    ctx.check_passes()


def test_begin_opens_a_fresh_window(vdoc):
    """Consecutive queries through one context (the repository pattern)
    must not see each other's pass counts or cached columns."""
    ctx = EvalContext()
    eval_xq(vdoc, MULTI_COMBO_XQ, batched=True, ctx=ctx)
    first = ctx.pass_counts()
    eval_xq(vdoc, MULTI_COMBO_XQ, batched=True, ctx=ctx)
    assert ctx.pass_counts() == first  # reset, not accumulated


def test_shared_context_xpath_and_xq(vdoc):
    """eval_query and eval_xq both accept an external context and keep the
    scan-once guarantee through its per-document cache."""
    ctx = EvalContext()
    res = eval_query(vdoc, "//person/profile/age/text()", ctx=ctx)
    assert res.count() == 20
    out = eval_xq(vdoc, MULTI_COMBO_XQ, ctx=ctx)
    assert out.n_tuples > 0


def test_canonical_is_vectorized_and_correct(vdoc):
    """VXResult.canonical() (now a bulk gather, not per-value .at calls)
    agrees with the naive tree evaluator on a multi-path result."""
    q = "//item[quantity > 5]/name"
    vx = eval_query(vdoc, q, mode="vx").canonical()
    tree = eval_query(vdoc, q, mode="naive").canonical()
    assert vx == tree and len(vx) > 0
