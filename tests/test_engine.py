"""Engine invariants (acceptance criteria): the vectorized path performs
zero skeleton decompression, and scans each touched data vector at most
once per query."""

import numpy as np
import pytest

import repro.core.reconstruct as reconstruct_mod
from repro.core.context import EvalContext
from repro.core.engine import eval_query
from repro.core.reconstruct import forbid_decompression
from repro.core.vdoc import VectorizedDocument
from repro.datasets.synth import xmark_like_xml
from repro.errors import DecompressionForbiddenError, EngineInvariantError


@pytest.fixture(scope="module")
def vdoc():
    return VectorizedDocument.from_xml(xmark_like_xml(60, seed=3))


QUERIES = [
    "/site/people/person[profile/age = '32']/name",
    "/site/people/person[profile/age >= 40][profile/education]/name/text()",
    "//item[location = 'Kenya']/name",
    "/site/regions/*/item/quantity/text()",
    "//person[phone]",
]


@pytest.mark.parametrize("query", QUERIES)
def test_vx_never_decompresses(vdoc, query):
    before = reconstruct_mod.DECOMPRESSION_COUNT
    eval_query(vdoc, query, mode="vx")
    assert reconstruct_mod.DECOMPRESSION_COUNT == before


@pytest.mark.parametrize("query", QUERIES)
def test_vx_scans_each_vector_at_most_once(vdoc, query):
    ctx = EvalContext.for_doc(vdoc)
    eval_query(vdoc, query, mode="vx", ctx=ctx)
    assert all(c <= 1 for c in ctx.scan_counts(vdoc).values())


def test_vx_touches_only_predicate_vectors(vdoc):
    ctx = EvalContext.for_doc(vdoc)
    eval_query(vdoc, "/site/people/person[profile/age = '32']/name",
               mode="vx", ctx=ctx)
    touched = {p for p, c in ctx.scan_counts(vdoc).items() if c}
    assert touched == {("site", "people", "person", "profile", "age", "#")}


def test_existence_predicate_touches_no_vector(vdoc):
    ctx = EvalContext.for_doc(vdoc)
    eval_query(vdoc, "//person[phone]/name", mode="vx", ctx=ctx)
    assert not any(ctx.scan_counts(vdoc).values())


def test_forbid_decompression_guard(vdoc):
    with forbid_decompression():
        with pytest.raises(DecompressionForbiddenError):
            vdoc.to_tree()
    vdoc.to_tree()  # allowed again outside the guard


def test_naive_mode_decompresses_exactly_once(vdoc):
    before = reconstruct_mod.DECOMPRESSION_COUNT
    eval_query(vdoc, "/site/people/person/name", mode="naive")
    assert reconstruct_mod.DECOMPRESSION_COUNT == before + 1


def test_engine_flags_double_scans(vdoc):
    # Simulate a buggy evaluator that scans a vector twice: seed the
    # context's fresh accounting window with extra scans right after the
    # guard opens it, so the post-query scan-once assertion trips.
    ctx = EvalContext.for_doc(vdoc)
    vec = vdoc.vectors[("site", "people", "person", "profile", "age", "#")]
    original_begin = ctx.begin

    def tampered_begin(doc):
        original_begin(doc)
        ctx.note_scan(vec)
        ctx.note_scan(vec)

    ctx.begin = tampered_begin
    with pytest.raises(EngineInvariantError):
        eval_query(vdoc, "/site/people/person[profile/age = '32']",
                   mode="vx", ctx=ctx)
    # the accounting lives on the context, not the document: a fresh
    # context over the same shared vectors is clean
    fresh = EvalContext.for_doc(vdoc)
    eval_query(vdoc, "/site/people/person[profile/age = '32']",
               mode="vx", ctx=fresh)
    assert all(c <= 1 for c in fresh.scan_counts(vdoc).values())


def test_unknown_mode_rejected(vdoc):
    with pytest.raises(ValueError):
        eval_query(vdoc, "/site", mode="turbo")


def test_result_ordinals_are_sorted_int64(vdoc):
    res = eval_query(vdoc, "//item[quantity > 2]", mode="vx")
    for _, ids in res.groups:
        assert ids.dtype == np.int64
        assert (np.diff(ids) > 0).all()
