"""Engine invariants (acceptance criteria): the vectorized path performs
zero skeleton decompression, and scans each touched data vector at most
once per query."""

import numpy as np
import pytest

import repro.core.reconstruct as reconstruct_mod
from repro.core.engine import eval_query
from repro.core.reconstruct import forbid_decompression
from repro.core.vdoc import VectorizedDocument
from repro.datasets.synth import xmark_like_xml
from repro.errors import DecompressionForbiddenError, EngineInvariantError


@pytest.fixture(scope="module")
def vdoc():
    return VectorizedDocument.from_xml(xmark_like_xml(60, seed=3))


QUERIES = [
    "/site/people/person[profile/age = '32']/name",
    "/site/people/person[profile/age >= 40][profile/education]/name/text()",
    "//item[location = 'Kenya']/name",
    "/site/regions/*/item/quantity/text()",
    "//person[phone]",
]


@pytest.mark.parametrize("query", QUERIES)
def test_vx_never_decompresses(vdoc, query):
    before = reconstruct_mod.DECOMPRESSION_COUNT
    eval_query(vdoc, query, mode="vx")
    assert reconstruct_mod.DECOMPRESSION_COUNT == before


@pytest.mark.parametrize("query", QUERIES)
def test_vx_scans_each_vector_at_most_once(vdoc, query):
    eval_query(vdoc, query, mode="vx")
    assert all(v.scan_count <= 1 for v in vdoc.vectors.values())


def test_vx_touches_only_predicate_vectors(vdoc):
    eval_query(vdoc, "/site/people/person[profile/age = '32']/name", mode="vx")
    touched = {p for p, v in vdoc.vectors.items() if v.scan_count}
    assert touched == {("site", "people", "person", "profile", "age", "#")}


def test_existence_predicate_touches_no_vector(vdoc):
    eval_query(vdoc, "//person[phone]/name", mode="vx")
    assert not any(v.scan_count for v in vdoc.vectors.values())


def test_forbid_decompression_guard(vdoc):
    with forbid_decompression():
        with pytest.raises(DecompressionForbiddenError):
            vdoc.to_tree()
    vdoc.to_tree()  # allowed again outside the guard


def test_naive_mode_decompresses_exactly_once(vdoc):
    before = reconstruct_mod.DECOMPRESSION_COUNT
    eval_query(vdoc, "/site/people/person/name", mode="naive")
    assert reconstruct_mod.DECOMPRESSION_COUNT == before + 1


def test_engine_flags_double_scans(vdoc):
    # Force a scan before evaluation so the per-query counter trips: the
    # engine resets counters itself, so simulate a buggy evaluator by
    # monkeypatching reset to a no-op.
    vdoc.reset_scan_counts()
    vec = vdoc.vectors[("site", "people", "person", "profile", "age", "#")]
    vec.scan_count = 2
    original = vdoc.reset_scan_counts
    vdoc.reset_scan_counts = lambda: None
    try:
        with pytest.raises(EngineInvariantError):
            eval_query(vdoc, "/site/people/person[profile/age = '32']", mode="vx")
    finally:
        vdoc.reset_scan_counts = original
        vdoc.reset_scan_counts()


def test_unknown_mode_rejected(vdoc):
    with pytest.raises(ValueError):
        eval_query(vdoc, "/site", mode="turbo")


def test_result_ordinals_are_sorted_int64(vdoc):
    res = eval_query(vdoc, "//item[quantity > 2]", mode="vx")
    for _, ids in res.groups:
        assert ids.dtype == np.int64
        assert (np.diff(ids) > 0).all()
