"""Regression: malformed numeric character references must raise
ParseError (the parser's error contract), never a raw ValueError, and
must carry the offending position."""

import pytest

from repro.errors import ParseError
from repro.xmldata import parse
from repro.xmldata.escape import unescape


@pytest.mark.parametrize("ref", [
    "&#xzz;",        # non-hex digits
    "&#;",           # empty reference
    "&#x;",          # empty hex reference
    "&#x110000;",    # beyond U+10FFFF
    "&#1114112;",    # beyond U+10FFFF, decimal
    "&#-3;",         # sign is not a digit
    "&#1_0;",        # underscore separators rejected
    "&#0x41;",       # hex prefix inside a decimal reference
])
def test_malformed_char_refs_raise_parse_error(ref):
    with pytest.raises(ParseError):
        unescape("ab" + ref + "cd")
    # and never a bare ValueError escaping the contract
    try:
        unescape(ref)
    except ParseError:
        pass


@pytest.mark.parametrize("text,expected", [
    ("&#x41;", "A"),
    ("&#X41;", "A"),
    ("&#65;", "A"),
    ("&#x10FFFF;", "\U0010ffff"),
    ("&#xa9;&#169;", "©©"),
])
def test_wellformed_char_refs_resolve(text, expected):
    assert unescape(text) == expected


def test_position_is_reported():
    with pytest.raises(ParseError) as exc:
        unescape("abcd&#xzz;")
    assert exc.value.pos == 4
    assert "offset 4" in str(exc.value)


@pytest.mark.parametrize("doc", [
    "<a>&#xzz;</a>",
    "<a>&#;</a>",
    "<a>&#x110000;</a>",
    '<a b="&#xzz;"/>',
])
def test_parser_reports_parse_error_not_value_error(doc):
    with pytest.raises(ParseError):
        parse(doc)
