"""Cross-evaluator test (satellite): the naive tree walk and the vectorized
evaluator must return identical results — same counts, same canonical
content, same order — over a corpus of paths x documents, including
wildcard and descendant axes."""

import random

import pytest

from repro.core.engine import eval_query
from repro.core.vdoc import VectorizedDocument
from repro.datasets.synth import xmark_like_xml

from test_roundtrip_property import random_tree

DOCS = {
    "fig1": (
        "<bib>"
        "<book><title>T1</title><author>A</author><author>B</author>"
        "<publisher>SBP</publisher></book>"
        "<book><title>T2</title><author>B</author>"
        "<publisher>Other</publisher></book>"
        "<article><title>T3</title><author>A</author></article>"
        "</bib>"
    ),
    "mixed": (
        '<r a="1">t1<x><y>5</y></x>t2<x><y>7</y><y>5</y></x>'
        '<z><x><y>5</y></x></z><w id="k"><y>9</y></w></r>'
    ),
    "xmark": xmark_like_xml(40, seed=7),
}

QUERIES = [
    "/bib/book/title",
    "/bib/book/author",
    "/bib/book[publisher = 'SBP']/title",
    "/bib/book[author = 'B']/title/text()",
    "/bib/*/title",
    "//author",
    "//book[publisher != 'SBP']/author",
    "/r/x/y",
    "/r/x[y = '5']",
    "/r/x[y > 4]/y/text()",
    "//x/y",
    "//x[y = '5']",
    "/r//y",
    "/r/*",
    "//*[y = '5']",
    "/r/w/@id",
    "/r[@a = '1']/x",
    "//w[@id = 'k']",
    "/r/text()",
    "//y/text()",
    "/site/people/person/name",
    "/site/people/person[profile/age = '32']/name",
    "/site/people/person[profile/age >= 60]/emailaddress/text()",
    "/site/regions/*/item[location = 'Japan']/name",
    "//item[quantity < 3]",
    "//person[phone]/profile/age",
    "/site//interest",
    "//item[@id = 'item5']/location/text()",
    "/site/closed_auctions/closed_auction[price <= 100]/date",
    "//*[age]",
]


def _both(vdoc, query):
    vx = eval_query(vdoc, query, mode="vx")
    naive = eval_query(vdoc, query, mode="naive")
    return vx, naive


@pytest.mark.parametrize("query", QUERIES)
@pytest.mark.parametrize("doc", sorted(DOCS))
def test_cross_evaluator_corpus(doc, query):
    vdoc = VectorizedDocument.from_xml(DOCS[doc])
    vx, naive = _both(vdoc, query)
    assert vx.count() == naive.count()
    assert vx.canonical() == naive.canonical()


@pytest.mark.parametrize("seed", range(12))
def test_cross_evaluator_random_docs(seed):
    rng = random.Random(seed + 500)
    vdoc = VectorizedDocument.from_tree(random_tree(rng))
    for query in [
        "//a", "//b/text()", "/a/b", "//item", "//*[id]", "//c[id = 'x']",
        "//*/a", "//data//b", "/a//c/@id",
    ]:
        vx, naive = _both(vdoc, query)
        assert vx.count() == naive.count(), query
        assert vx.canonical() == naive.canonical(), query


def test_text_values_agree():
    vdoc = VectorizedDocument.from_xml(DOCS["xmark"])
    q = "/site/people/person/profile/age/text()"
    vx, naive = _both(vdoc, q)
    assert vx.text_values() == naive.text_values()
