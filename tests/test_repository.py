"""Repository layer: multi-document collections over one shared buffer
pool — path catalog, collection() queries, eviction fairness, corruption
isolation, and the repository fsck."""

import json
import os

import pytest

from repro.core.engine import eval_xq
from repro.core.qgraph import compile_query
from repro.core.vdoc import VectorizedDocument
from repro.core.xquery.parser import parse_xq
from repro.datasets.synth import xmark_like_xml
from repro.errors import StorageError, XQCompileError, XQSyntaxError
from repro.repo import (
    MANIFEST,
    Repository,
    RepositoryError,
    member_paths,
    verify_repository,
)
from repro.storage.vdocfile import open_vdoc
from repro.xmldata.model import Element
from repro.xmldata.serializer import serialize

SIZES = (14, 23, 9)
COLL_XQ = (
    "for $p in collection('auctions')/site/people/person "
    "where $p/profile/age > '40' "
    "return <r>{$p/name}{$p/profile/age}</r>"
)
PLAIN_XQ = (
    "for $p in /site/people/person where $p/profile/age > '40' "
    "return <r>{$p/name}{$p/profile/age}</r>"
)


def _docs(tmp_path):
    files = []
    for i, n in enumerate(SIZES):
        f = tmp_path / f"doc{i}.xml"
        f.write_text(xmark_like_xml(n, seed=i), encoding="utf-8")
        files.append(f)
    return files


def make_repo(tmp_path, pool_pages=None, page_size=512):
    d = str(tmp_path / "repo")
    repo = Repository.init(d, "auctions")
    for f in _docs(tmp_path):
        repo.add(str(f), page_size=page_size)
    repo.close()
    return Repository.open(d, pool_pages=pool_pages)


def expected_concat(tmp_path, query):
    """Reference: per-document in-memory evaluation, results concatenated
    member-major under one root."""
    xq = parse_xq(query)
    kids = []
    for f in _docs(tmp_path):
        vdoc = VectorizedDocument.from_xml(f.read_text(encoding="utf-8"))
        res = eval_xq(vdoc, xq)
        kids.extend(res.vdoc.to_tree().children)
    return serialize(Element(xq.root_tag, children=kids))


# -- manifest and catalog ----------------------------------------------------


def test_init_add_reopen_catalog(tmp_path):
    with make_repo(tmp_path) as repo:
        assert repo.name == "auctions"
        assert repo.members() == ["doc0", "doc1", "doc2"]
        cat = repo.catalog_paths()
        age = cat[("site", "people", "person", "profile", "age", "#")]
        assert age == {"doc0": 14, "doc1": 23, "doc2": 9}
        # the persisted catalog matches a recomputation from each member
        for name in repo.members():
            entry = repo._entry(name)
            assert [(tuple(p), c) for p, c in entry["paths"]] == \
                member_paths(repo.member(name))


def test_add_existing_vdoc_and_errors(tmp_path):
    d = str(tmp_path / "repo")
    repo = Repository.init(d, "auctions")
    xml = tmp_path / "x.xml"
    xml.write_text(xmark_like_xml(6), encoding="utf-8")
    vdoc = VectorizedDocument.from_xml(xml.read_text(encoding="utf-8"))
    saved = str(tmp_path / "pre.vdoc")
    vdoc.save(saved)

    repo.add(saved, name="copied")          # .vdoc files are copied in
    repo.add(str(xml), name="parsed")       # .xml files are vectorized
    assert repo.members() == ["copied", "parsed"]
    with pytest.raises(RepositoryError, match="already exists"):
        repo.add(str(xml), name="copied")

    # a corrupt source is rejected and rolled back: no member, no file
    bad = tmp_path / "bad.vdoc"
    bad.write_bytes(open(saved, "rb").read()[:600])
    with pytest.raises(StorageError):
        repo.add(str(bad), name="broken")
    assert repo.members() == ["copied", "parsed"]
    assert not os.path.exists(os.path.join(d, "broken.vdoc"))

    with pytest.raises(RepositoryError, match="already a repository"):
        Repository.init(d, "again")
    repo.close()


def test_add_rejects_unsafe_member_names(tmp_path):
    """Member names are validated at the membership boundary: a traversal
    name must never be turned into a path outside the repository, and a
    comma or CR/LF must never reach the comma-joined X-Pruned header."""
    d = str(tmp_path / "repo")
    repo = Repository.init(d, "auctions")
    src = tmp_path / "ok.xml"
    src.write_text("<r><a>1</a></r>", encoding="utf-8")
    for bad in ("../evil", "a/b", "a\\b", "a,b", "a\r\nb", "a b",
                ".hidden", "..", "", 42):
        with pytest.raises(RepositoryError, match="invalid member name"):
            repo.add(str(src), name=bad)
    assert repo.members() == []
    # rejection happened before any file was written — in particular no
    # 'evil.vdoc' escaped into the parent directory
    assert os.listdir(d) == [MANIFEST]
    assert not os.path.exists(str(tmp_path / "evil.vdoc"))

    # names covering the full allowed alphabet still work, including an
    # *interior* dot
    repo.add(str(src), name="ok-1.2_X")
    assert repo.members() == ["ok-1.2_X"]
    repo.close()

    # a default name derived from the filename passes through the same check
    evil = tmp_path / "not a slug!.xml"
    evil.write_text("<r/>", encoding="utf-8")
    with Repository.open(d) as repo:
        with pytest.raises(RepositoryError, match="invalid member name"):
            repo.add(str(evil))


def test_manifest_rejects_unsafe_member_names(tmp_path):
    """A hand-edited manifest with a traversal member name is refused at
    open — the slug check guards both ends."""
    repo = make_repo(tmp_path)
    d = repo.dirpath
    repo.close()
    mpath = os.path.join(d, MANIFEST)
    man = json.load(open(mpath, encoding="utf-8"))
    man["members"][0]["name"] = "../evil"
    json.dump(man, open(mpath, "w", encoding="utf-8"))
    with pytest.raises(RepositoryError, match="not a safe slug"):
        Repository.open(d)


def test_manifest_schema_is_strict(tmp_path):
    repo = make_repo(tmp_path)
    d = repo.dirpath
    repo.close()
    mpath = os.path.join(d, MANIFEST)
    good = json.load(open(mpath, encoding="utf-8"))

    for mutate, msg in [
        (lambda m: m.update(format=99), "unsupported format"),
        (lambda m: m.update(name=""), "collection name"),
        (lambda m: m["members"][0].update(name=good["members"][1]["name"]),
         "duplicate member"),
        (lambda m: m["members"][0].update(file="../evil.vdoc"), "bad file"),
        (lambda m: m["members"][0]["paths"].append([["p"], -1]),
         "bad path entry"),
    ]:
        broken = json.loads(json.dumps(good))
        mutate(broken)
        json.dump(broken, open(mpath, "w", encoding="utf-8"))
        with pytest.raises(RepositoryError, match=msg):
            Repository.open(d)
        findings = verify_repository(d)
        assert len(findings) == 1 and findings[0].code == "repo-manifest"

    json.dump(good, open(mpath, "w", encoding="utf-8"))
    assert verify_repository(d) == []


def test_fsck_catalog_cross_check(tmp_path):
    repo = make_repo(tmp_path)
    d = repo.dirpath
    repo.close()
    mpath = os.path.join(d, MANIFEST)
    m = json.load(open(mpath, encoding="utf-8"))
    # tamper one member's cataloged count: a stale catalog is a finding
    m["members"][1]["paths"][0][1] += 7
    json.dump(m, open(mpath, "w", encoding="utf-8"))
    findings = verify_repository(d)
    assert [f.code for f in findings] == ["repo-catalog"]
    assert "member 'doc1'" in findings[0].message


# -- collection() queries ----------------------------------------------------


def test_collection_parse_and_compile():
    xq = parse_xq(COLL_XQ)
    src = xq.bindings[0].source
    assert src.collection == "auctions"
    assert str(src).startswith("collection('auctions')")
    gq, _ = compile_query(xq)
    assert gq.collection == "auctions"

    with pytest.raises(XQSyntaxError, match="quoted name"):
        parse_xq("for $p in collection(auctions)/site return <r>{$p}</r>")
    with pytest.raises(XQSyntaxError, match="absolute path"):
        parse_xq("for $p in collection('a') return <r>{$p}</r>")
    with pytest.raises(XQCompileError, match="at most one collection"):
        compile_query(parse_xq(
            "for $a in collection('x')/site, $b in collection('y')/site "
            "return <r>{$a}</r>"))


def test_collection_name_must_match_repository(tmp_path):
    with make_repo(tmp_path) as repo:
        with pytest.raises(XQCompileError, match="'other'.*'auctions'"):
            repo.xq(COLL_XQ.replace("'auctions'", "'other'"))


def test_collection_query_matches_concatenated_per_doc(tmp_path):
    """The acceptance bar: collection() results over a shared pool smaller
    than the total vector bytes are byte-identical to concatenated
    per-document in-memory evaluation, with zero leaked pins pool-wide."""
    with make_repo(tmp_path, pool_pages=8, page_size=512) as repo:
        total_pages = sum(
            os.path.getsize(os.path.join(repo.dirpath, m["file"])) // 512
            for m in repo.manifest["members"])
        assert repo.pool.capacity < total_pages  # genuine pool pressure

        res = repo.xq(COLL_XQ)
        assert res.to_xml() == expected_concat(tmp_path, COLL_XQ)
        assert res.n_tuples == sum(r.n_tuples for _, r in res.results)
        assert repo.pool.pinned_total() == 0
        assert repo.pool.resident() <= repo.pool.capacity

        # a query with no collection() source ranges over all members too
        res2 = repo.xq(PLAIN_XQ)
        assert res2.to_xml() == expected_concat(tmp_path, PLAIN_XQ)

        # batched and per-combo executors agree over the repository
        res3 = repo.xq(COLL_XQ, batched=False)
        assert res3.to_xml() == res.to_xml()


def test_collection_xpath(tmp_path):
    with make_repo(tmp_path) as repo:
        out = repo.xpath("/site/people/person")
        assert [(n, r.count()) for n, r in out] == \
            [("doc0", 14), ("doc1", 23), ("doc2", 9)]


# -- shared pool behaviour ---------------------------------------------------


def test_shared_pool_eviction_fairness_and_stats(tmp_path):
    """3 documents on one tiny pool: every member gets pages in and out of
    the pool (no member starves or monopolizes frames), per-member and
    pool-wide counters agree, and pins end at zero."""
    with make_repo(tmp_path, pool_pages=6, page_size=512) as repo:
        repo.xq(COLL_XQ)
        stats = repo.io_stats()
        assert stats["pinned"] == 0
        assert stats["pool_resident"] <= 6
        assert stats["pool_evictions"] > 0
        views = repo.pool.views()
        assert len(views) == 3
        for name in repo.members():
            # every member did real I/O through the shared pool...
            assert stats[f"{name}.pages_read"] > 0
        # ...and nobody holds more frames than the pool can ever give up
        assert sum(v.stats.evictions for v in views) == \
            stats["pool_evictions"]
        assert sum(stats[f"{n}.pages_read"] for n in repo.members()) == \
            stats["pool_pages_read"]

        # a second run under pressure still satisfies every invariant
        repo.xq(COLL_XQ)
        assert repo.pool.pinned_total() == 0


def test_pool_strict_pins_under_minimum_capacity(tmp_path):
    """The pool refuses capacities that cannot hold one pinned page plus a
    victim; at the minimum viable capacity queries still complete."""
    repo = make_repo(tmp_path, pool_pages=2, page_size=512)
    with pytest.raises(StorageError):
        Repository.open(repo.dirpath, pool_pages=1)
    with repo:
        res = repo.xq(COLL_XQ)
        assert res.to_xml() == expected_concat(tmp_path, COLL_XQ)
        assert repo.pool.pinned_total() == 0


# -- corruption isolation ----------------------------------------------------


def _vector_pages(path, vec_path):
    """Page ids a vector's chain occupies (found by recording pins)."""
    from repro.storage import buffer as B

    pages: list[int] = []
    orig = B.FileView.pin

    def rec(self, pid, *a, **k):
        pages.append(pid)
        return orig(self, pid, *a, **k)

    B.FileView.pin = rec
    try:
        with open_vdoc(path) as vd:
            pages.clear()
            vd.vectors[vec_path].scan()
    finally:
        B.FileView.pin = orig
    return sorted(set(pages))


def test_member_corruption_is_isolated(tmp_path):
    """Corrupting one member's data pages: the collection query fails with
    a StorageError naming that member, the shared pool is left clean, and
    sibling members remain fully queryable."""
    repo = make_repo(tmp_path, pool_pages=8, page_size=512)
    victim = os.path.join(repo.dirpath, "doc1.vdoc")
    age = ("site", "people", "person", "profile", "age", "#")
    page = _vector_pages(victim, age)[0]
    with open(victim, "r+b") as f:
        f.seek(page * 512 + 64)
        f.write(b"\xee" * 32)

    with pytest.raises(StorageError, match="member 'doc1'"):
        repo.xq(COLL_XQ)
    assert repo.pool.pinned_total() == 0  # the failure leaked nothing

    # siblings are untouched: query them directly over the same pool
    for name in ("doc0", "doc2"):
        res = eval_xq(repo.member(name), PLAIN_XQ)
        ref = eval_xq(VectorizedDocument.from_xml(
            (tmp_path / f"doc{name[-1]}.xml").read_text(encoding="utf-8")),
            PLAIN_XQ)
        assert res.to_xml() == ref.to_xml()
    assert repo.pool.pinned_total() == 0

    # fsck pins the blame on the member, by name
    findings = verify_repository(repo.dirpath)
    assert findings and all("member 'doc1'" in f.message for f in findings)
    repo.close()


def test_missing_member_file(tmp_path):
    repo = make_repo(tmp_path)
    os.unlink(os.path.join(repo.dirpath, "doc2.vdoc"))
    findings = verify_repository(repo.dirpath)
    assert [f.code for f in findings] == ["repo-member"]
    with pytest.raises(StorageError, match="member 'doc2'"):
        repo.xq(COLL_XQ)
    repo.close()


# -- io_stats surface --------------------------------------------------------


def test_io_stats_per_member_and_pool_wide(tmp_path):
    with make_repo(tmp_path, pool_pages=8, page_size=512) as repo:
        before = repo.io_stats()
        assert before["pool_pages_read"] == 0   # members open lazily
        repo.xq(COLL_XQ)
        stats = repo.io_stats()
        assert set(stats) >= {
            "pool_pages_read", "pool_hits", "pool_misses", "pool_evictions",
            "pool_capacity", "pool_resident", "pinned",
            "doc0.pages_read", "doc1.pages_read", "doc2.pages_read",
        }
        assert stats["pool_capacity"] == 8
