"""The repository result cache: LRU unit behavior, byte-identical hits,
invalidation on membership change, and structural staleness via the
file-identity cache key (mtime/size)."""

import os
import threading

import pytest

from repro.datasets.synth import xmark_like_xml
from repro.repo import Repository, ResultCache

XQ = ("for $p in /site/people/person where $p/profile/age > '30' "
      "return <r>{$p/name}{$p/profile/age}</r>")
XP = "/site/people/person/name"


# -- ResultCache unit behavior -----------------------------------------------


def test_put_get_roundtrip_and_counters():
    c = ResultCache(4096)
    assert c.get("k") is None
    c.put("k", ("frag", 3), 100)
    assert c.get("k") == ("frag", 3)
    s = c.stats()
    assert s["hits"] == 1 and s["misses"] == 1 and s["hit_rate"] == 0.5
    assert s["entries"] == 1 and 0 < s["bytes"] <= 4096


def test_lru_eviction_by_bytes():
    c = ResultCache(1100)    # fits two ~(400+overhead) entries, not three
    c.put("a", "A", 400)
    c.put("b", "B", 400)
    c.put("c", "C", 400)     # evicts the least recently used: "a"
    assert c.get("a") is None
    assert c.get("b") == "B" and c.get("c") == "C"
    assert c.stats()["evictions"] == 1


def test_get_refreshes_recency():
    c = ResultCache(1100)
    c.put("a", "A", 400)
    c.put("b", "B", 400)
    assert c.get("a") == "A"   # touch "a": now "b" is the LRU victim
    c.put("c", "C", 400)
    assert c.get("b") is None
    assert c.get("a") == "A" and c.get("c") == "C"


def test_oversized_value_is_not_cached():
    c = ResultCache(256)
    c.put("big", "X" * 1000, 1000)
    assert c.get("big") is None
    assert len(c) == 0 and c.stats()["bytes"] == 0


def test_replacing_a_key_updates_bytes():
    c = ResultCache(4096)
    c.put("k", "v1", 100)
    c.put("k", "v2", 200)
    assert c.get("k") == "v2"
    assert len(c) == 1
    s = c.stats()
    assert s["bytes"] == 200 + 128  # one entry, the new cost only


def test_clear_counts_invalidations():
    c = ResultCache(4096)
    c.put("a", 1, 10)
    c.put("b", 2, 10)
    assert c.clear() == 2
    assert len(c) == 0 and c.get("a") is None
    assert c.stats()["invalidations"] == 2


def test_max_bytes_must_be_positive():
    with pytest.raises(ValueError):
        ResultCache(0)


def test_cache_is_thread_safe():
    c = ResultCache(1 << 16)
    errors = []

    def worker(base):
        try:
            for i in range(200):
                k = (base + i) % 37
                c.put(k, k, 64)
                v = c.get(k)
                assert v is None or v == k
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i * 13,))
               for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert c.stats()["bytes"] <= 1 << 16


# -- repository integration --------------------------------------------------


def _make_repo(tmp_path, n_members=3, **open_kw):
    d = str(tmp_path / "repo")
    repo = Repository.init(d, "auctions")
    for i in range(n_members):
        f = tmp_path / f"doc{i}.xml"
        f.write_text(xmark_like_xml(8 + 4 * i, seed=i), encoding="utf-8")
        repo.add(str(f), page_size=512)
    repo.close()
    return Repository.open(d, **open_kw)


def test_repo_without_cache_has_none(tmp_path):
    with _make_repo(tmp_path) as repo:
        assert repo.result_cache is None
        repo.xq(XQ)   # still evaluates fine


def test_xq_hits_are_byte_identical(tmp_path):
    with _make_repo(tmp_path, result_cache_bytes=1 << 20) as repo:
        cold = repo.xq(XQ)
        cold_xml, cold_tuples = cold.to_xml(), cold.n_tuples
        assert repo.result_cache.stats()["hits"] == 0
        warm = repo.xq(XQ)
        assert warm.to_xml() == cold_xml
        assert warm.n_tuples == cold_tuples
        assert warm.pruned == cold.pruned
        s = repo.result_cache.stats()
        assert s["hits"] == 3 and s["entries"] == 3  # one per member
        # surrounding whitespace is normalized away; inner text is not
        assert repo.xq("  " + XQ + "\n").to_xml() == cold_xml
        assert repo.result_cache.stats()["hits"] == 6


def test_xpath_hits_preserve_counts(tmp_path):
    with _make_repo(tmp_path, result_cache_bytes=1 << 20) as repo:
        cold = [(n, r.count()) for n, r in repo.xpath(XP)]
        warm = [(n, r.count()) for n, r in repo.xpath(XP)]
        assert warm == cold
        assert repo.result_cache.stats()["hits"] == 3


def test_xq_flags_key_separately(tmp_path):
    """batched and use_indexes change how a query is evaluated, so they
    are part of the key — a hit must never cross evaluation modes."""
    with _make_repo(tmp_path, result_cache_bytes=1 << 20) as repo:
        a = repo.xq(XQ, batched=True).to_xml()
        assert repo.result_cache.stats()["hits"] == 0
        b = repo.xq(XQ, batched=False).to_xml()
        assert repo.result_cache.stats()["hits"] == 0  # different key
        assert a == b


def test_add_invalidates_cache(tmp_path):
    with _make_repo(tmp_path, result_cache_bytes=1 << 20) as repo:
        before = repo.xq(XQ).to_xml()
        assert len(repo.result_cache) > 0
        extra = tmp_path / "extra.xml"
        extra.write_text(xmark_like_xml(12, seed=9), encoding="utf-8")
        repo.add(str(extra), page_size=512)
        assert len(repo.result_cache) == 0
        assert repo.result_cache.stats()["invalidations"] >= 3
        after = repo.xq(XQ)
        assert "extra" in [n for n, _ in after.results]
        assert after.to_xml() != before      # the new member contributes


def test_mtime_change_misses_structurally(tmp_path):
    """The key embeds the member file's (mtime_ns, size): touching the
    file makes every cached entry for it unreachable — staleness is a
    property of the key, not of an invalidation hook someone must call."""
    with _make_repo(tmp_path, result_cache_bytes=1 << 20) as repo:
        repo.xq(XQ)
        s0 = repo.result_cache.stats()
        f = os.path.join(repo.dirpath, "doc1.vdoc")
        st = os.stat(f)
        os.utime(f, ns=(st.st_atime_ns, st.st_mtime_ns + 1_000_000_000))
        warm = repo.xq(XQ)
        s1 = repo.result_cache.stats()
        # doc0/doc2 hit; doc1's old entry is unreachable under the new key
        assert s1["hits"] - s0["hits"] == 2
        assert s1["misses"] - s0["misses"] == 1
        assert warm.to_xml() == repo.xq(XQ).to_xml()


def test_tiny_cache_still_correct(tmp_path):
    """A cache too small to hold the fragments degrades to evaluation,
    never to wrong answers."""
    with _make_repo(tmp_path, result_cache_bytes=1) as repo:
        a = repo.xq(XQ).to_xml()
        b = repo.xq(XQ).to_xml()
        assert a == b
        assert len(repo.result_cache) == 0   # nothing fit


def test_concurrent_cached_queries_byte_identical(tmp_path):
    with _make_repo(tmp_path, pool_pages=64,
                    result_cache_bytes=1 << 20) as repo:
        expected = repo.xq(XQ).to_xml()
        errors = []

        def worker():
            try:
                for _ in range(4):
                    assert repo.xq(XQ).to_xml() == expected
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert repo.result_cache.stats()["hits"] > 0
        assert repo.pool.pinned_total() == 0
