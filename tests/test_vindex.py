"""Value-index unit tests: probe semantics against naive references,
segment encode/decode roundtrip, and the decoder's structural validation
(every tampered record fails as ``CorruptDataError``, never as a wrong
probe answer)."""

import random
import struct

import numpy as np
import pytest

from repro.errors import CorruptDataError
from repro.index import N_DATA_RECORDS, N_KEY_RECORDS
from repro.index.segment import check_segment, decode_segment, encode_segment
from repro.index.vindex import (
    ValueIndex,
    build_value_index,
    merge_codings,
    select_keep,
    value_hash,
)
from repro.util import parse_float

VPATH = ("db", "rec", "a", "#")


def _column(rng, n):
    vocab = ["alpha", "beta", "näme", "7", "-3.5", "0", "12e1",
             "nan", "inf", "name 3", "7.0", "zz top"]
    return [rng.choice(vocab) for _ in range(n)]


def _naive_eq(col, value):
    return [i for i, v in enumerate(col) if v == value]


def _naive_range(col, op, const):
    try:
        c = parse_float(const)
    except ValueError:
        return None
    out = []
    for i, v in enumerate(col):
        try:
            x = parse_float(v)
        except ValueError:
            continue
        if x != x or c != c:
            continue
        if (op == "<" and x < c) or (op == "<=" and x <= c) or \
                (op == ">" and x > c) or (op == ">=" and x >= c):
            out.append(i)
    return out


def test_probes_match_naive_reference():
    rng = random.Random(7)
    col = _column(rng, 200)
    vi = build_value_index(VPATH, col)
    assert vi.n == 200
    assert list(vi.keys) == sorted(set(col))
    # eq probes, in- and out-of-vocabulary
    for value in set(col) | {"missing", "", "name 4"}:
        assert vi.eq_rows(value).tolist() == _naive_eq(col, value)
    # range probes over numeric and non-numeric constants
    for op in ("<", "<=", ">", ">="):
        for const in ("7", "-3.5", "0", "120", "999", "nan"):
            got = vi.range_rows(op, const)
            want = _naive_range(col, op, const)
            assert sorted(got.tolist()) == want, (op, const)
        assert vi.range_rows(op, "not a number") is None


def test_row_codes_is_the_inverse_coding():
    col = _column(random.Random(3), 64)
    vi = build_value_index(VPATH, col)
    codes = vi.row_codes()
    assert [str(vi.keys[c]) for c in codes] == col


def test_code_of_uses_the_hash_directory():
    col = _column(random.Random(5), 50)
    vi = build_value_index(VPATH, col)
    for code, key in enumerate(vi.keys):
        assert vi.code_of(str(key)) == code
        bucket = value_hash(str(key)) & (vi.n_buckets - 1)
        lo, hi = vi.bucket_offsets[bucket], vi.bucket_offsets[bucket + 1]
        assert code in vi.bucket_codes[lo:hi]
    assert vi.code_of("no such key") == -1


def test_select_keep_matches_scan_mask():
    rng = random.Random(11)
    col = _column(rng, 120)
    vi = build_value_index(VPATH, col)
    # random row ranges standing in for per-tuple extension ranges
    starts, lengths = [], []
    pos = 0
    while pos < len(col):
        ln = rng.randint(0, 4)
        starts.append(pos)
        lengths.append(min(ln, len(col) - pos))
        pos += max(ln, 1)
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    for op, const in [("=", "7"), ("=", "missing"), ("!=", "alpha"),
                      (">", "0"), ("<=", "-3.5"), (">=", "bogus")]:
        keep = select_keep(vi, op, const, starts, lengths)
        for k, (s, ln) in enumerate(zip(starts, lengths)):
            window = col[s:s + ln]
            if op == "=":
                want = any(v == const for v in window)
            elif op == "!=":
                want = any(v != const for v in window)
            else:
                rows = _naive_range(col, op, const) or []
                want = any(s <= r < s + ln for r in rows)
            assert bool(keep[k]) == want, (op, const, k)


def test_empty_and_single_value_columns():
    empty = build_value_index(VPATH, [])
    assert empty.n == 0 and empty.distinct == 0
    assert empty.eq_rows("x").tolist() == []
    assert empty.range_rows(">", "1").tolist() == []
    one = build_value_index(VPATH, ["only"] * 5)
    assert one.distinct == 1
    assert one.eq_rows("only").tolist() == [0, 1, 2, 3, 4]


def test_numeric_subindex_excludes_nan_and_text():
    vi = build_value_index(VPATH, ["nan", "abc", "2", "10", "-1"])
    numeric = {str(vi.keys[c]) for c in vi.num_codes}
    assert numeric == {"2", "10", "-1"}
    assert np.all(np.diff(vi.num_vals) >= 0)


def test_merge_codings_shares_codes_for_equal_strings():
    a = build_value_index(VPATH, ["x", "y", "z"])
    b = build_value_index(VPATH, ["y", "z", "w"])
    remaps, size = merge_codings([a, b])
    shared = {str(k): remaps[0][c] for c, k in enumerate(a.keys)}
    other = {str(k): remaps[1][c] for c, k in enumerate(b.keys)}
    assert shared["y"] == other["y"] and shared["z"] == other["z"]
    all_codes = set(shared.values()) | set(other.values())
    assert len(all_codes) == size == 4  # w x y z


# -- persistent segment ----------------------------------------------------


def _roundtrip(col):
    vi = build_value_index(VPATH, col)
    keys, data = encode_segment(vi)
    assert len(keys) == N_KEY_RECORDS and len(data) == N_DATA_RECORDS
    return vi, decode_segment(VPATH, vi.n, keys, data)


def test_segment_roundtrip_preserves_every_array():
    vi, back = _roundtrip(_column(random.Random(2), 90))
    assert list(back.keys) == list(vi.keys)
    for attr in ("offsets", "rows", "bucket_offsets", "bucket_codes",
                 "num_codes", "num_vals"):
        assert np.array_equal(getattr(back, attr), getattr(vi, attr)), attr
    assert back.n_buckets == vi.n_buckets
    assert check_segment(back) == []


def test_segment_roundtrip_empty_column():
    vi, back = _roundtrip([])
    assert back.n == 0 and back.distinct == 0
    assert check_segment(back) == []


# fixture column: 6 rows, keys {"42", "7", "a", "b", "c"} (u=5, two
# numeric), key itemsize 8 (<U2) — the byte counts below depend on it
@pytest.mark.parametrize("mutate, msg", [
    (lambda k, d: (k, d[:-1]), "data records"),
    (lambda k, d: (k[:1], d), "key stream"),
    (lambda k, d: (k, [b"\x00" * 8] + d[1:]), "malformed header"),
    (lambda k, d: (k, [struct.pack("<qqq", 99, 5, 8)] + d[1:]),
     "header says"),
    (lambda k, d: (k, [struct.pack("<qqq", 6, 5, 3)] + d[1:]),
     "power of two"),
    (lambda k, d: ([struct.pack("<q", 6), k[1]], d), "key buffer"),
    (lambda k, d: ([k[0], k[1][:-4]], d), "key buffer"),
    (lambda k, d: ([k[0], b"\x00\xd8\x00\x00" * 10], d),
     "invalid code points"),
    (lambda k, d: (k, d[:1] + [d[1][::-1]] + d[2:]), "CSR"),
    (lambda k, d: (k, d[:2] + [d[2][:8] * (len(d[2]) // 8)] + d[3:]),
     "permutation"),
    (lambda k, d: (k, d[:4] + [d[4][:8] * (len(d[4]) // 8)] + d[5:]),
     "bucket codes"),
    (lambda k, d: (k, d[:5] + [d[5] + b"\x00" * 8] + d[6:]),
     "disagree in length"),
    (lambda k, d: (k, d[:6] + [d[6][::-1]]), "ascending"),
])
def test_decoder_rejects_tampered_records(mutate, msg):
    vi = build_value_index(VPATH, ["b", "a", "c", "a", "7", "42"])
    keys, data = encode_segment(vi)
    keys, data = mutate(list(keys), list(data))
    with pytest.raises(CorruptDataError, match=msg):
        decode_segment(VPATH, vi.n, keys, data)


def test_decoder_rejects_unsorted_keys():
    vi = build_value_index(VPATH, ["a", "b", "c"])
    # swap two keys in the raw buffer: still valid text, wrong order
    swapped = ValueIndex(VPATH, vi.n, vi.keys[::-1].copy(), vi.offsets,
                         vi.rows, vi.n_buckets, vi.bucket_offsets,
                         vi.bucket_codes, vi.num_codes, vi.num_vals)
    keys, data = encode_segment(swapped)
    with pytest.raises(CorruptDataError, match="strictly increasing"):
        decode_segment(VPATH, vi.n, keys, data)


def test_check_segment_flags_stale_index():
    col = ["x", "y", "x", "z"]
    vi = build_value_index(VPATH, col)
    assert check_segment(vi, col) == []
    # a value the dictionary has never seen
    assert any("stale" in p for p in check_segment(vi, ["x", "y", "x", "q"]))
    # same dictionary, permuted rows: postings disagree with the vector
    assert any("stale" in p for p in check_segment(vi, ["y", "x", "x", "z"]))
    assert any("rows" in p or "holds" in p
               for p in check_segment(vi, ["x", "y", "x"]))
