import pytest

from repro.errors import ParseError
from repro.xmldata import Element, Text, parse, serialize
from repro.xmldata.escape import escape_attr, escape_text, unescape


def test_simple_roundtrip():
    xml = '<a x="1"><b>hi</b><c/>tail</a>'
    tree = parse(xml)
    assert tree.label == "a"
    assert tree.attrs == {"x": "1"}
    assert serialize(tree) == xml


def test_mixed_content_order_preserved():
    xml = "<a>x<b>y</b>z</a>"
    tree = parse(xml)
    kinds = [type(c).__name__ for c in tree.children]
    assert kinds == ["Text", "Element", "Text"]
    assert serialize(tree) == xml


def test_entities_and_numeric_refs():
    tree = parse("<a>&lt;&amp;&gt;&#65;&#x42;</a>")
    assert tree.children[0].value == "<&>AB"
    assert unescape("&quot;&apos;") == "\"'"


def test_escaping_roundtrips():
    value = 'a<b&c>"d\''
    assert unescape(escape_text(value)) == value
    assert unescape(escape_attr(value)) == value
    tree = Element("r", {"k": value}, [Text(value)])
    assert parse(serialize(tree)) == tree


def test_cdata_comments_pi_doctype():
    xml = (
        '<?xml version="1.0"?><!DOCTYPE r [<!ENTITY x "y">]>'
        "<r><!-- note --><![CDATA[<raw&stuff>]]><?pi data?></r>"
    )
    tree = parse(xml)
    assert tree.children[0].value == "<raw&stuff>"


def test_adjacent_text_merges_across_cdata():
    tree = parse("<a>one<![CDATA[two]]>three</a>")
    assert len(tree.children) == 1
    assert tree.children[0].value == "onetwothree"


def test_whitespace_text_preserved():
    xml = "<a> <b/> </a>"
    assert serialize(parse(xml)) == xml


@pytest.mark.parametrize(
    "bad",
    [
        "<a>",
        "<a></b>",
        "</a>",
        "<a><b></a></b>",
        "<a/><b/>",
        "text only",
        "<a attr></a>",
        "<a x=1/>",
        "<a>&nope;</a>",
        "<a><!-- unterminated</a>",
    ],
)
def test_malformed_inputs_raise(bad):
    with pytest.raises(ParseError):
        parse(bad)


def test_self_closing_and_attr_order():
    xml = '<a b="1" c="2"/>'
    tree = parse(xml)
    assert list(tree.attrs.items()) == [("b", "1"), ("c", "2")]
    assert serialize(tree) == xml
