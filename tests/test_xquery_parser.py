"""XQ front end: parser AST shapes, let-elimination, query-graph
compilation and the heuristic planner's operation ordering."""

import pytest

from repro.core.planner import plan_query
from repro.core.qgraph import ConstEdge, EqEdge, compile_query
from repro.core.vdoc import VectorizedDocument
from repro.core.xpath.ast import CHILD, DESCENDANT
from repro.core.xquery import (
    AbsSource,
    Const,
    RelSource,
    TElem,
    TSplice,
    TText,
    VarRel,
    normalize,
    parse_xq,
)
from repro.datasets.synth import xmark_like_xml
from repro.errors import XQCompileError, XQSyntaxError


def test_parse_minimal_flwr():
    xq = parse_xq("for $x in /a/b return {$x}")
    assert xq.root_tag == "result"
    assert len(xq.bindings) == 1
    b = xq.bindings[0]
    assert b.var == "x"
    assert isinstance(b.source, AbsSource)
    assert [s.test for s in b.source.path.steps] == ["a", "b"]
    assert xq.ret == (TSplice("x", ()),)


def test_parse_enclosing_constructor_and_template():
    xq = parse_xq(
        "<out>{ for $p in //person return "
        "<r><n>{$p/name}</n><t>hi</t></r> }</out>")
    assert xq.root_tag == "out"
    (item,) = xq.ret
    assert isinstance(item, TElem) and item.tag == "r"
    n, t = item.children
    assert n == TElem("n", (TSplice("p", ("name",)),))
    assert t == TElem("t", (TText("hi"),))


def test_parse_relative_bindings_axes():
    xq = parse_xq("for $x in //a, $y in $x//b/*, $z in $y/@id return {$z}")
    y = xq.bindings[1].source
    assert isinstance(y, RelSource) and y.var == "x"
    assert [(s.axis, s.test) for s in y.steps] == [(DESCENDANT, "b"),
                                                   (CHILD, "*")]
    z = xq.bindings[2].source
    assert [(s.axis, s.test) for s in z.steps] == [(CHILD, "@id")]


def test_parse_where_operands():
    xq = parse_xq(
        "for $x in /a, $y in /a/b where $x/c = 'v' and $x/@k != $y/d/text() "
        "and 3 < $y return {$x}")
    c1, c2, c3 = xq.where
    assert c1.left == VarRel("x", ("c",)) and c1.right == Const("v")
    assert c2.left == VarRel("x", ("@k",)) and c2.op == "!="
    assert c2.right == VarRel("y", ("d", "#"))
    assert c3.left == Const("3") and c3.right == VarRel("y", ())


@pytest.mark.parametrize("bad", [
    "for $x in return {$x}",
    "for $x in /a where return {$x}",
    "for $x in /a return",
    "for $x in /a where 'a' = 'b' return {$x}",
    "for $x in $y[c] return {$x}",          # no predicates in rel bindings
    "for $x in /a return <r>{$x}</s>",      # mismatched tags
    "for $x in /a, $y in $x return {$y}",   # rel source needs a step
    "for $x in /a return {$x/text()/b}",    # text() must be last
])
def test_parse_errors(bad):
    with pytest.raises(XQSyntaxError):
        parse_xq(bad)


def test_normalize_folds_let_chains():
    xq = parse_xq(
        "for $p in //person let $pr := $p/profile, $a := $pr/age "
        "where $a = '30' return <r>{$pr/interest}{$a}</r>")
    nx = normalize(xq)
    assert nx.lets == ()
    (comp,) = nx.where
    assert comp.left == VarRel("p", ("profile", "age"))
    (r,) = nx.ret
    assert r.children == (TSplice("p", ("profile", "interest")),
                          TSplice("p", ("profile", "age")))


def test_normalize_rejects_cycles_and_unknown():
    with pytest.raises(XQCompileError):
        normalize(parse_xq(
            "for $x in /a let $u := $v/b, $v := $u/c return {$u}"))
    with pytest.raises(XQCompileError):
        normalize(parse_xq("for $x in /a let $u := $nope/b return {$u}"))


def test_compile_query_graph_edges():
    gq, gr = compile_query(parse_xq(
        "for $x in /site//item, $p in //person "
        "where $x/payment = 'Cash' and '40' <= $p/profile/age "
        "and $x/location = $p/profile/interest "
        "return <r>{$x/name}{$p}</r>"))
    assert gq.variables == ["x", "p"]
    assert gq.tree_edges["x"].parent is None
    # operand paths are normalized to the text marker; flipped constant
    # comparisons mirror the operator
    assert gq.selections == [
        ConstEdge("x", ("payment", "#"), "=", "Cash"),
        ConstEdge("p", ("profile", "age", "#"), ">=", "40"),
    ]
    assert gq.joins == [EqEdge("x", ("location", "#"), "=",
                               "p", ("profile", "interest", "#"))]
    assert gr.root_tag == "result"
    assert [ (s.var, s.rel) for s in gr.slots ] == [("x", ("name",)),
                                                    ("p", ())]


def test_compile_rejects_forward_and_unknown_refs():
    with pytest.raises(XQCompileError):
        compile_query(parse_xq("for $y in $x/b, $x in /a return {$y}"))
    with pytest.raises(XQCompileError):
        compile_query(parse_xq("for $x in /a where $z = '1' return {$x}"))
    with pytest.raises(XQCompileError):
        compile_query(parse_xq("for $x in /a return {$nope}"))


def test_planner_selections_before_joins():
    vdoc = VectorizedDocument.from_xml(xmark_like_xml(30, seed=1))
    gq, _ = compile_query(parse_xq(
        "for $c in //closed_auction, $p in /site/people/person "
        "where $p/profile/age > '50' and $c/buyer = $p/@id "
        "return <r>{$p/name}</r>"))
    plan = plan_query(gq, vdoc)
    kinds = [op.kind for op in plan.ops]
    # both variables instantiated, the selection applied as soon as its
    # variable exists, the join strictly last
    assert sorted(kinds) == ["instantiate", "instantiate", "join", "select"]
    assert kinds[-1] == "join"
    sel_at = kinds.index("select")
    inst_p = [i for i, op in enumerate(plan.ops)
              if op.kind == "instantiate" and op.payload.var == "p"][0]
    assert sel_at == inst_p + 1
    # $p carries the only selection, so it is instantiated first
    assert plan.ops[0].payload.var == "p"
    assert "select" in plan.explain() and "join" in plan.explain()


def test_planner_prefers_selective_variable_first():
    vdoc = VectorizedDocument.from_xml(xmark_like_xml(30, seed=1))
    gq, _ = compile_query(parse_xq(
        "for $a in //person, $b in //item "
        "where $b/payment = 'Cash' return <r>{$a/name}</r>"))
    plan = plan_query(gq, vdoc)
    # $b carries the only pending selection: instantiate it first even
    # though $a may be comparable in size
    assert plan.ops[0].payload.var == "b"
    assert plan.ops[1].kind == "select"
