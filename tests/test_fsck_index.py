"""fsck over persistent index segments: structural corruption inside a
segment is an ``index`` finding, a vector edited behind its index is
flagged **stale** by ``--deep``, and random single-bit flips anywhere in
the index pages are always caught, never crash the checker, and never
let a probe return a wrong answer."""

import random
import shutil

import pytest

from repro.core.engine import eval_xq
from repro.core.vdoc import VectorizedDocument
from repro.datasets.synth import xmark_like_xml
from repro.errors import StorageError
from repro.storage.disk import FILE_HEADER
from repro.storage.fsck import verify_vdoc
from repro.storage.pages import SlottedPage, stamp_crc
from repro.storage.vdocfile import open_vdoc, save_vdoc

PAGE_SIZE = 256
NAME_PATH = ("site", "people", "person", "name", "#")
QUERY = ("for $p in /site/people/person where $p/name = 'name 3' "
         "return <r>{$p/emailaddress}</r>")


@pytest.fixture()
def indexed(tmp_path):
    """An indexed file plus the page layout of the name vector/index."""
    vdoc = VectorizedDocument.from_xml(xmark_like_xml(10, seed=13))
    path = str(tmp_path / "doc.vdoc")
    summary = save_vdoc(vdoc, path, page_size=PAGE_SIZE, index_paths="all")
    assert summary["indexes"] > 0
    with open_vdoc(path) as doc:
        handle = doc._vindexes[NAME_PATH]
        layout = {
            "keys": handle._keys_heap.pages(),
            "data": handle._data_heap.pages(),
            "column": doc.vectors[NAME_PATH]._heap.pages(),
        }
        golden = eval_xq(doc, QUERY).to_xml()
    return path, layout, golden


def _patch_page(path, pid, mutate):
    """Mutate one page *and restamp its CRC* — the corruption the
    checksums cannot see, only the structural/semantic checks can."""
    off = FILE_HEADER + pid * PAGE_SIZE
    with open(path, "r+b") as f:
        f.seek(off)
        buf = bytearray(f.read(PAGE_SIZE))
        mutate(buf)
        stamp_crc(buf)
        f.seek(off)
        f.write(buf)


def _smash_slot(buf, slot=0, fill=0xFF):
    page = SlottedPage(buf, PAGE_SIZE)
    off, length, _ = page.slot_entry(slot)
    buf[off:off + length] = bytes([fill]) * length


def test_clean_indexed_file_passes_shallow_and_deep(indexed):
    path, _, _ = indexed
    assert verify_vdoc(path) == []
    assert verify_vdoc(path, deep=True) == []


def test_corrupt_data_segment_is_an_index_finding(indexed):
    path, layout, _ = indexed
    # record 0 of the data chain is the <qqq> header: all-0xFF n/u/buckets
    _patch_page(path, layout["data"][0], _smash_slot)
    findings = verify_vdoc(path)
    assert any(f.code == "index" and "vindex" in f.message
               for f in findings)
    assert len(verify_vdoc(path, deep=True)) >= len(findings)


def test_corrupt_key_blob_is_an_index_finding(indexed):
    path, layout, _ = indexed
    _patch_page(path, layout["keys"][-1], lambda buf: _smash_slot(
        buf, slot=SlottedPage(buf, PAGE_SIZE).n_slots - 1))
    assert any(f.code == "index" for f in verify_vdoc(path))


def test_stale_index_flagged_by_deep_only(indexed):
    """Rewrite one value of the indexed column (same length, valid UTF-8,
    CRC restamped): structurally everything still checks out — only the
    deep cross-check of postings against the vector can catch it."""
    path, layout, _ = indexed
    _patch_page(path, layout["column"][0],
                lambda buf: _smash_slot(buf, fill=0x7E))  # '~' * length
    assert verify_vdoc(path) == []
    deep = verify_vdoc(path, deep=True)
    assert any(f.code == "index" and "stale" in f.message for f in deep)


def test_index_bitflip_fuzz(indexed, tmp_path):
    """Any single-bit flip inside the index pages: fsck reports it (the
    CRC layer at minimum) and a probing query either returns the golden
    answer or raises StorageError — never a silently wrong result."""
    path, layout, golden = indexed
    index_pages = layout["keys"] + layout["data"]
    rng = random.Random(99)
    for trial in range(40):
        work = str(tmp_path / f"fuzz{trial}.vdoc")
        shutil.copyfile(path, work)
        pid = rng.choice(index_pages)
        off = FILE_HEADER + pid * PAGE_SIZE + rng.randrange(PAGE_SIZE)
        with open(work, "r+b") as f:
            f.seek(off)
            byte = f.read(1)[0]
            f.seek(off)
            f.write(bytes([byte ^ (1 << rng.randrange(8))]))
        findings = verify_vdoc(work)
        assert findings, f"trial {trial}: flip at page {pid} undetected"
        try:
            with open_vdoc(work, pool_pages=16) as doc:
                result = eval_xq(doc, QUERY).to_xml()
        except StorageError:
            continue
        assert result == golden, f"trial {trial}: wrong answer, no error"
