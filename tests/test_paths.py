import numpy as np
import pytest

from repro.core.paths import ranges_to_ordinals
from repro.core.vdoc import VectorizedDocument


@pytest.fixture()
def vdoc():
    return VectorizedDocument.from_xml(
        "<r>"
        + "".join(
            f"<p><q>v{3 * i}</q><q>v{3 * i + 1}</q><q>v{3 * i + 2}</q></p>"
            for i in range(4)
        )
        + "<p><z/></p>"
        "</r>"
    )


def test_ranges_to_ordinals():
    starts = np.array([0, 10, 20], dtype=np.int64)
    lengths = np.array([3, 0, 2], dtype=np.int64)
    assert ranges_to_ordinals(starts, lengths).tolist() == [0, 1, 2, 20, 21]
    empty = ranges_to_ordinals(np.empty(0, np.int64), np.empty(0, np.int64))
    assert len(empty) == 0


def test_index_totals_and_runs(vdoc):
    cat = vdoc.catalog
    assert cat.index(("r",)).total == 1
    assert cat.index(("r", "p")).total == 5
    assert cat.index(("r", "p", "q")).total == 12
    assert cat.index(("r", "p", "q", "#")).total == 12
    assert cat.index(("r", "nope")) is None
    assert cat.index(("x",)) is None
    # 4 regular <p> share one skeleton node; the irregular 5th is its own run
    assert len(cat.index(("r", "p")).runs) == 2


def test_extension_ranges_match_child_indexes(vdoc):
    cat = vdoc.catalog
    # consistency: extension ordinal space == the child path's own index
    assert cat.extension_total(("r", "p"), ("q",)) == cat.index(("r", "p", "q")).total
    ids = np.arange(5, dtype=np.int64)
    starts, lengths = cat.extension_ranges(("r", "p"), ids, ("q",))
    assert lengths.tolist() == [3, 3, 3, 3, 0]
    assert starts[:4].tolist() == [0, 3, 6, 9]
    # ids=None (all occurrences) gives the same ranges
    s2, l2 = cat.extension_ranges(("r", "p"), None, ("q",))
    assert s2.tolist() == starts.tolist() and l2.tolist() == lengths.tolist()


def test_extension_ranges_multi_level(vdoc):
    cat = vdoc.catalog
    starts, lengths = cat.extension_ranges(
        ("r",), np.array([0], dtype=np.int64), ("p", "q", "#"))
    assert starts.tolist() == [0] and lengths.tolist() == [12]


def test_range_values_align_with_vectors(vdoc):
    cat = vdoc.catalog
    vec = vdoc.vectors[("r", "p", "q", "#")]
    ids = np.array([1, 3], dtype=np.int64)
    starts, lengths = cat.extension_ranges(("r", "p"), ids, ("q", "#"))
    got = [vec.slice(int(s), int(s + n)) for s, n in zip(starts, lengths)]
    assert got == [["v3", "v4", "v5"], ["v9", "v10", "v11"]]


def test_expand_with_ancestor_column(vdoc):
    cat = vdoc.catalog
    ev = cat.expand(("r", "p"), np.array([0, 4], dtype=np.int64), ("q",),
                    with_anc=True)
    assert ev.path == ("r", "p", "q")
    assert ev.ord.tolist() == [0, 1, 2]
    assert ev.anc.tolist() == [0, 0, 0]
    assert ev.total() == 3


def test_dataguide(vdoc):
    guide = vdoc.catalog.dataguide()
    assert ("r",) in guide
    assert ("r", "p", "q", "#") in guide
    assert ("r", "p", "z") in guide
    assert guide == sorted(guide)


def test_irregular_interleaving_preserves_document_order():
    # <p> children alternate b,c — runs cannot collapse, order must hold.
    vdoc = VectorizedDocument.from_xml(
        "<r>" + "".join(f"<p><b>b{i}</b><c>c{i}</c></p>" for i in range(3)) + "</r>"
    )
    cat = vdoc.catalog
    assert cat.index(("r", "p", "b")).total == 3
    ids = np.arange(3, dtype=np.int64)
    starts, lengths = cat.extension_ranges(("r", "p"), ids, ("b", "#"))
    vec = vdoc.vectors[("r", "p", "b", "#")]
    got = [vec.slice(int(s), int(s + n)) for s, n in zip(starts, lengths)]
    assert got == [["b0"], ["b1"], ["b2"]]
