"""Compressed (format v4) vector storage, end to end: byte-identical
query results across memory / v3 / v4 under tiny buffer pools, the
zero-decode machine assertion for code-space predicate evaluation, the
planner's ``dict`` access path and its ``--no-codec-eval`` escape hatch,
compression accounting in IOStats and the catalog, the repository
manifest summary, and a targeted corruption sweep over a codec-rich
file (exact answer or located StorageError, never wrong bytes)."""

import random
import shutil

import pytest

from repro.core.context import EvalContext
from repro.core.engine import eval_query, eval_xq
from repro.core.vdoc import VectorizedDocument
from repro.errors import StorageError
from repro.repo import Repository
from repro.repo.repository import RepositoryError, _check_manifest
from repro.storage.fsck import verify_vdoc

CAT = ("r", "items", "it", "cat", "#")
ID = ("r", "items", "it", "id", "#")
NOTE = ("r", "items", "it", "note", "#")

XPATHS = [
    "/r/items/it[cat = 'c2']/id",
    "//it[id > 1150]/cat",
    "/r/items/it/note/text()",
    "//p[pid <= 1300]",
]

XQ_SELECT = ("for $i in /r/items/it where $i/cat = 'c2' "
             "return <o>{$i/id}</o>")
XQ_JOIN = ("for $i in /r/items/it, $p in /r/people/p "
           "where $i/id = $p/pid return <pair>{$i/cat}{$p/pid}</pair>")


def _xml(n=300):
    items = "".join(
        f"<it><id>{1000 + i}</id><cat>c{i % 5}</cat>"
        f"<note>shared prose, distinct tail number {i} of many</note></it>"
        for i in range(n))
    people = "".join(f"<p><pid>{1000 + i * 3}</pid></p>"
                     for i in range(n // 3))
    return f"<r><items>{items}</items><people>{people}</people></r>"


@pytest.fixture(scope="module")
def mem():
    return VectorizedDocument.from_xml(_xml())


@pytest.fixture(scope="module")
def saved(tmp_path_factory, mem):
    d = tmp_path_factory.mktemp("codec")
    v4, v3 = str(d / "doc4.vdoc"), str(d / "doc3.vdoc")
    s4 = mem.save(v4, page_size=256)
    s3 = mem.save(v3, page_size=256, fmt=3)
    return v4, v3, s4, s3


def test_save_summary_and_codec_mix(saved):
    v4, _, s4, s3 = saved
    assert s4["format"] == 4 and s3["format"] == 3
    assert s4["compression_ratio"] < 0.8        # the doc is compressible
    assert 0 < s4["physical_bytes"] < s4["logical_bytes"]
    assert s4["codecs"].get("dict") and s4["codecs"].get("delta") \
        and s4["codecs"].get("zlib")
    for key in ("logical_bytes", "physical_bytes", "compression_ratio",
                "codecs"):
        assert key not in s3                    # v3 catalogs no byte counts
    with VectorizedDocument.open(v4) as disk:
        assert disk.codec_of(CAT) == "dict"
        assert disk.codec_of(ID) == "delta"
        assert disk.codec_of(NOTE) == "zlib"


def test_compression_stats_are_catalog_only(saved):
    v4, v3, s4, _ = saved
    with VectorizedDocument.open(v4) as disk:
        comp = disk.compression_stats()
        # pure catalog math: no vector page was materialized for it
        assert not any(v.is_loaded() for v in disk.vectors.values())
        assert comp["logical_bytes"] == s4["logical_bytes"]
        assert comp["physical_bytes"] == s4["physical_bytes"]
        by_path = {v["path"]: v for v in comp["vectors"]}
        assert by_path["/".join(CAT)]["codec"] == "dict"
    with VectorizedDocument.open(v3) as disk:
        comp = disk.compression_stats()
        assert comp["compression_ratio"] is None
        assert comp["logical_bytes"] is None


@pytest.mark.parametrize("query", XPATHS)
def test_xpath_identical_memory_v3_v4_small_pool(saved, mem, query):
    v4, v3, _, _ = saved
    base = eval_query(mem, query)
    for path in (v3, v4):
        with VectorizedDocument.open(path, pool_pages=8) as disk:
            ctx = EvalContext.for_doc(disk)
            res = eval_query(disk, query, ctx=ctx)
            assert res.count() == base.count()
            assert res.text_values() == base.text_values()
            assert res.canonical() == base.canonical()
            assert disk.pool.pinned_total() == 0
            for v in disk.vectors.values():
                assert ctx.pages_in_window(v) <= v.n_pages


@pytest.mark.parametrize("xq", [XQ_SELECT, XQ_JOIN])
def test_xq_identical_memory_v3_v4_small_pool(saved, mem, xq):
    v4, v3, _, _ = saved
    base = eval_xq(mem, xq).to_xml()
    for path in (v3, v4):
        with VectorizedDocument.open(path, pool_pages=8) as disk:
            assert eval_xq(disk, xq).to_xml() == base
            assert disk.pool.pinned_total() == 0


def test_v4_reconstructs_byte_identically(saved, mem):
    v4, _, _, _ = saved
    with VectorizedDocument.open(v4, pool_pages=8) as disk:
        assert disk.to_xml() == mem.to_xml()


def test_dict_selection_runs_without_decoding(saved):
    """THE acceptance assertion: an equality selection over a dict-coded
    vector is planned with access='dict' and evaluated entirely in code
    space — the machine-checked decode count of that vector is zero."""
    v4, _, _, _ = saved
    with VectorizedDocument.open(v4, pool_pages=8) as disk:
        ctx = EvalContext.for_doc(disk)
        res = eval_xq(disk, XQ_SELECT, ctx=ctx)
        assert "[dict ]" in res.plan.explain()
        dec = ctx.decode_counts(disk)
        assert dec[CAT] == 0, "dict-eq selection decoded the predicate vector"
        assert res.n_tuples == 60


def test_no_codec_eval_hatch_is_byte_identical(saved):
    v4, _, _, _ = saved
    with VectorizedDocument.open(v4, pool_pages=8) as disk:
        on = eval_xq(disk, XQ_SELECT)
    with VectorizedDocument.open(v4, pool_pages=8) as disk:
        ctx = EvalContext.for_doc(disk)
        off = eval_xq(disk, XQ_SELECT, use_codecs=False, ctx=ctx)
        assert "[dict ]" not in off.plan.explain()
        dec = ctx.decode_counts(disk)
        assert dec[CAT] > 0      # the hatch really decodes the strings
    assert off.to_xml() == on.to_xml()


def test_xpath_dict_predicate_runs_without_decoding(saved):
    v4, _, _, _ = saved
    with VectorizedDocument.open(v4, pool_pages=8) as disk:
        ctx = EvalContext.for_doc(disk)
        res = eval_query(disk, "/r/items/it[cat = 'c2']", ctx=ctx)
        assert res.count() == 60
        assert ctx.decode_counts(disk)[CAT] == 0


def test_numeric_predicates_skip_decoding_on_coded_vectors(saved):
    """Ordering predicates over delta-coded vectors come from the int64
    state; the string column is never built."""
    v4, _, _, _ = saved
    with VectorizedDocument.open(v4, pool_pages=8) as disk:
        ctx = EvalContext.for_doc(disk)
        eval_query(disk, "//it[id > 1150]", ctx=ctx)
        assert ctx.decode_counts(disk)[ID] == 0


def test_iostats_compression_accounting(saved):
    v4, _, s4, _ = saved
    with VectorizedDocument.open(v4) as disk:
        for vec in disk.vectors.values():
            vec.scan()
        st = disk.pool.stats
        assert st.logical_bytes == s4["logical_bytes"]
        assert st.physical_bytes == s4["physical_bytes"]
        assert st.compression_ratio() == pytest.approx(
            s4["compression_ratio"], abs=1e-4)
        # every value was handed out as a string at least once
        total = sum(len(v) for v in disk.vectors.values())
        assert st.decoded_values == total
        d = st.as_dict()
        for key in ("logical_bytes", "physical_bytes", "decoded_values",
                    "compression_ratio"):
            assert key in d


def test_v4_cold_pages_track_compression_ratio(saved):
    """The perf claim, asserted structurally: reading every vector cold
    from v4 costs fewer pages than from v3, roughly in proportion to the
    byte-level compression ratio."""
    v4, v3, s4, _ = saved

    def cold_vector_pages(path):
        with VectorizedDocument.open(path, pool_pages=8) as disk:
            for vec in disk.vectors.values():
                vec.scan()
            return sum(v.pages_read for v in disk.vectors.values())

    p4, p3 = cold_vector_pages(v4), cold_vector_pages(v3)
    assert p4 < p3
    # paging granularity is coarse (256B pages, per-chain rounding), so
    # allow generous slack around the exact byte ratio
    assert p4 / p3 < s4["compression_ratio"] + 0.25


def test_fsck_deep_verifies_codec_chains(saved):
    v4, _, _, _ = saved
    assert verify_vdoc(v4, deep=True) == []


def test_fsck_deep_catches_pbytes_lie(saved, tmp_path):
    """A catalog whose pbytes disagrees with the chain is a deep finding
    (shallow checks can't see it: pages and records are all valid)."""
    v4, _, _, _ = saved
    work = str(tmp_path / "lied.vdoc")
    shutil.copyfile(v4, work)
    with VectorizedDocument.open(work) as disk:
        vec = disk.vectors[CAT]
        vec._pbytes += 1
        with pytest.raises(StorageError, match="encoded bytes"):
            vec.scan()


# -- repository manifest summary --------------------------------------------

def test_repo_manifest_records_compression(tmp_path, saved):
    v4, v3, s4, _ = saved
    repo_dir = str(tmp_path / "repo")
    with Repository.init(repo_dir, "col") as repo:
        repo.add(v4, name="m4")
        repo.add(v3, name="m3")
    with Repository.open(repo_dir) as repo:
        e4 = repo._entry("m4")
        comp = e4["compression"]
        assert comp["logical_bytes"] == s4["logical_bytes"]
        assert comp["physical_bytes"] == s4["physical_bytes"]
        assert comp["codecs"] == s4["codecs"]
        assert "compression" not in repo._entry("m3")   # pre-v4 member
        # queries agree across members and across the codec hatch
        on = repo.xq(XQ_SELECT).to_xml()
        off = repo.xq(XQ_SELECT, use_codecs=False).to_xml()
        assert on == off


def test_manifest_rejects_bad_compression_entry():
    base = {"format": 1, "name": "c", "members": [
        {"name": "m", "file": "m.vdoc", "paths": [],
         "compression": {"logical_bytes": -1, "physical_bytes": 0,
                         "codecs": {}}}]}
    with pytest.raises(RepositoryError, match="compression"):
        _check_manifest(base)
    base["members"][0]["compression"] = {
        "logical_bytes": 1, "physical_bytes": 1, "codecs": {"dict": "x"}}
    with pytest.raises(RepositoryError, match="compression"):
        _check_manifest(base)
    base["members"][0]["compression"] = {
        "logical_bytes": 1, "physical_bytes": 1, "codecs": {"dict": 2}}
    assert _check_manifest(base)


# -- corruption: exact answer or located StorageError ------------------------

N_SEEDS = 60


def test_bitflip_sweep_over_codec_rich_file(saved, tmp_path):
    """Single-bit corruption anywhere in a v4 file whose chains are
    dict/delta/zlib-coded: every query returns the exact clean answer or
    raises StorageError, and fsck flags the damage."""
    v4, _, _, _ = saved
    with VectorizedDocument.open(v4, pool_pages=8) as disk:
        base_x = eval_query(disk, XPATHS[0]).canonical()
    with VectorizedDocument.open(v4, pool_pages=8) as disk:
        base_q = eval_xq(disk, XQ_SELECT).to_xml()
    work = str(tmp_path / "flipped.vdoc")
    raised = correct = 0
    for seed in range(N_SEEDS):
        rng = random.Random(seed)
        shutil.copyfile(v4, work)
        with open(work, "r+b") as f:
            f.seek(0, 2)
            off = rng.randrange(f.tell())
            f.seek(off)
            byte = f.read(1)[0]
            f.seek(off)
            f.write(bytes([byte ^ (1 << rng.randrange(8))]))
        for run in (lambda d: eval_query(d, XPATHS[0]).canonical() == base_x,
                    lambda d: eval_xq(d, XQ_SELECT).to_xml() == base_q):
            try:
                with VectorizedDocument.open(work, pool_pages=8) as disk:
                    assert run(disk), "corrupted v4 returned WRONG bytes"
                correct += 1
            except StorageError:
                raised += 1
        assert verify_vdoc(work), f"seed {seed}: flip at {off} not found"
    assert raised and correct      # both outcomes must occur
