"""XQ cross-evaluator property tests (satellite): graph reduction over
extended vectors must produce results *byte-identical* (after
serialization) to the naive decompress-and-evaluate reference — over a
fixed corpus and over random documents with generated queries covering
wildcard and descendant bindings, constant selections and two-variable
joins.  Every ``vx`` run also exercises the machine-checked invariants
(no skeleton decompression, each vector scanned at most once), since
``eval_xq`` enforces both."""

import random

import pytest

from repro.core import reconstruct as reconstruct_mod
from repro.core.context import EvalContext
from repro.core.engine import eval_xq
from repro.core.vdoc import VectorizedDocument
from repro.datasets.synth import xmark_like_xml

from test_roundtrip_property import random_tree
from test_xpath_cross import DOCS

XQ_QUERIES = [
    # projections and nested constructors
    "for $b in /bib/book return <r>{$b/title}</r>",
    "for $b in //book, $a in $b/author return <r><who>{$a/text()}</who></r>",
    "<out>{ for $t in //title return {$t} }</out>",
    # constant selections (string and numeric, both orientations)
    "for $b in /bib/book where $b/publisher = 'SBP' return <r>{$b/title}</r>",
    "for $x in /r/x where $x/y > '4' return {$x}",
    "for $x in //x where '6' <= $x/y return <n>{$x/y/text()}</n>",
    "for $p in //person where $p/profile/age >= '60' return <r>{$p/name}</r>",
    # wildcard and descendant bindings
    "for $r in /site/regions/*, $i in $r/item where $i/quantity < '3' "
    "return <hit>{$i/name/text()}</hit>",
    "for $x in /r, $y in $x//y return <v>{$y/text()}</v>",
    "for $e in //*, $y in $e/y return <p>{$y}</p>",
    # text- and attribute-bound variables
    "for $t in //interest/text() where $t = 'databases' return <x>{$t}</x>",
    "for $i in //item, $a in $i/@id return <id>{$a}</id>",
    # two-variable joins (equality, inequality, ordering)
    "for $c in //closed_auction, $p in /site/people/person "
    "where $c/buyer = $p/@id return <pair>{$c/price}{$p/name}</pair>",
    "for $i in /site/regions/africa/item, $j in /site/regions/asia/item "
    "where $i/location != $j/location return <d>{$i/name/text()}</d>",
    "for $i in //item, $c in //closed_auction "
    "where $i/quantity < $c/price return <q>{$i/@id}</q>",
    # let aliases and multiple comparisons
    "for $p in //person let $pr := $p/profile "
    "where $pr/age < '25' and $pr/interest = 'databases' "
    "return <y>{$p/@id}{$pr/interest}</y>",
    # whole-subtree and attribute splices, multiple template items
    "for $b in /bib/book where $b/author = 'B' return {$b}",
    "for $p in //person where $p/profile/education = 'Graduate School' "
    "return <r>{$p/@id}</r><sep/>",
]


def _assert_same(vdoc, query):
    vx = eval_xq(vdoc, query, mode="vx")
    naive = eval_xq(vdoc, query, mode="naive")
    assert vx.to_xml() == naive.to_xml(), query
    return vx


@pytest.mark.parametrize("query", XQ_QUERIES)
@pytest.mark.parametrize("doc", sorted(DOCS))
def test_xq_cross_corpus(doc, query):
    _assert_same(VectorizedDocument.from_xml(DOCS[doc]), query)


def _random_query(rng: random.Random) -> str:
    """A random XQ query over the label/text alphabet of ``random_tree``."""
    absolutes = ["//a", "//b", "//item", "//*", "/a/b", "/a//c", "//data"]
    rels = ["/b", "//c", "/*", "/@id", "/b/text()", "//item", "/data/b"]
    crels = ["", "/b", "/c", "/@k", "/@id", "/b/c"]
    consts = ["x", "42", "hello world", "-3.5"]
    ops = ["=", "!=", "<", "<=", ">", ">="]

    variables = ["x"]
    parts = [f"$x in {rng.choice(absolutes)}"]
    if rng.random() < 0.7:
        variables.append("y")
        parts.append(f"$y in $x{rng.choice(rels)}")
    wheres = []
    for _ in range(rng.randrange(0, 3)):
        v = rng.choice(variables)
        if len(variables) > 1 and rng.random() < 0.4:
            w = rng.choice(variables)
            wheres.append(f"${v}{rng.choice(crels)} {rng.choice(ops)} "
                          f"${w}{rng.choice(crels)}")
        else:
            wheres.append(f"${v}{rng.choice(crels)} {rng.choice(ops)} "
                          f"'{rng.choice(consts)}'")
    splices = "".join(f"{{${rng.choice(variables)}{rng.choice(crels)}}}"
                      for _ in range(rng.randrange(1, 3)))
    q = "for " + ", ".join(parts)
    if wheres:
        q += " where " + " and ".join(wheres)
    return q + f" return <row>{splices}</row>"


@pytest.mark.parametrize("seed", range(25))
def test_xq_cross_random_docs(seed):
    rng = random.Random(seed + 900)
    vdoc = VectorizedDocument.from_tree(random_tree(rng))
    saw_join = False
    for _ in range(8):
        query = _random_query(rng)
        saw_join = saw_join or ("$x" in query.split("where")[-1]
                                and "$y" in query.split("where")[-1]
                                and "where" in query)
        _assert_same(vdoc, query)
    # fixed two-variable join on every random doc, so each seed exercises
    # a join even if the generator rolled none
    _assert_same(vdoc, "for $u in //*, $v in //* where $u/@id = $v/@k "
                       "return <j>{$u/@id}</j>")


def test_xq_result_shares_store_and_compresses_stepwise():
    vdoc = VectorizedDocument.from_xml(xmark_like_xml(60, seed=5))
    before = len(vdoc.store)
    res = eval_xq(vdoc, "for $p in /site/people/person "
                        "return <r><tag/>{$p/profile/education}</r>")
    out = res.vdoc
    # the result document shares the input's node store (subtree splices
    # are id reuse, not copies) ...
    assert out.store is vdoc.store
    assert res.n_tuples == 60
    # ... and hash-consing during construction collapses the 60 structurally
    # similar rows to a handful of fresh skeleton nodes
    fresh = len(vdoc.store) - before
    assert fresh < 12, fresh
    stats = out.stats()
    assert stats["document_nodes"] >= 60
    assert stats["skeleton_nodes"] < 20


def test_xq_vx_forbids_decompression_and_counts_scans():
    vdoc = VectorizedDocument.from_xml(xmark_like_xml(25, seed=2))
    base = reconstruct_mod.DECOMPRESSION_COUNT
    ctx = EvalContext.for_doc(vdoc)
    res = eval_xq(vdoc, "for $c in //closed_auction, $p in //person "
                        "where $c/buyer = $p/@id and $p/profile/age > '30' "
                        "return <r>{$p/name}{$c/price}</r>", ctx=ctx)
    # reduction + construction decompress nothing ...
    assert reconstruct_mod.DECOMPRESSION_COUNT == base
    # ... and no input vector was scanned more than once for the whole query
    counts = ctx.scan_counts(vdoc)
    assert all(c <= 1 for c in counts.values())
    assert any(c == 1 for c in counts.values())
    # serializing the *result* decompresses only the result document
    res.to_xml()
    assert reconstruct_mod.DECOMPRESSION_COUNT == base + 1


def test_xq_empty_result_is_bare_root():
    vdoc = VectorizedDocument.from_xml(DOCS["fig1"])
    res = eval_xq(vdoc, "<none>{ for $b in //book "
                        "where $b/title = 'no such' return {$b} }</none>")
    assert res.n_tuples == 0
    assert res.to_xml() == "<none/>"
    assert res.to_xml() == eval_xq(
        vdoc, "<none>{ for $b in //book where $b/title = 'no such' "
              "return {$b} }</none>", mode="naive").to_xml()
