"""The benchmark regression gate: passes on stable speedups, fails on a
geomean regression beyond tolerance, and treats disjoint record sets as
an error rather than a silent pass."""

import json
import pathlib
import sys

BENCHMARKS = str(pathlib.Path(__file__).resolve().parent.parent
                 / "benchmarks")
if BENCHMARKS not in sys.path:
    sys.path.insert(0, BENCHMARKS)

import gate  # noqa: E402


def _payload(sel_speedup, join_speedup, batched_speedup=3.0):
    return {
        "records": [
            {"query": "XQ1", "n_people": 100, "speedup": sel_speedup},
            {"query": "XQ3", "n_people": 100, "speedup": join_speedup},
        ],
        "batched_regime": {"records": [
            {"n_people": 200, "n_regions": 16, "speedup": batched_speedup},
        ]},
        "indexed_regime": {"records": [
            {"query": "IXQ1", "n_people": 2000, "speedup": sel_speedup},
        ]},
    }


def _write(tmp_path, name, payload):
    p = tmp_path / name
    p.write_text(json.dumps(payload), encoding="utf-8")
    return str(p)


def _run(tmp_path, fresh, baseline, extra=()):
    return gate.main([_write(tmp_path, "fresh.json", fresh),
                      _write(tmp_path, "base.json", baseline), *extra])


def test_identical_payloads_pass(tmp_path, capsys):
    p = _payload(10.0, 5.0)
    assert _run(tmp_path, p, p) == 0
    out = capsys.readouterr().out
    assert "gate: ok" in out and "ratio  1.00" in out


def test_mild_jitter_within_tolerance_passes(tmp_path):
    assert _run(tmp_path, _payload(9.0, 4.6), _payload(10.0, 5.0)) == 0


def test_regression_beyond_tolerance_fails(tmp_path, capsys):
    assert _run(tmp_path, _payload(5.0, 2.5), _payload(10.0, 5.0)) == 1
    assert "regressed" in capsys.readouterr().err


def test_one_sided_collapse_fails_on_geomean(tmp_path):
    # one record collapsing 4x drags the geomean under the floor even
    # though the others are flat
    assert _run(tmp_path, _payload(10.0, 1.0, 3.0),
                _payload(10.0, 5.0, 3.0)) == 1


def test_tolerance_flag_loosens_the_floor(tmp_path):
    fresh, base = _payload(5.0, 2.5), _payload(10.0, 5.0)
    assert _run(tmp_path, fresh, base) == 1
    assert _run(tmp_path, fresh, base, extra=["--tolerance", "0.6"]) == 0


def test_disjoint_records_fail_loudly(tmp_path, capsys):
    fresh = _payload(10.0, 5.0)
    base = json.loads(json.dumps(fresh))
    for rec in base["records"]:
        rec["n_people"] = 999  # renamed sweep: no common keys
    base["batched_regime"]["records"] = []
    base["indexed_regime"]["records"] = []
    assert _run(tmp_path, fresh, base) == 1
    assert "no common records" in capsys.readouterr().err


def test_non_finite_speedups_are_skipped_not_compared(tmp_path):
    fresh, base = _payload(10.0, 5.0), _payload(10.0, 5.0)
    fresh["records"][1]["speedup"] = float("inf")
    base["records"][1]["speedup"] = 0.0
    assert _run(tmp_path, fresh, base) == 0  # remaining records carry it


def test_unreadable_payload_is_exit_2(tmp_path):
    missing = str(tmp_path / "nope.json")
    assert gate.main([missing, missing]) == 2


def _serve_payload(speedup_4, speedup_16):
    return {"serve_regime": {"records": [
        {"n_clients": 4, "speedup": speedup_4},
        {"n_clients": 16, "speedup": speedup_16},
    ]}}


def test_serve_regime_gates_qps_scaling(tmp_path, capsys):
    base = _serve_payload(3.9, 15.2)
    assert _run(tmp_path, _serve_payload(3.8, 14.8), base) == 0
    assert "serve" in capsys.readouterr().out
    # 16-client scaling collapsing to ~2x is a >20% geomean regression
    assert _run(tmp_path, _serve_payload(3.8, 2.0), base) == 1


def test_committed_serve_baseline_self_gates():
    committed = pathlib.Path(BENCHMARKS).parent / "BENCH_serve.json"
    payload = json.loads(committed.read_text("utf-8"))
    lines, ratios = gate.compare(payload, payload)
    assert ratios and all(r == 1.0 for r in ratios)
    assert any(line.lstrip().startswith("serve") for line in lines)
    # the committed baseline itself documents the acceptance floor
    records = payload["serve_regime"]["records"]
    by_n = {r["n_clients"]: r["speedup"] for r in records}
    assert by_n[16] >= payload["serve_regime"]["threshold"]


def test_committed_baseline_self_gates():
    """The committed BENCH_xq.json must pass against itself — guards the
    payload shape the CI step depends on."""
    committed = pathlib.Path(BENCHMARKS).parent / "BENCH_xq.json"
    payload = json.loads(committed.read_text("utf-8"))
    lines, ratios = gate.compare(payload, payload)
    assert ratios and all(r == 1.0 for r in ratios)
    # every regime must contribute at least one record
    assert any(line.lstrip().startswith("indexed") for line in lines)
    assert any(line.lstrip().startswith("reduction") for line in lines)
    assert any(line.lstrip().startswith("batched") for line in lines)


def _disk_payload(page_ratio=0.3, dict_decodes=0, cpu=0.1, timed=True):
    return {
        "compression_regime": {
            "page_slack": 0.25,
            "max_cpu_overhead": 0.50,
            "records": [{
                "n_people": 50,
                "byte_ratio": 0.2,
                "pages_cold_v3": 100,
                "pages_cold_v4": int(100 * page_ratio),
                "page_ratio": page_ratio,
                "dict_decodes": dict_decodes,
                "cpu_overhead": cpu,
                "cpu_timed": timed,
                "highcard_pages_v3": 40,
                "highcard_pages_v4": 40,
            }],
        },
        "profile_failures": [],
    }


def test_disk_check_passes_on_clean_payload(tmp_path, capsys):
    p = _write(tmp_path, "disk.json", _disk_payload())
    assert gate.main([p, "--disk-check"]) == 0
    assert "disk ok" in capsys.readouterr().out


def test_disk_check_fails_on_violated_properties(tmp_path, capsys):
    cases = [
        _disk_payload(page_ratio=1.0),           # no page reduction
        _disk_payload(page_ratio=0.6),           # not tracking byte ratio
        _disk_payload(dict_decodes=500),         # decoded the dict vector
        _disk_payload(cpu=0.9),                  # CPU over the ceiling
        {"compression_regime": {"records": []}},
        {},                                      # not a bench_disk payload
    ]
    recorded = _disk_payload()
    recorded["profile_failures"] = ["n=50: something broke"]
    cases.append(recorded)
    for i, payload in enumerate(cases):
        p = _write(tmp_path, f"disk{i}.json", payload)
        assert gate.main([p, "--disk-check"]) == 1, f"case {i} passed"
        assert "disk FAIL" in capsys.readouterr().err


def test_disk_check_skips_cpu_ceiling_below_timing_floor(tmp_path):
    p = _write(tmp_path, "disk.json",
               _disk_payload(cpu=2.0, timed=False))
    assert gate.main([p, "--disk-check"]) == 0


def test_committed_disk_baseline_self_checks():
    """The committed BENCH_disk.json must hold its own compression
    properties — guards the payload shape the CI disk gate depends on."""
    committed = pathlib.Path(BENCHMARKS).parent / "BENCH_disk.json"
    payload = json.loads(committed.read_text("utf-8"))
    assert gate.disk_check(payload) == []
