"""Property tests on random documents (deterministic seeds, no extra deps):

* vectorize -> reconstruct is the identity on documents (Props 2.1/2.2);
* hash-consing invariant: identical subtrees share one NodeStore id, and
  the skeleton (DAG) is never larger than the document tree.
"""

import random

import pytest

from repro.core.vdoc import VectorizedDocument
from repro.xmldata import Element, Text, parse, serialize

_LABELS = ["a", "b", "c", "data", "item"]
_TEXTS = ["", "x", "hello world", "42", "-3.5", "<&>\"'", "  spaced  ", "ünïcödé"]
_ATTRS = ["id", "k", "lang"]


def random_tree(rng: random.Random, depth: int = 0) -> Element:
    elem = Element(rng.choice(_LABELS))
    for name in _ATTRS:
        if rng.random() < 0.2:
            elem.attrs[name] = rng.choice(_TEXTS)
    n_children = rng.randrange(0, max(1, 5 - depth))
    for _ in range(n_children):
        # Repeat a child sometimes so runs and shared subtrees actually occur.
        if elem.children and rng.random() < 0.3:
            src = rng.choice(elem.children)
            clone = parse(serialize(src)) if isinstance(src, Element) else Text(src.value)
            elem.append(clone)
        elif rng.random() < 0.35:
            value = rng.choice(_TEXTS)
            # Adjacent raw text merges on parse; only append where it stays a
            # distinct node (serializer writes exactly what the model holds).
            if value and not (elem.children and isinstance(elem.children[-1], Text)):
                elem.append(Text(value))
        elif depth < 5:
            elem.append(random_tree(rng, depth + 1))
    return elem


@pytest.mark.parametrize("seed", range(30))
def test_vectorize_reconstruct_roundtrip(seed):
    tree = random_tree(random.Random(seed))
    vdoc = VectorizedDocument.from_tree(tree)
    assert vdoc.to_tree() == tree
    # and through actual XML text, byte-exact
    xml = serialize(tree)
    assert VectorizedDocument.from_xml(xml).to_xml() == xml


@pytest.mark.parametrize("seed", range(30))
def test_hash_consing_invariant(seed):
    tree = random_tree(random.Random(seed))
    vdoc = VectorizedDocument.from_tree(tree)
    store = vdoc.store

    # Skeleton size (distinct DAG nodes) never exceeds document tree size.
    stats = vdoc.stats()
    assert stats["skeleton_nodes"] <= stats["document_nodes"]

    # Identical subtrees share one id: interning the serialized form of any
    # reachable node again returns the same id.
    serial: dict[int, tuple] = {}

    def canon(nid: int) -> tuple:
        if nid not in serial:
            serial[nid] = (
                store.label(nid),
                tuple((canon(c), k) for c, k in store.children(nid)),
            )
        return serial[nid]

    seen: dict[tuple, int] = {}
    for nid in store.reachable(vdoc.root):
        key = canon(nid)
        assert seen.setdefault(key, nid) == nid, "duplicate structure interned twice"


@pytest.mark.parametrize("seed", range(10))
def test_revectorization_is_stable(seed):
    """vectorize(reconstruct(vdoc)) produces identical vectors and an
    isomorphic skeleton (same stats)."""
    tree = random_tree(random.Random(seed + 1000))
    v1 = VectorizedDocument.from_tree(tree)
    v2 = VectorizedDocument.from_tree(v1.to_tree())
    assert set(v1.vectors) == set(v2.vectors)
    for path, vec in v1.vectors.items():
        assert list(vec.scan()) == list(v2.vectors[path].scan())
    assert v1.stats() == v2.stats()
