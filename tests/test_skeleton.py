from repro.core.skeleton import NodeStore, collapse_runs
from repro.core.vectorize import vectorize_xml


def test_collapse_runs():
    assert collapse_runs([]) == ()
    assert collapse_runs([1, 1, 1]) == ((1, 3),)
    assert collapse_runs([1, 2, 2, 1]) == ((1, 1), (2, 2), (1, 1))


def test_hash_consing_shares_identical_subtrees():
    store, root, _ = vectorize_xml("<r><a><b/></a><a><b/></a></r>")
    runs = store.children(root)
    # the two <a><b/></a> subtrees intern to one id with multiplicity 2
    assert runs == ((runs[0][0], 2),)


def test_text_values_do_not_split_runs():
    # Different text values share the '#' marker: skeleton is value-blind.
    store, root, vectors = vectorize_xml("<r><a>x</a><a>y</a><a>z</a></r>")
    assert store.children(root) == ((store.children(root)[0][0], 3),)
    assert list(vectors[("r", "a", "#")].scan()) == ["x", "y", "z"]


def test_skeleton_never_larger_than_tree():
    xml = "<r>" + "".join(f"<p><q>v{i}</q></p>" for i in range(100)) + "</r>"
    store, root, _ = vectorize_xml(xml)
    assert store.node_count(root) == 1 + 100 * 3
    assert len(store.reachable(root)) == 4  # r, p, q, '#'


def test_occ_statistics():
    store, root, _ = vectorize_xml(
        "<r><p><q>a</q><q>b</q></p><p><q>c</q><q>d</q></p></r>"
    )
    assert store.occ(root, ()) == 1
    assert store.occ(root, ("p",)) == 2
    assert store.occ(root, ("p", "q")) == 4
    assert store.occ(root, ("p", "q", "#")) == 4
    assert store.occ(root, ("nope",)) == 0
    p = store.children(root)[0][0]
    assert store.occ(p, ("q",)) == 2


def test_attributes_become_labelled_nodes():
    store, root, vectors = vectorize_xml('<r><a id="1"/><a id="2"/></r>')
    a = store.children(root)[0][0]
    assert store.children(root)[0][1] == 2
    assert store.label(store.children(a)[0][0]) == "@id"
    assert list(vectors[("r", "a", "@id", "#")].scan()) == ["1", "2"]


def test_interning_is_idempotent():
    store = NodeStore()
    a1 = store.intern("a", ((store.text_id, 1),))
    a2 = store.intern("a", ((store.text_id, 1),))
    b = store.intern("a", ((store.text_id, 2),))
    assert a1 == a2 != b
