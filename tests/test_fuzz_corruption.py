"""The headline integrity property, fuzz-checked: for ANY single-bit
corruption of a valid .vdoc, every query either returns the exact
uncorrupted answer or raises StorageError — it never hangs, never crashes
with a non-Repro exception, and never returns a wrong answer.

Each seed flips one random bit anywhere in the file (header included) in
a fresh copy, then opens the document and runs an XPath and an XQ join to
completion under a SIGALRM watchdog.  ``repro-xq check`` (shallow) must
flag every single one of these corruptions, and ``--deep`` must report a
superset of the shallow findings.
"""

import random
import shutil
import signal
from contextlib import contextmanager

import pytest

from repro.core.engine import eval_query, eval_xq
from repro.core.vdoc import VectorizedDocument
from repro.datasets.synth import xmark_like_xml
from repro.errors import StorageError
from repro.storage.fsck import verify_vdoc

N_SEEDS = 220
PAGE_SIZE = 256
XPATH = "/site/people/person/profile/age/text()"
XQ_JOIN = (
    "for $c in /site/closed_auctions/closed_auction, "
    "$p in /site/people/person "
    "where $c/buyer = $p/@id "
    "return <pair>{$p/name}{$c/price}</pair>"
)


@contextmanager
def watchdog(seconds):
    """Fail the test (rather than hang forever) if the block stalls."""
    def _timeout(signum, frame):
        raise AssertionError(f"corrupted-file operation hung > {seconds}s")
    old = signal.signal(signal.SIGALRM, _timeout)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, old)


@pytest.fixture(scope="module")
def golden(tmp_path_factory):
    """A saved vdoc plus the uncorrupted answers of both query kinds."""
    xml = xmark_like_xml(8, seed=23)
    mem = VectorizedDocument.from_xml(xml)
    path = str(tmp_path_factory.mktemp("fuzz") / "golden.vdoc")
    mem.save(path, page_size=PAGE_SIZE)
    xpath_base = eval_query(mem, XPATH).canonical()
    xq_base = eval_xq(mem, XQ_JOIN).to_xml()
    # sanity: the clean on-disk document reproduces both answers
    with VectorizedDocument.open(path, pool_pages=8) as disk:
        assert eval_query(disk, XPATH).canonical() == xpath_base
    with VectorizedDocument.open(path, pool_pages=8) as disk:
        assert eval_xq(disk, XQ_JOIN).to_xml() == xq_base
    assert verify_vdoc(path) == []
    return path, xpath_base, xq_base


def _flip_bit(path, rng):
    with open(path, "r+b") as f:
        f.seek(0, 2)
        size = f.tell()
        off = rng.randrange(size)
        f.seek(off)
        byte = f.read(1)[0]
        f.seek(off)
        f.write(bytes([byte ^ (1 << rng.randrange(8))]))
    return off


def _query_outcomes(path, xpath_base, xq_base):
    """Run both queries; returns how many raised StorageError.  Any other
    exception propagates (and fails the test); a completed query must
    return the exact baseline answer."""
    raised = 0
    try:
        with VectorizedDocument.open(path, pool_pages=8) as disk:
            assert eval_query(disk, XPATH).canonical() == xpath_base, \
                "corrupted file returned a WRONG XPath answer"
    except StorageError:
        raised += 1
    try:
        with VectorizedDocument.open(path, pool_pages=8) as disk:
            assert eval_xq(disk, XQ_JOIN).to_xml() == xq_base, \
                "corrupted file returned a WRONG XQ answer"
    except StorageError:
        raised += 1
    return raised


def test_single_bitflip_fuzz(golden, tmp_path):
    golden_path, xpath_base, xq_base = golden
    work = str(tmp_path / "flipped.vdoc")
    n_detected_by_query = 0
    n_correct = 0
    for seed in range(N_SEEDS):
        rng = random.Random(seed)
        shutil.copyfile(golden_path, work)
        off = _flip_bit(work, rng)
        with watchdog(30):
            raised = _query_outcomes(work, xpath_base, xq_base)
            if raised:
                n_detected_by_query += 1
            else:
                n_correct += 1
            # the offline verifier must flag EVERY corruption — shallow
            findings = verify_vdoc(work)
            assert findings, (
                f"seed {seed}: flip at byte {off} invisible to fsck")
            if seed % 20 == 0:  # deep is a superset of shallow
                deep = verify_vdoc(work, deep=True)
                assert len(deep) >= len(findings)
    # the split is corruption-placement-dependent, but both outcomes must
    # occur: some flips land in pages the queries read (→ StorageError),
    # plenty land elsewhere (→ exact answer)
    assert n_detected_by_query + n_correct == N_SEEDS
    assert n_detected_by_query >= N_SEEDS // 10
    assert n_correct >= N_SEEDS // 10


def test_multi_byte_corruption_smash(golden, tmp_path):
    """Heavier corruption: 64 random bytes overwritten — still only
    correct-or-StorageError, still caught by fsck."""
    golden_path, xpath_base, xq_base = golden
    work = str(tmp_path / "smashed.vdoc")
    for seed in range(10):
        rng = random.Random(1000 + seed)
        shutil.copyfile(golden_path, work)
        with open(work, "r+b") as f:
            f.seek(0, 2)
            size = f.tell()
            for _ in range(64):
                f.seek(rng.randrange(size))
                f.write(bytes([rng.randrange(256)]))
        with watchdog(30):
            _query_outcomes(work, xpath_base, xq_base)
            assert verify_vdoc(work)
