"""Disk-backed vectorized documents: save/open roundtrip, byte-identical
query results vs. the in-memory path under a bounded buffer pool, the
scan-once invariant checked against physical page reads, and pin-count
leak checks after every query (the PR's acceptance criteria)."""

import numpy as np
import pytest

from repro.core.context import EvalContext
from repro.core.engine import eval_query, eval_xq
from repro.core.vdoc import VectorizedDocument
from repro.datasets.synth import xmark_like_xml
from repro.errors import EngineInvariantError, StorageError
from repro.storage import DiskVectorizedDocument, LazyVector

XPATH_QUERIES = [
    "/site/people/person/profile/age/text()",
    "/site/people/person[profile/age = '32']/name",
    "//item[quantity > 5]/name",
    "/site/regions/*/item/quantity/text()",
    "//person[phone]",
]

XQ_JOIN = ("for $c in /site/closed_auctions/closed_auction, "
           "$p in /site/people/person where $c/buyer = $p/@id "
           "return <pair>{$p/name}{$c/price}</pair>")


@pytest.fixture(scope="module")
def xml():
    return xmark_like_xml(30, seed=7)


@pytest.fixture(scope="module")
def mem(xml):
    return VectorizedDocument.from_xml(xml)


@pytest.fixture()
def saved(tmp_path, mem):
    """A saved vdoc with tiny pages so every vector spans several pages."""
    path = str(tmp_path / "doc.vdoc")
    summary = mem.save(path, page_size=256)
    assert summary["pages"] > 16  # the 8-page pools below really are small
    return path


def _open_small(path):
    disk = VectorizedDocument.open(path, pool_pages=8)
    assert isinstance(disk, DiskVectorizedDocument)
    return disk


def test_save_open_reconstruct_roundtrip(saved, xml):
    with _open_small(saved) as disk:
        assert disk.to_xml() == xml


def test_open_is_lazy(saved):
    with _open_small(saved) as disk:
        assert all(isinstance(v, LazyVector) for v in disk.vectors.values())
        assert not any(v.is_loaded() for v in disk.vectors.values())
        # stats (value counts included) come from the catalog, not a scan
        disk.stats()
        assert not any(v.is_loaded() for v in disk.vectors.values())


def test_stats_match_memory(saved, mem):
    with _open_small(saved) as disk:
        assert disk.stats() == mem.stats()


@pytest.mark.parametrize("query", XPATH_QUERIES)
def test_xpath_identical_to_memory_under_small_pool(saved, mem, query):
    with _open_small(saved) as disk:
        ctx = EvalContext.for_doc(disk)
        r_mem = eval_query(mem, query, mode="vx")
        r_disk = eval_query(disk, query, mode="vx", ctx=ctx)
        assert r_disk.count() == r_mem.count()
        assert r_disk.text_values() == r_mem.text_values()
        assert r_disk.canonical() == r_mem.canonical()
        # pin-count leak check after every query
        assert disk.pool.pinned_total() == 0
        # <= 1 full page pass per touched vector, against the physical
        # reads this context performed
        for v in disk.vectors.values():
            assert ctx.pages_in_window(v) <= v.n_pages


def test_xq_join_identical_to_memory_under_small_pool(saved, mem):
    with _open_small(saved) as disk:
        total_pages = sum(v.n_pages for v in disk.vectors.values())
        assert disk.pool.capacity < total_pages  # pool < total vector pages
        ctx = EvalContext.for_doc(disk)
        assert eval_xq(disk, XQ_JOIN, ctx=ctx).to_xml() \
            == eval_xq(mem, XQ_JOIN).to_xml()
        assert disk.pool.pinned_total() == 0
        for v in disk.vectors.values():
            assert ctx.pages_in_window(v) <= v.n_pages


def test_naive_mode_on_disk_document(saved, mem):
    query = "//item[quantity > 5]/name"
    with _open_small(saved) as disk:
        r_disk = eval_query(disk, query, mode="naive")
        r_mem = eval_query(mem, query, mode="naive")
        assert r_disk.canonical() == r_mem.canonical()


def test_small_pool_evicts(saved):
    with _open_small(saved) as disk:
        eval_query(disk, "/site/people/person/profile/age/text()")
        eval_xq(disk, XQ_JOIN)
        assert disk.pool.stats.evictions > 0
        assert disk.pool.resident() <= 8


def test_second_query_reads_no_pages(saved):
    with _open_small(saved) as disk:
        query = "//item[quantity > 5]/name"
        eval_query(disk, query, mode="vx")
        before = disk.pool.stats.pages_read
        eval_query(disk, query, mode="vx")  # columns are cached in numpy
        assert disk.pool.stats.pages_read == before


def test_unbounded_pool_warm_rescan_hits_only(saved):
    with VectorizedDocument.open(saved, pool_pages=None) as disk:
        eval_query(disk, "/site/people/person/profile/age/text()", mode="vx")
        disk.drop_caches()  # forget numpy columns; pool keeps the pages
        before = disk.pool.stats.pages_read
        eval_query(disk, "/site/people/person/profile/age/text()", mode="vx")
        assert disk.pool.stats.pages_read == before  # pure pool hits


def test_bounded_pool_cold_rescan_rereads(saved):
    with _open_small(saved) as disk:
        for vec in disk.vectors.values():
            vec.scan()
        disk.drop_caches()
        before = disk.pool.stats.pages_read
        for vec in disk.vectors.values():
            vec.scan()
        # all chains together exceed the 8-page pool: real I/O must recur
        assert disk.pool.stats.pages_read > before


def test_engine_flags_page_overread(saved):
    """A vector that reads more pages than one chain pass trips the
    engine's I/O variant of the scan-once assertion."""
    with _open_small(saved) as disk:
        vec = disk.vectors[("site", "people", "person", "profile", "age", "#")]
        ctx = EvalContext.for_doc(disk)
        original_begin = ctx.begin

        def tampered_begin(doc):
            # simulate a buggy evaluator that re-reads the chain: seed the
            # fresh window with more pages than one full pass
            original_begin(doc)
            ctx.note_io(vec, vec.n_pages + 1)

        ctx.begin = tampered_begin
        with pytest.raises(EngineInvariantError, match="chain pass"):
            eval_query(disk, "/site/people/person[profile/age = '32']",
                       ctx=ctx)


def test_engine_flags_pin_leak(saved):
    with _open_small(saved) as disk:
        head = disk.vectors[("site", "people", "person", "name", "#")]._heap.head
        disk.pool.pin(head)
        try:
            with pytest.raises(EngineInvariantError, match="pin"):
                eval_query(disk, "/site/people/person/name")
        finally:
            disk.pool.unpin(head)


def test_memory_documents_report_zero_io(mem):
    eval_query(mem, "//item[quantity > 5]/name", mode="vx")
    assert all(v.pages_read == 0 and v.n_pages == 0
               for v in mem.vectors.values())
    assert mem.pool is None


def test_lazy_vector_counts_pages_once(saved):
    with _open_small(saved) as disk:
        vec = disk.vectors[("site", "people", "person", "profile", "age", "#")]
        assert vec.pages_read == 0
        col = vec.scan()
        assert isinstance(col, np.ndarray) and col.dtype.kind == "U"
        assert 0 < vec.pages_read <= vec.n_pages
        after_first = vec.pages_read
        vec.scan()  # cached: no further physical reads
        assert vec.pages_read == after_first


def test_value_count_mismatch_detected(saved):
    with _open_small(saved) as disk:
        vec = disk.vectors[("site", "people", "person", "name", "#")]
        vec._n += 1  # simulate a corrupt catalog entry
        with pytest.raises(StorageError, match="catalog"):
            vec.scan()


def test_open_rejects_xml(tmp_path, xml):
    f = tmp_path / "doc.xml"
    f.write_text(xml, encoding="utf-8")
    with pytest.raises(StorageError):
        VectorizedDocument.open(str(f))


def test_save_result_document_roundtrip(tmp_path, mem):
    """A constructed XQ *result* document (shared store) saves and reopens
    byte-identically too."""
    out = eval_xq(mem, XQ_JOIN).vdoc
    path = str(tmp_path / "result.vdoc")
    out.save(path, page_size=256)
    with VectorizedDocument.open(path, pool_pages=4) as disk:
        assert disk.to_xml() == out.to_xml()
