"""Storage integrity units: page checksums, format-v2 header validation,
corrupt-slot bounds checks, heap-chain cycle guards, and StorageError
wrapping of every decode failure at the storage boundary."""

import struct

import pytest

from repro.core.engine import eval_query
from repro.core.vdoc import VectorizedDocument
from repro.datasets.synth import xmark_like_xml
from repro.errors import CorruptDataError, StorageError
from repro.storage import BufferPool, HeapFile, PageFile, SlottedPage
from repro.storage.disk import FILE_HEADER, MAGIC
from repro.storage.pages import (
    CRC_OFFSET,
    PAGE_HEADER,
    page_crc,
    stamp_crc,
    stored_crc,
)


def _flip(path, offset, mask=0x40):
    with open(path, "r+b") as f:
        f.seek(offset)
        byte = f.read(1)[0]
        f.seek(offset)
        f.write(bytes([byte ^ mask]))


def _patch_page(path, pid, page_size, mutate):
    """Mutate one page's bytes and re-stamp its checksum (targets checks
    *behind* the crc: utf-8, chain links, slot entries)."""
    off = FILE_HEADER + pid * page_size
    with open(path, "r+b") as f:
        f.seek(off)
        buf = bytearray(f.read(page_size))
        mutate(buf)
        stamp_crc(buf)
        f.seek(off)
        f.write(buf)


@pytest.fixture()
def heap_file(tmp_path):
    """A flushed page file with one multi-page heap chain."""
    path = str(tmp_path / "h.pg")
    file = PageFile.create(path, 128)
    pool = BufferPool(file)
    heap = HeapFile.create(pool)
    recs = [f"record-{i:05d}".encode() for i in range(60)]
    for r in recs:
        heap.append(r)
    pool.flush()
    file.close()
    return path, heap.head, recs


def test_page_crc_stamp_and_verify():
    buf = bytearray(256)
    SlottedPage.init(buf, 256)
    buf[50:60] = b"payload---"
    stamp_crc(buf)
    assert stored_crc(buf) == page_crc(buf)
    buf[55] ^= 0x01
    assert stored_crc(buf) != page_crc(buf)


def test_bitflip_in_page_detected_on_read(heap_file):
    path, head, _ = heap_file
    _flip(path, FILE_HEADER + 2 * 128 + 40)  # payload byte of page 2
    file = PageFile.open(path)
    heap = HeapFile(BufferPool(file), head)
    with pytest.raises(CorruptDataError, match="page 2.*checksum"):
        list(heap.records())
    file.close()


def test_bitflip_in_crc_field_detected(heap_file):
    path, head, _ = heap_file
    _flip(path, FILE_HEADER + 1 * 128 + CRC_OFFSET)
    file = PageFile.open(path)
    with pytest.raises(CorruptDataError, match="page 1.*checksum"):
        list(HeapFile(BufferPool(file), head).records())
    file.close()


def test_allocated_never_written_page_reads_as_zeros(tmp_path):
    file = PageFile.create(str(tmp_path / "z.pg"), 128)
    pool = BufferPool(file)
    pid = file.allocate()
    file.flush()  # pads the sparse tail to the declared length
    assert pool.pin(pid) == bytearray(128)  # all-zero page passes verify
    pool.unpin(pid)
    file.close()


def test_v1_file_rejected_with_upgrade_hint(tmp_path):
    path = tmp_path / "v1.vdoc"
    v1 = MAGIC + struct.pack("<HIQq", 1, 4096, 0, -1)
    path.write_bytes(v1 + b"\x00" * (32 - len(v1)))
    with pytest.raises(StorageError, match="version 1.*re-save"):
        PageFile.open(str(path))


def test_garbage_and_future_versions_rejected(tmp_path):
    bad = tmp_path / "bad.vdoc"
    bad.write_bytes(b"definitely not a page file")
    with pytest.raises(StorageError, match="magic"):
        PageFile.open(str(bad))
    fut = tmp_path / "v9.vdoc"
    fut.write_bytes(MAGIC + struct.pack("<H", 9) + b"\x00" * 30)
    with pytest.raises(StorageError, match="version 9"):
        PageFile.open(str(fut))


def test_truncated_file_rejected(heap_file):
    path, _, _ = heap_file
    with PageFile.open(path) as pf:
        size = pf.size_bytes()
    with open(path, "r+b") as f:
        f.truncate(size - 77)
    with pytest.raises(CorruptDataError, match="truncated"):
        PageFile.open(path)


def test_header_declares_more_pages_than_file_holds(heap_file):
    """The old zero-fill path silently read truncation as empty pages."""
    path, _, _ = heap_file
    with open(path, "r+b") as f:
        f.truncate(FILE_HEADER + 128)  # keep the header and one page
    with pytest.raises(CorruptDataError, match="declares"):
        PageFile.open(path)


def test_header_bitflip_detected(heap_file):
    path, _, _ = heap_file
    _flip(path, 35)  # reserved header byte: only the header crc sees it
    with pytest.raises(CorruptDataError, match="header checksum"):
        PageFile.open(path)


def test_fragment_slot_bounds_checked():
    ps = 128
    buf = bytearray(ps)
    page = SlottedPage.init(buf, ps, pid=7)
    page.append_fragment(b"hello", continued=False)
    # corrupt the slot entry: length far beyond free_ptr
    struct.pack_into("<HH", buf, ps - 4, PAGE_HEADER, 900 & 0x7FFF)
    with pytest.raises(CorruptDataError, match=r"page 7, slot 0"):
        page.fragment(0)


def test_fragment_slot_index_and_directory_bounds():
    ps = 128
    buf = bytearray(ps)
    page = SlottedPage.init(buf, ps, pid=3)
    page.append_fragment(b"x", continued=False)
    with pytest.raises(CorruptDataError, match="slot 5"):
        page.fragment(5)
    # corrupt n_slots so the directory overruns the whole page
    struct.pack_into("<H", buf, 0, 1000)
    with pytest.raises(CorruptDataError, match="directory"):
        page.fragment(0)


def test_corrupt_free_ptr_detected():
    ps = 128
    buf = bytearray(ps)
    page = SlottedPage.init(buf, ps, pid=1)
    page.append_fragment(b"abc", continued=False)
    struct.pack_into("<H", buf, 2, ps)  # free_ptr past the slot directory
    with pytest.raises(CorruptDataError, match="free_ptr"):
        page.fragment(0)


def test_heap_chain_cycle_detected(heap_file):
    path, head, _ = heap_file
    file = PageFile.open(path)
    pool = BufferPool(file)
    heap = HeapFile(pool, head)
    chain = heap.pages()
    assert len(chain) > 2
    # point the tail back at the head: a classic corrupt link
    _patch_page(path, chain[-1], 128, lambda buf:
                SlottedPage(buf, 128).__setattr__("next_page", head))
    file.close()

    file = PageFile.open(path)
    heap = HeapFile(BufferPool(file), head)
    with pytest.raises(CorruptDataError, match="cycle"):
        list(heap.records())
    with pytest.raises(CorruptDataError, match="cycle"):
        heap.pages()
    file.close()


def test_heap_chain_link_out_of_range(heap_file):
    path, head, _ = heap_file
    _patch_page(path, head, 128, lambda buf:
                SlottedPage(buf, 128).__setattr__("next_page", 999))
    file = PageFile.open(path)
    with pytest.raises(CorruptDataError, match="outside the file"):
        list(HeapFile(BufferPool(file), head).records())
    file.close()


def test_heap_chain_longer_than_cataloged(heap_file):
    path, head, _ = heap_file
    file = PageFile.open(path)
    heap = HeapFile(BufferPool(file), head, n_pages=2)  # lies: chain is >2
    with pytest.raises(CorruptDataError, match="cataloged 2 pages"):
        list(heap.records())
    file.close()


# -- decode failures wrapped at the vdoc boundary --------------------------


@pytest.fixture()
def saved_vdoc(tmp_path):
    xml = xmark_like_xml(8, seed=11)
    mem = VectorizedDocument.from_xml(xml)
    path = str(tmp_path / "doc.vdoc")
    mem.save(path, page_size=256)
    return path, mem


def test_invalid_utf8_value_raises_storage_error(saved_vdoc):
    path, mem = saved_vdoc
    # a vector whose first value is non-empty, so slot 0 has payload bytes
    vpath = next(p for p in sorted(mem.vectors)
                 if mem.vectors[p].tolist()[0])
    with VectorizedDocument.open(path) as disk:
        pid = disk.vectors[vpath]._heap.head

    def smash(buf):  # first byte of the first value → invalid UTF-8
        off, _, _ = SlottedPage(buf, 256).slot_entry(0)
        buf[off] = 0xFF
    _patch_page(path, pid, 256, smash)
    with VectorizedDocument.open(path) as disk:
        with pytest.raises(CorruptDataError, match="UTF-8"):
            disk.vectors[vpath].scan()


def test_corrupt_catalog_json_raises_storage_error(saved_vdoc):
    path, _ = saved_vdoc
    with PageFile.open(path) as pf:
        meta_page, ps = pf.meta_page, pf.page_size

    def smash(buf):
        off, _, _ = SlottedPage(buf, ps).slot_entry(0)
        buf[off] = 0xFF  # breaks both UTF-8 and JSON
    _patch_page(path, meta_page, ps, smash)
    with pytest.raises(StorageError, match="JSON"):
        VectorizedDocument.open(path)


def test_catalog_schema_violation_raises_storage_error(saved_vdoc):
    """Parseable JSON with a missing/invalid field must fail schema
    validation with a StorageError, never surface as KeyError/TypeError."""
    path, _ = saved_vdoc
    with PageFile.open(path) as pf:
        meta_page, ps = pf.meta_page, pf.page_size

    def smash(buf):  # same-length key rename keeps the JSON parseable
        off, length, _ = SlottedPage(buf, ps).slot_entry(0)
        frag = bytes(buf[off:off + length])
        assert b'"head":' in frag
        buf[off:off + length] = frag.replace(b'"head":', b'"hexd":', 1)
    _patch_page(path, meta_page, ps, smash)
    with pytest.raises(StorageError, match="head page"):
        VectorizedDocument.open(path)


def test_query_on_corrupted_vdoc_raises_not_hangs(saved_vdoc):
    path, mem = saved_vdoc
    query = "/site/people/person/profile/age/text()"
    baseline = eval_query(mem, query).text_values()
    with VectorizedDocument.open(path, pool_pages=8) as disk:
        assert eval_query(disk, query).text_values() == baseline
        age_pid = next(v for p, v in disk.vectors.items()
                       if "age" in p)._heap.head
    # raw flip (no crc restamp) in a page only the query will read:
    # open() succeeds, the scan fails
    _flip(path, FILE_HEADER + 256 * age_pid + 20)
    with VectorizedDocument.open(path, pool_pages=8) as disk:
        with pytest.raises(StorageError):
            eval_query(disk, query).text_values()  # the gather reads disk
        assert disk.pool.pinned_total() == 0  # failure leaked nothing
