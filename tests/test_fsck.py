"""``verify_vdoc`` / ``repro-xq check``: findings (not exceptions) with
locations, exit codes, and the deep-is-a-superset-of-shallow contract."""

import struct

import pytest

from repro.cli import main
from repro.core.vdoc import VectorizedDocument
from repro.datasets.synth import xmark_like_xml
from repro.storage import PageFile
from repro.storage.disk import FILE_HEADER, _header_bytes
from repro.storage.fsck import verify_vdoc
from repro.storage.pages import SlottedPage, stamp_crc

PAGE_SIZE = 256


@pytest.fixture()
def vdoc_path(tmp_path):
    xml = xmark_like_xml(8, seed=5)
    path = str(tmp_path / "doc.vdoc")
    VectorizedDocument.from_xml(xml).save(path, page_size=PAGE_SIZE)
    return path


def _patch_page(path, pid, mutate):
    off = FILE_HEADER + pid * PAGE_SIZE
    with open(path, "r+b") as f:
        f.seek(off)
        buf = bytearray(f.read(PAGE_SIZE))
        mutate(buf)
        stamp_crc(buf)
        f.seek(off)
        f.write(buf)


def test_clean_file_has_no_findings(vdoc_path):
    assert verify_vdoc(vdoc_path) == []
    assert verify_vdoc(vdoc_path, deep=True) == []


def test_flipped_page_named_in_finding(vdoc_path):
    pid = 4
    with open(vdoc_path, "r+b") as f:
        f.seek(FILE_HEADER + pid * PAGE_SIZE + 30)
        byte = f.read(1)[0]
        f.seek(FILE_HEADER + pid * PAGE_SIZE + 30)
        f.write(bytes([byte ^ 0x10]))
    findings = verify_vdoc(vdoc_path)
    assert any(f.code == "page-crc" and f.page == pid for f in findings)
    # deep reports at least everything shallow reports
    assert len(verify_vdoc(vdoc_path, deep=True)) >= len(findings)


def test_truncation_is_a_size_finding(vdoc_path):
    with open(vdoc_path, "r+b") as f:
        f.seek(0, 2)
        f.truncate(f.tell() - PAGE_SIZE // 2)
    findings = verify_vdoc(vdoc_path)
    assert any(f.code == "size" for f in findings)


def test_chain_cycle_is_a_chain_finding(vdoc_path):
    with PageFile.open(vdoc_path) as pf:
        meta_page = pf.meta_page
    # meta heap is a 1-page chain on this document; link it to itself
    def cycle(buf):
        SlottedPage(buf, PAGE_SIZE).next_page = meta_page
    _patch_page(vdoc_path, meta_page, cycle)
    findings = verify_vdoc(vdoc_path)
    assert any(f.code in ("chain", "catalog") and "cycle" in f.message
               for f in findings)


def test_catalog_schema_break_is_a_catalog_finding(vdoc_path):
    with PageFile.open(vdoc_path) as pf:
        meta_page = pf.meta_page

    def rename_key(buf):
        page = SlottedPage(buf, PAGE_SIZE)
        off, length, _ = page.slot_entry(0)
        frag = bytes(buf[off:off + length])
        assert b'"head":' in frag
        buf[off:off + length] = frag.replace(b'"head":', b'"hexd":', 1)
    _patch_page(vdoc_path, meta_page, rename_key)
    findings = verify_vdoc(vdoc_path)
    assert any(f.code == "catalog" and "head page" in f.message
               for f in findings)


def test_invalid_utf8_value_is_deep_only(vdoc_path):
    """A non-UTF-8 byte inside a record (with a re-stamped checksum) is
    structurally sound — only --deep decodes values and reports it."""
    with VectorizedDocument.open(vdoc_path) as disk:
        vpath = next(p for p in sorted(disk.vectors)
                     if len(disk.vectors[p]) and disk.vectors[p].scan()[0])
        pid = disk.vectors[vpath]._heap.head

    def smash(buf):
        off, _, _ = SlottedPage(buf, PAGE_SIZE).slot_entry(0)
        buf[off] = 0xFF
    _patch_page(vdoc_path, pid, smash)
    assert verify_vdoc(vdoc_path) == []
    deep = verify_vdoc(vdoc_path, deep=True)
    assert any(f.code == "value" and "UTF-8" in f.message for f in deep)


def test_orphan_page_is_deep_only(vdoc_path):
    """A checksum-valid page outside every chain: shallow-clean, deep
    reports it — the superset relation with a strictly deeper check."""
    with open(vdoc_path, "r+b") as f:
        header = f.read(FILE_HEADER)
        _, page_size, n_pages, meta, _ = struct.unpack_from(
            "<HIQqI", header, 8)
        orphan = bytearray(PAGE_SIZE)
        SlottedPage.init(orphan, PAGE_SIZE)
        stamp_crc(orphan)
        f.seek(0, 2)
        f.write(orphan)
        f.seek(0)
        f.write(_header_bytes(page_size, n_pages + 1, meta))
    assert verify_vdoc(vdoc_path) == []
    deep = verify_vdoc(vdoc_path, deep=True)
    assert any(f.code == "orphan" and f.page == n_pages for f in deep)


# -- the CLI front end -----------------------------------------------------


def test_cli_check_ok(vdoc_path, capsys):
    assert main(["check", vdoc_path]) == 0
    out = capsys.readouterr().out
    assert "ok (shallow check, no findings)" in out
    assert main(["check", vdoc_path, "--deep"]) == 0
    assert "ok (deep check" in capsys.readouterr().out


def test_cli_check_reports_findings_and_exits_nonzero(vdoc_path, capsys):
    pid = 6
    with open(vdoc_path, "r+b") as f:
        f.seek(FILE_HEADER + pid * PAGE_SIZE + 40)
        byte = f.read(1)[0]
        f.seek(FILE_HEADER + pid * PAGE_SIZE + 40)
        f.write(bytes([byte ^ 0x20]))
    assert main(["check", vdoc_path]) == 1
    captured = capsys.readouterr()
    assert f"page-crc [page {pid}]" in captured.out
    assert "integrity finding(s)" in captured.err


def test_cli_check_missing_file(capsys):
    assert main(["check", "/no/such/file.vdoc"]) == 1
    assert capsys.readouterr().out.startswith("header")
