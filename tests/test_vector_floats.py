"""Regression: one definition of "numeric" for the ordering operators.

Python's ``float()`` accepts underscore digit separators while numpy's
column ``astype(float)`` treats them version-dependently, so
``Vector.floats()``'s fast and slow paths could disagree — the numeric
interpretation of ``"1_0"`` depended on whether a *sibling* value forced
the per-element fallback.  Everything now goes through
``repro.util.parse_float``, which rejects underscores outright."""

import numpy as np
import pytest

from repro.core.engine import eval_query
from repro.core.vdoc import VectorizedDocument
from repro.core.vectors import Vector
from repro.util import parse_float


def test_parse_float_rejects_underscores():
    for bad in ("1_0", "1_000.5", "_1", "1_", "1e1_0"):
        with pytest.raises(ValueError):
            parse_float(bad)
    assert parse_float("10") == 10.0
    assert parse_float(" 2.5 ") == 2.5
    assert parse_float("-3e2") == -300.0


def test_underscore_is_nan_in_clean_column():
    # every sibling casts cleanly: the bulk path must still reject "1_0"
    f = Vector(("a", "#"), ["1_0", "5", "7.5"]).floats()
    assert np.isnan(f[0]) and f[1] == 5.0 and f[2] == 7.5


def test_underscore_is_nan_in_dirty_column():
    # a non-numeric sibling forces the per-element path: same answer
    f = Vector(("a", "#"), ["1_0", "banana", "5"]).floats()
    assert np.isnan(f[0]) and np.isnan(f[1]) and f[2] == 5.0


def test_ordering_results_do_not_depend_on_sibling_values():
    clean = "<r><p><v>1_0</v></p><p><v>7</v></p></r>"
    dirty = "<r><p><v>1_0</v></p><p><v>7</v></p><p><v>banana</v></p></r>"
    for doc in (clean, dirty):
        vdoc = VectorizedDocument.from_xml(doc)
        got = {
            mode: eval_query(vdoc, "/r/p[v > 5]", mode=mode).count()
            for mode in ("vx", "naive")
        }
        # only the literal 7 qualifies — "1_0" is not numeric anywhere
        assert got == {"vx": 1, "naive": 1}, doc


def test_underscore_constant_matches_nothing():
    vdoc = VectorizedDocument.from_xml("<r><p><v>7</v></p></r>")
    for mode in ("vx", "naive"):
        assert eval_query(vdoc, "/r/p[v > '1_0']", mode=mode).count() == 0
        # equality is still plain string comparison, untouched by the fix
        assert eval_query(vdoc, "/r/p[v = '7']", mode=mode).count() == 1
