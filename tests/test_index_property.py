"""Property test of the index/scan identity: random documents and random
queries (joins included) must produce byte-identical results through
index probes and column scans, in memory and on disk.  Plus the
repository corollary: a query no member can match answers empty with
zero page I/O."""

import random

from repro.core.engine import eval_xq
from repro.core.vdoc import VectorizedDocument
from repro.datasets.synth import xmark_like_xml
from repro.repo.repository import Repository
from repro.storage.vdocfile import open_vdoc, save_vdoc

N_SEEDS = 25

VOCAB = ["alpha", "beta", "7", "-3.5", "0", "12e1", "nan",
         "name 3", "x y", "7.0", ""]
OPS = ["=", "!=", "<", "<=", ">", ">="]
CONSTS = VOCAB + ["zzz", "7.25", "-99"]


def _random_xml(rng, n):
    recs = []
    for _ in range(n):
        fields = [f"<a>{rng.choice(VOCAB)}</a>"]
        if rng.random() < 0.7:
            fields.append(f"<b>{rng.choice(VOCAB)}</b>")
        if rng.random() < 0.5:
            attr = f' t="{rng.choice(VOCAB)}"' if rng.random() < 0.5 else ""
            fields.append(f"<c{attr}>{rng.choice(VOCAB)}</c>")
        recs.append(f"<rec>{''.join(fields)}</rec>")
    return f"<db>{''.join(recs)}</db>"


def _random_query(rng):
    kind = rng.randrange(4)
    if kind == 0:
        return (f"for $r in /db/rec where $r/a {rng.choice(OPS)} "
                f"'{rng.choice(CONSTS)}' return <o>{{$r/b}}</o>")
    if kind == 1:
        return (f"for $r in /db/rec where $r/a = '{rng.choice(CONSTS)}' "
                f"and $r/b {rng.choice(OPS)} '{rng.choice(CONSTS)}' "
                f"return <o>{{$r/c}}</o>")
    if kind == 2:
        return (f"for $r in /db/rec where $r/c/@t = '{rng.choice(CONSTS)}' "
                f"return <o>{{$r/a}}</o>")
    return ("for $r in /db/rec, $s in /db/rec where $r/a = $s/b "
            "return <o>{$r/a}{$s/c}</o>")


def test_random_docs_and_queries_indexed_equals_scan():
    probed = 0
    for seed in range(N_SEEDS):
        rng = random.Random(seed)
        vdoc = VectorizedDocument.from_xml(
            _random_xml(rng, rng.randint(5, 40)))
        vdoc.build_indexes()
        for _ in range(6):
            query = _random_query(rng)
            ix = eval_xq(vdoc, query, use_indexes=True)
            scan = eval_xq(vdoc, query, use_indexes=False)
            assert ix.to_xml() == scan.to_xml(), (seed, query)
            probed += sum(op.access == "index" for op in ix.plan.ops)
    # the property must not hold vacuously: plenty of plans chose a probe
    assert probed > N_SEEDS


def test_random_docs_indexed_equals_scan_on_disk(tmp_path):
    for seed in (1, 5, 11):
        rng = random.Random(1000 + seed)
        xml = _random_xml(rng, rng.randint(20, 60))
        path = str(tmp_path / f"doc{seed}.vdoc")
        save_vdoc(VectorizedDocument.from_xml(xml), path, page_size=512,
                  index_paths="all")
        with open_vdoc(path, pool_pages=32) as doc:
            for _ in range(4):
                query = _random_query(rng)
                doc.drop_caches()
                ix = eval_xq(doc, query, use_indexes=True).to_xml()
                doc.drop_caches()
                scan = eval_xq(doc, query, use_indexes=False).to_xml()
                assert ix == scan, (seed, query)


def test_repo_query_no_member_can_match_is_empty_and_free(tmp_path):
    """All members pruned by the catalog: the answer is the empty result
    and not one page of any member is read (they are never even opened)."""
    for i in range(2):
        xml = xmark_like_xml(6 + i, seed=40 + i)
        (tmp_path / f"m{i}.xml").write_text(xml, encoding="utf-8")
    with Repository.init(str(tmp_path / "r.repo"), name="r",
                         pool_pages=16) as repo:
        for i in range(2):
            repo.add(str(tmp_path / f"m{i}.xml"), page_size=512)
        before = repo.pool.stats.pages_read
        result = repo.xq(
            "for $x in /store/shelf where $x/tag = 'v' "
            "return <o>{$x/tag}</o>")
        assert sorted(result.pruned) == ["m0", "m1"]
        assert result.results == []
        assert "<result/>" in result.to_xml()
        assert repo.pool.stats.pages_read == before
        assert repo._open == {}
