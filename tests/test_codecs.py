"""The format-v4 storage codecs in isolation: roundtrip identity over
random and adversarial columns, deterministic codec choice, fallback on
late-inapplicable columns, and the decode trust boundary — every
structural tamper of the encoded records raises a located
:class:`CorruptDataError`, never an arbitrary exception, a wrong-shape
result, or an unbounded allocation (bit-level *content* integrity is the
page-checksum layer's job, exercised by the file-level fuzz suites)."""

import random
import zlib

import numpy as np
import pytest

from repro.errors import CorruptDataError
from repro.storage.codecs import (
    CODECS,
    DELTA,
    DICT,
    IDENTITY,
    ZLIB,
    _ZLIB_HEADER,
    choose_codec,
    encode_column,
    utf8_bytes,
)

PATH = ("r", "it", "v", "#")


def _roundtrip(codec, values):
    records = codec.encode(list(values))
    assert len(records) == codec.n_records(len(values))
    state = codec.decode(PATH, len(values), records, utf8_bytes(values))
    col = codec.column(state)
    assert col.tolist() == list(values)
    return records, state


# -- roundtrip: crafted columns ---------------------------------------------

ADVERSARIAL = [
    [],
    [""],
    ["", "", ""],
    ["a", "", "a", "b", ""],
    ["same"] * 50,
    ["naïve", "日本語", "🜁🜂", "a\nb", "  spaced  ", "'quoted'"],
    [str(i) for i in range(-5, 5)],
    ["0", "-0" if False else "0", "9" * 18],          # near int64 text
    [f"k{i % 3}" for i in range(100)],
]


@pytest.mark.parametrize("values", ADVERSARIAL)
def test_identity_zlib_roundtrip_any_column(values):
    _roundtrip(IDENTITY, values)
    _roundtrip(ZLIB, values)


@pytest.mark.parametrize("values", [
    [], [""], ["x"] * 20, ["", "a", "", "a"],
    ["naïve", "日本語", "naïve", "🜁🜂", "日本語"] * 4,
    [f"c{i % 7}" for i in range(300)],
])
def test_dict_roundtrip_and_code_surface(values):
    _, state = _roundtrip(DICT, values)
    keys, codes = DICT.codes(state)
    # the dictionary is the value indexes' exact key order: sorted distinct
    assert keys.tolist() == sorted(set(values))
    assert [keys[c] for c in codes] == list(values)


@pytest.mark.parametrize("values", [
    [], ["0"], ["5", "5", "5"],
    [str(i) for i in range(1000, 1200)],
    [str(i * 997 - 50000) for i in range(80)],
    ["-9223372036854775808", "-9223372036854775807"],  # int64 floor
    ["9223372036854775806", "9223372036854775807"],    # int64 ceiling
])
def test_delta_roundtrip_and_float_surface(values):
    _, state = _roundtrip(DELTA, values)
    floats = DELTA.floats(state)
    assert floats.dtype == np.float64
    assert len(floats) == len(values)


def test_delta_rejects_non_canonical_integers():
    from repro.storage.codecs import CodecInapplicable

    for bad in ["01", "+1", "1.0", " 1", "", "ten", "0x1"]:
        with pytest.raises(CodecInapplicable):
            DELTA.encode(["1", bad])


# -- roundtrip: randomized property -----------------------------------------

def _random_column(rng):
    kind = rng.randrange(4)
    n = rng.randrange(0, 400)
    if kind == 0:       # low cardinality -> dict territory
        pool = [f"v{i}" for i in range(rng.randrange(1, 6))]
        return [rng.choice(pool) for _ in range(n)]
    if kind == 1:       # near-sequential integers -> delta territory
        base = rng.randrange(-10**6, 10**6)
        return [str(base + i * rng.randrange(1, 9)) for i in range(n)]
    if kind == 2:       # repetitive text -> zlib territory
        return [f"the quick brown fox {i % 10}" for i in range(n)]
    alphabet = "abc déf🜁\n'\"<>&"
    return ["".join(rng.choice(alphabet) for _ in range(rng.randrange(12)))
            for _ in range(n)]


@pytest.mark.parametrize("seed", range(25))
def test_encode_column_roundtrips_any_column(seed):
    rng = random.Random(seed)
    values = _random_column(rng)
    codec, records, lbytes, pbytes = encode_column(values)
    assert lbytes == utf8_bytes(values)
    assert pbytes == sum(len(r) for r in records)
    state = codec.decode(PATH, len(values), records, lbytes)
    assert codec.column(state).tolist() == values
    # a non-identity choice must actually compress
    if codec is not IDENTITY and lbytes:
        assert pbytes < lbytes


def test_choose_codec_is_deterministic_and_sensible():
    low_card = [f"c{i % 4}" for i in range(500)]
    seq = [str(10_000 + i) for i in range(500)]
    prose = [f"some repetitive prose value number {i}" for i in range(200)]
    assert choose_codec(low_card) is DICT
    assert choose_codec(seq) is DELTA
    assert choose_codec(prose) is ZLIB
    assert choose_codec([]) is IDENTITY
    for col in (low_card, seq, prose):
        assert choose_codec(col) is choose_codec(list(col))


def test_encode_column_falls_back_on_late_inapplicable_values():
    # the strided sample sees only integers, so delta is chosen — the
    # full encode then hits the trailing prose and must fall back, not
    # fail, and still roundtrip exactly
    values = [str(i) for i in range(300)] + ["not a number"]
    codec, records, lbytes, _ = encode_column(values)
    assert codec in (ZLIB, IDENTITY)
    state = codec.decode(PATH, len(values), records, lbytes)
    assert codec.column(state).tolist() == values
    # a NUL defeats zlib's separator too: identity is the terminal fallback
    values = [str(i) for i in range(300)] + ["nul\x00here"]
    codec, records, lbytes, _ = encode_column(values)
    assert codec is IDENTITY
    state = codec.decode(PATH, len(values), records, lbytes)
    assert codec.column(state).tolist() == values


# -- the decode trust boundary ----------------------------------------------

def test_dict_decode_rejects_structural_damage():
    values = [f"k{i % 3}" for i in range(30)]
    records = DICT.encode(values)
    cases = [
        records[:2],                                     # missing record
        [records[0][:-1], records[1], records[2]],       # short header
        [records[0], records[1][:-4], records[2]],       # truncated keys
        [records[0], records[1], records[2][:-1]],       # truncated codes
        [records[0], records[1], b"\xff" * 30],          # codes out of range
    ]
    hdr = list(__import__("struct").unpack("<qqqq", records[0]))
    for field, value in ((0, 7), (1, 31), (2, 5), (3, 3)):
        bad = hdr[:]
        bad[field] = value
        cases.append([__import__("struct").pack("<qqqq", *bad),
                      records[1], records[2]])
    for case in cases:
        with pytest.raises(CorruptDataError, match="r/it/v/#"):
            DICT.decode(PATH, len(values), case, utf8_bytes(values))


def test_dict_decode_rejects_unsorted_dictionary():
    import struct

    # hand-build an otherwise-valid encoding whose keys are swapped: the
    # permutation check must refuse it (value indexes and code-space
    # equality both assume the sorted np.unique order)
    keys = np.asarray(["b", "a"], dtype="<U1")
    codes = np.asarray([0, 1, 0], dtype="<u1")
    records = [struct.pack("<qqqq", 3, 2, keys.itemsize, 1),
               keys.tobytes(), codes.tobytes()]
    with pytest.raises(CorruptDataError, match="increasing"):
        DICT.decode(PATH, 3, records, 3)


def test_delta_decode_rejects_structural_damage():
    values = [str(i) for i in range(50)]
    records = DELTA.encode(values)
    cases = [
        records[:1],
        [records[0][:-1], records[1]],
        [records[0], records[1][:-1]],                   # truncated deltas
        [records[0], records[1] + b"\x00"],              # oversized deltas
    ]
    for case in cases:
        with pytest.raises(CorruptDataError, match="r/it/v/#"):
            DELTA.decode(PATH, len(values), case, utf8_bytes(values))


def test_zlib_decode_rejects_bomb_and_damage():
    values = [f"text {i % 5}" for i in range(40)]
    lbytes = utf8_bytes(values)
    records = ZLIB.encode(values)
    # a crafted header declaring a huge payload must be refused *before*
    # decompression: the declaration is cross-checked against the
    # catalog's logical byte count, so it can never size the allocation
    bomb = [_ZLIB_HEADER.pack(len(values), 1 << 40),
            zlib.compress(b"\x00" * 4096)]
    with pytest.raises(CorruptDataError, match="catalog implies"):
        ZLIB.decode(PATH, len(values), bomb, lbytes)
    cases = [
        records[:1],
        [records[0][:-1], records[1]],
        [records[0], records[1][:-2]],                   # broken stream
        [records[0], b"\x00" + records[1]],
        [_ZLIB_HEADER.pack(len(values) + 1, lbytes + len(values)),
         records[1]],                                    # n mismatch
    ]
    for case in cases:
        with pytest.raises(CorruptDataError, match="r/it/v/#"):
            ZLIB.decode(PATH, len(values), case, lbytes)


def test_identity_decode_rejects_bad_utf8_and_count():
    values = ["a", "b"]
    records = IDENTITY.encode(values)
    with pytest.raises(CorruptDataError, match="UTF-8"):
        IDENTITY.decode(PATH, 2, [records[0], b"\xff\xfe"], 2)
    with pytest.raises(CorruptDataError, match="chain holds"):
        IDENTITY.decode(PATH, 3, records, 2)


@pytest.mark.parametrize("codec_name", sorted(CODECS))
@pytest.mark.parametrize("seed", range(15))
def test_record_tamper_never_escapes_the_boundary(codec_name, seed):
    """Random byte-level tampering of valid records: decode either raises
    CorruptDataError or returns a well-formed column of the cataloged
    length — never any other exception and never a wrong-shape result.
    (Whether a surviving decode matches the original bytes is the page
    checksum layer's guarantee, covered by the file-level fuzz.)"""
    codec = CODECS[codec_name]
    values = [f"k{i % 4}" if codec_name == "dict" else str(100 + i)
              for i in range(60)]
    if codec_name == "zlib":
        values = [f"prose value {i % 6}" for i in range(60)]
    base = codec.encode(values)
    lbytes = utf8_bytes(values)
    rng = random.Random(seed)
    records = [bytearray(r) for r in base]
    for _ in range(rng.randrange(1, 4)):
        target = rng.randrange(len(records))
        action = rng.randrange(3)
        if action == 0 and records[target]:
            off = rng.randrange(len(records[target]))
            records[target][off] ^= 1 << rng.randrange(8)
        elif action == 1:
            records[target] = records[target][:rng.randrange(
                len(records[target]) + 1)]
        else:
            records[target] += bytes([rng.randrange(256)])
    try:
        state = codec.decode(PATH, len(values), [bytes(r) for r in records],
                             lbytes)
    except CorruptDataError:
        return
    assert len(codec.column(state)) == len(values)
