#!/usr/bin/env python
"""CI regression gate: compare a fresh BENCH_xq run against the committed
baseline and fail if performance regressed.

Both files are ``bench_xq.py`` payloads.  Every record that appears in
*both* — matched on its regime plus identifying keys (query name and
document/configuration size) — contributes the ratio ``fresh speedup /
baseline speedup``; the gate fails when the **geomean** of those ratios
drops below ``1 - GATE_TOLERANCE``.  Comparing speedups (naive/vx,
per-combo/batched, scan/indexed — each a ratio of two timings taken on
the same machine in the same run) rather than wall-clock times is what
makes the gate non-flaky on shared CI runners: a uniformly slower
machine scales both sides of each ratio and cancels out.

Disjoint record sets are an explicit failure, not a silent pass — a
renamed query or changed size sweep must update the committed baseline
in the same change.

``--chaos-check`` switches the gate to a different job: it re-asserts
the fault-tolerance **properties** recorded by ``chaos_serve.py`` in a
``CHAOS_serve.json`` payload — no baseline, no tolerance, because the
properties are absolute (zero wrong bytes, zero hangs, zero unattributed
errors, zero leaked pins, deadline probes fired, quarantine healed).  A
chaos run that violated a property already exits non-zero itself; the
gate re-deriving the verdict from the payload keeps CI honest if the
harness's own exit code is ever swallowed by a pipeline step.

``--disk-check`` does the same for ``bench_disk.py``'s compression
regime in a ``BENCH_disk.json`` payload: the properties are absolute
(cold v4 pages strictly below v3, the page ratio tracking the cataloged
byte ratio within the recorded slack, zero decoded values on the
dictionary-equality predicate vector, decode CPU under the recorded
ceiling whenever the run was long enough to time) — no baseline needed.

Usage::

    gate.py FRESH.json [BASELINE.json]     # default baseline BENCH_xq.json
    gate.py --chaos-check CHAOS_serve.json # property check, no baseline
    gate.py --disk-check BENCH_disk.json   # compression properties
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import sys

#: allowed geomean speedup regression before the gate fails (20%)
GATE_TOLERANCE = 0.20

#: regime -> (payload path, identifying record keys)
REGIMES = {
    "reduction": (("records",), ("query", "n_people")),
    "batched": (("batched_regime", "records"), ("n_people", "n_regions")),
    "indexed": (("indexed_regime", "records"), ("query", "n_people")),
    # bench_serve.py: ``speedup`` is QPS at n_clients over single-client
    # QPS in the same closed-loop (think-time) run — a machine-relative
    # ratio like the others, so it gates across runners too
    "serve": (("serve_regime", "records"), ("n_clients",)),
    # same-member hotspot (every client on one member, result cache off):
    # the regime a per-member evaluation lock would serialize
    "serve_hotspot": (("hotspot_regime", "records"), ("n_clients",)),
    # warm result cache: evaluated service time / hit service time,
    # both measured warm on the same machine in the same run
    "serve_cache": (("cache_regime", "records"), ("query",)),
}


def _records(payload: dict, path: tuple[str, ...]) -> list[dict]:
    node = payload
    for key in path:
        node = node.get(key, {}) if isinstance(node, dict) else {}
    return node if isinstance(node, list) else []


def _keyed(records: list[dict], keys: tuple[str, ...]) -> dict[tuple, dict]:
    return {tuple(r.get(k) for k in keys): r for r in records}


def compare(fresh: dict, baseline: dict) -> tuple[list[str], list[float]]:
    """``(report lines, per-record speedup ratios)`` over the records the
    two payloads share."""
    lines: list[str] = []
    ratios: list[float] = []
    for regime, (path, keys) in REGIMES.items():
        fr = _keyed(_records(fresh, path), keys)
        br = _keyed(_records(baseline, path), keys)
        common = sorted(set(fr) & set(br), key=str)
        for key in common:
            f_speed = fr[key].get("speedup")
            b_speed = br[key].get("speedup")
            if not isinstance(f_speed, (int, float)) or \
                    not isinstance(b_speed, (int, float)) or \
                    f_speed <= 0 or b_speed <= 0 or \
                    math.isinf(f_speed) or math.isinf(b_speed):
                continue
            ratio = f_speed / b_speed
            ratios.append(ratio)
            tag = " ".join(str(k) for k in key)
            lines.append(f"  {regime:10s} {tag:40s} "
                         f"baseline {b_speed:7.2f}x  fresh {f_speed:7.2f}x  "
                         f"ratio {ratio:5.2f}")
    return lines, ratios


def geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def chaos_check(payload: dict) -> list[str]:
    """Violations of the chaos-harness properties recorded in a
    ``CHAOS_serve.json`` payload (empty list = pass)."""
    bad: list[str] = []
    regime = payload.get("chaos_regime")
    if not isinstance(regime, dict):
        return ["payload has no chaos_regime (not a chaos_serve.py run?)"]
    storm = regime.get("storm", {})
    if storm.get("requests", 0) <= 0:
        bad.append("storm served no requests")
    for counter in ("wrong_bytes", "unattributed", "hangs"):
        if storm.get(counter, 1):
            bad.append(f"storm {counter}={storm.get(counter)} (must be 0)")
    if storm.get("deadline_504", 0) < 1:
        bad.append("no deadline probe came back 504")
    cycle = regime.get("corruption_cycle", {})
    if cycle.get("quarantine", {}).get("reinstated_total", 0) < 1:
        bad.append("corruption cycle reinstated no member")
    failures = regime.get("failures")
    if failures:
        bad.extend(f"harness failure: {f}" for f in failures)
    elif failures is None:
        bad.append("payload records no failures list")
    return bad


def disk_check(payload: dict) -> list[str]:
    """Violations of the compression-regime properties recorded in a
    ``BENCH_disk.json`` payload (empty list = pass)."""
    bad: list[str] = []
    regime = payload.get("compression_regime")
    if not isinstance(regime, dict):
        return ["payload has no compression_regime "
                "(not a bench_disk.py run?)"]
    records = regime.get("records")
    if not records:
        return ["compression regime has no records"]
    slack = regime.get("page_slack", 0.25)
    ceiling = regime.get("max_cpu_overhead", 0.50)
    for r in records:
        tag = f"n={r.get('n_people')}"
        if r.get("pages_cold_v4", 1) >= r.get("pages_cold_v3", 0):
            bad.append(f"{tag}: v4 cold pages {r.get('pages_cold_v4')} not "
                       f"below v3's {r.get('pages_cold_v3')}")
        if r.get("page_ratio", 1.0) > r.get("byte_ratio", 0.0) + slack:
            bad.append(f"{tag}: page ratio {r.get('page_ratio')} outside "
                       f"byte ratio {r.get('byte_ratio')} + {slack}")
        if r.get("dict_decodes", 1) != 0:
            bad.append(f"{tag}: dict-eq selection decoded "
                       f"{r.get('dict_decodes')} values (must be 0)")
        if r.get("cpu_timed") and r.get("cpu_overhead", 0.0) > ceiling:
            bad.append(f"{tag}: decode CPU overhead {r.get('cpu_overhead')} "
                       f"over the {ceiling} ceiling")
        if r.get("highcard_pages_v4", 1) > \
                r.get("highcard_pages_v3", 0) * 1.02 + 2:
            bad.append(f"{tag}: high-cardinality v4 file larger than its "
                       f"v3 twin")
    failures = payload.get("profile_failures")
    if failures:
        bad.extend(f"bench failure: {f}" for f in failures)
    elif failures is None:
        bad.append("payload records no failures list")
    return bad


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    ap.add_argument("fresh", help="freshly produced bench_xq payload")
    ap.add_argument("baseline", nargs="?", default=str(
        pathlib.Path(__file__).resolve().parent.parent / "BENCH_xq.json"),
        help="committed baseline payload (default: BENCH_xq.json)")
    ap.add_argument("--tolerance", type=float, default=GATE_TOLERANCE,
                    help="allowed geomean regression fraction "
                         "(default %(default)s)")
    ap.add_argument("--chaos-check", action="store_true",
                    help="treat FRESH as a CHAOS_serve.json payload and "
                         "re-assert its fault-tolerance properties "
                         "(no baseline)")
    ap.add_argument("--disk-check", action="store_true",
                    help="treat FRESH as a BENCH_disk.json payload and "
                         "re-assert its compression-regime properties "
                         "(no baseline)")
    args = ap.parse_args(argv)

    try:
        fresh = json.loads(pathlib.Path(args.fresh).read_text("utf-8"))
    except (OSError, ValueError) as exc:
        print(f"gate: cannot load payloads: {exc}", file=sys.stderr)
        return 2

    if args.disk_check:
        bad = disk_check(fresh)
        if bad:
            for b in bad:
                print(f"gate: disk FAIL — {b}", file=sys.stderr)
            return 1
        recs = fresh["compression_regime"]["records"]
        ratios = ", ".join(f"{r['n_people']}:{r['page_ratio']:.2f}"
                           for r in recs)
        print(f"gate: disk ok — {len(recs)} compression record(s), "
              f"cold page ratios {{{ratios}}}; properties hold")
        return 0

    if args.chaos_check:
        bad = chaos_check(fresh)
        if bad:
            for b in bad:
                print(f"gate: chaos FAIL — {b}", file=sys.stderr)
            return 1
        storm = fresh["chaos_regime"]["storm"]
        print(f"gate: chaos ok — {storm['requests']} requests, "
              f"ok={storm['ok']} degraded={storm['degraded']} "
              f"504={storm['deadline_504']}; properties hold")
        return 0

    try:
        baseline = json.loads(pathlib.Path(args.baseline).read_text("utf-8"))
    except (OSError, ValueError) as exc:
        print(f"gate: cannot load payloads: {exc}", file=sys.stderr)
        return 2

    lines, ratios = compare(fresh, baseline)
    if not ratios:
        print("gate: FAIL — no common records between fresh and baseline "
              "payloads (query set or size sweep changed without updating "
              "the committed BENCH_xq.json)", file=sys.stderr)
        return 1
    print("\n".join(lines))
    geo = geomean(ratios)
    floor = 1.0 - args.tolerance
    print(f"gate: geomean speedup ratio {geo:.3f} over {len(ratios)} "
          f"common records (floor {floor:.2f})")
    if geo < floor:
        print(f"gate: FAIL — geomean speedup regressed by "
              f"{(1 - geo) * 100:.0f}% (> {args.tolerance * 100:.0f}% "
              f"tolerance)", file=sys.stderr)
        return 1
    print("gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
