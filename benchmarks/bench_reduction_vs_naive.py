#!/usr/bin/env python
"""Headline benchmark: vectorized (columnar graph-reduction) XPath
evaluation vs. the naive decompress-evaluate baseline.

For each document size the same queries run two ways:

* ``naive``  — reconstruct the full tree from (skeleton, vectors), then walk
  it node at a time (paper §3.2's baseline; decompression is *part of the
  query cost*, which is exactly what the paper argues against);
* ``vx``     — evaluate directly over the compressed skeleton and numpy
  vector columns; zero decompression (machine-asserted by the engine) and
  at most one scan per touched vector.

Results go to BENCH_reduction.json so later PRs can track the trajectory.
Exits nonzero if the vectorized evaluator is not >= 5x faster at the
largest size (disable with --no-assert; --smoke uses tiny documents).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro import __version__  # noqa: E402
from repro.core.engine import eval_query  # noqa: E402
from repro.core.vdoc import VectorizedDocument  # noqa: E402
from repro.core.xpath.parser import parse_xpath  # noqa: E402
from repro.datasets.synth import xmark_like_xml  # noqa: E402
from repro.util import Timer, best_of, fmt_table, human_count  # noqa: E402

QUERIES = {
    "Q1-select": "/site/people/person[profile/age = '32']/name",
    "Q2-descendant": "//item[location = 'United States']/name",
    "Q3-scan": "/site/people/person/profile/age/text()",
    "Q4-multi-pred": "/site/people/person[profile/age >= 40][profile/education]"
                     "/emailaddress",
}


def run(sizes: list[int], repeat: int, out_path: str, do_assert: bool) -> int:
    records = []
    for n_people in sizes:
        with Timer() as t_gen:
            xml = xmark_like_xml(n_people, seed=42)
        with Timer() as t_vec:
            vdoc = VectorizedDocument.from_xml(xml)
        stats = vdoc.stats()
        print(
            f"\n== n_people={n_people}  nodes={human_count(stats['document_nodes'])}"
            f"  skeleton={stats['skeleton_nodes']} nodes"
            f"  vectors={stats['vectors']}"
            f"  (gen {t_gen.elapsed:.2f}s, vectorize {t_vec.elapsed:.2f}s)"
        )
        for name, query in QUERIES.items():
            path = parse_xpath(query)
            # sanity: identical answers before timing
            vx_res = eval_query(vdoc, path, mode="vx")
            nv_res = eval_query(vdoc, path, mode="naive")
            assert vx_res.count() == nv_res.count(), (name, vx_res.count(),
                                                      nv_res.count())
            t_naive = best_of(lambda: eval_query(vdoc, path, mode="naive"),
                              repeat)
            t_vx = best_of(lambda: eval_query(vdoc, path, mode="vx"), repeat)
            records.append({
                "n_people": n_people,
                "document_nodes": stats["document_nodes"],
                "skeleton_nodes": stats["skeleton_nodes"],
                "vectors": stats["vectors"],
                "query": name,
                "xpath": query,
                "result_count": vx_res.count(),
                "t_naive_s": t_naive,
                "t_vx_s": t_vx,
                "speedup": t_naive / t_vx if t_vx > 0 else float("inf"),
            })

    headers = ["nodes", "query", "results", "naive (ms)", "vx (ms)", "speedup"]
    rows = [
        [human_count(r["document_nodes"]), r["query"], r["result_count"],
         f"{r['t_naive_s'] * 1e3:.2f}", f"{r['t_vx_s'] * 1e3:.3f}",
         f"{r['speedup']:.1f}x"]
        for r in records
    ]
    print("\n" + fmt_table(headers, rows))

    largest = max(sizes)
    at_largest = [r for r in records if r["n_people"] == largest]
    min_speedup = min(r["speedup"] for r in at_largest)
    geo = 1.0
    for r in at_largest:
        geo *= r["speedup"]
    geo **= 1.0 / len(at_largest)
    print(f"\nlargest size: min speedup {min_speedup:.1f}x, "
          f"geomean {geo:.1f}x over {len(at_largest)} queries")

    payload = {
        "bench": "reduction_vs_naive",
        "version": __version__,
        "sizes_n_people": sizes,
        "repeat": repeat,
        "records": records,
        "largest_size": {
            "n_people": largest,
            "min_speedup": min_speedup,
            "geomean_speedup": geo,
        },
    }
    pathlib.Path(out_path).write_text(json.dumps(payload, indent=2) + "\n",
                                      encoding="utf-8")
    print(f"wrote {out_path}")

    if do_assert and min_speedup < 5.0:
        print(f"FAIL: expected >= 5x speedup at the largest size, "
              f"got {min_speedup:.1f}x", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    ap.add_argument("--sizes", default=None,
                    help="comma-separated n_people sizes (default 2000,8000,32000)")
    ap.add_argument("--smoke", action="store_true",
                    help="tiny documents for CI (no speedup assertion)")
    ap.add_argument("--repeat", type=int, default=3)
    ap.add_argument("--out", default=str(
        pathlib.Path(__file__).resolve().parent.parent / "BENCH_reduction.json"))
    ap.add_argument("--no-assert", action="store_true")
    args = ap.parse_args(argv)

    if args.sizes:
        sizes = [int(s) for s in args.sizes.split(",")]
    elif args.smoke:
        sizes = [50, 200, 800]
    else:
        sizes = [2000, 8000, 32000]
    do_assert = not (args.no_assert or args.smoke)
    return run(sizes, args.repeat, args.out, do_assert)


if __name__ == "__main__":
    sys.exit(main())
