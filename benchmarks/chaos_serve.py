#!/usr/bin/env python
"""Live-server chaos harness: fault-injected serving must stay correct.

A temporary repository (XMark-like members) is served **in-process** by
:class:`repro.serve.server.QueryServer` with a deterministic
:class:`repro.storage.faults.FaultInjector` driving the shared buffer
pool's physical reads — transient ``OSError``\\ s (absorbed by the
pool's bounded retry), flipped bits and torn reads (caught by the page
CRC, quarantining the member) — while 16 concurrent clients hammer the
query endpoints over real HTTP.  The harness asserts the service's
fault-tolerance **property**, not a speed:

* every response is either **byte-exact** against the clean in-process
  answer, or **degraded-and-flagged** (200 + ``X-Quarantined``), or a
  clean **attributed failure** (400/503/504/500 with an ``error:`` body)
  — never wrong bytes, never an unattributed error, never a hang
  (client sockets time out; worker threads that fail to finish inside
  the watchdog budget are counted as hangs and fail the run);
* per-request deadlines fire: after recovery, probes carrying a tiny
  ``X-Deadline-Ms`` against the healthy server come back 504 (storm
  probes are only *counted* — a fully-quarantined instant answer can
  legitimately beat even a 200µs budget);
* after the injector is paused, the quarantine **drains**: the
  supervisor's re-verify finds the (never actually damaged) files
  clean, reinstates every member, and responses are byte-exact again;
* a **real** on-disk corruption quarantines its member deterministically
  on a fresh server (500 naming the member, then degraded 200s,
  ``degraded`` on ``/healthz`` and ``GET /repo``), and repairing the
  file on disk heals the service *without a restart* — the supervisor
  reinstates the member and answers are byte-exact once more;
* the drained servers exit with **zero leaked pins and zero pinned
  pages**; the pool's ``read_retries`` counter is reported (the retry
  path itself is asserted deterministically by the unit tests).

Results (counters, not timings) go to ``CHAOS_serve.json``;
``gate.py --chaos-check`` re-asserts the properties in CI.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import pathlib
import socket
import sys
import tempfile
import threading
import time

SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro import __version__  # noqa: E402
from repro.datasets.synth import xmark_like_xml  # noqa: E402
from repro.repo import Repository  # noqa: E402
from repro.serve.server import QueryServer  # noqa: E402
from repro.storage import faults  # noqa: E402
from repro.storage.faults import FaultInjector  # noqa: E402

#: the served workload (endpoint, query), cycled by every client
WORKLOAD = [
    ("/xq",
     "for $p in /site/people/person where $p/profile/age >= '60' "
     "return <r>{$p/name}</r>"),
    ("/xq",
     "for $c in /site/closed_auctions/closed_auction, "
     "$p in /site/people/person where $c/buyer = $p/@id "
     "and $p/profile/age > '40' return <pair>{$p/name}{$c/price}</pair>"),
    ("/xpath", "/site/people/person/name"),
    ("/xpath", "//item/location"),
]

N_CLIENTS = 16
#: every Nth storm request carries a ~0.2ms X-Deadline-Ms: a guaranteed
#: 504 probe (no query evaluates in 200µs)
DEADLINE_EVERY = 8
#: overall worker-thread watchdog (seconds); stragglers count as hangs
WATCHDOG_S = 120.0


def build_repo(workdir: str, member_sizes: list[int],
               page_size: int = 1024) -> str:
    """A repository of XMark-like members with small pages (more pages =
    more physical reads = more fault opportunities)."""
    repo_dir = os.path.join(workdir, "repo")
    repo = Repository.init(repo_dir, "chaos")
    for i, n_people in enumerate(member_sizes):
        xml_path = os.path.join(workdir, f"m{i}.xml")
        pathlib.Path(xml_path).write_text(
            xmark_like_xml(n_people, seed=700 + i), encoding="utf-8")
        repo.add(xml_path, name=f"m{i}", page_size=page_size)
    repo.close()
    return repo_dir


def expected_bodies(repo_dir: str) -> list[bytes]:
    """Clean in-process answers — the byte-exactness reference."""
    out = []
    with Repository.open(repo_dir) as repo:
        for endpoint, query in WORKLOAD:
            if endpoint == "/xq":
                out.append((repo.xq(query).to_xml() + "\n").encode())
            else:
                lines = [f"{name}: count {res.count()}"
                         for name, res in repo.xpath(query)]
                out.append(("\n".join(lines) + "\n").encode())
    return out


class Client:
    """One keep-alive HTTP connection; returns full (status, headers,
    body) triples so the harness can attribute every outcome."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.conn = http.client.HTTPConnection(host, port, timeout=timeout)
        self.conn.connect()
        self.conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def post(self, endpoint: str, body: str,
             headers: dict | None = None) -> tuple[int, dict, bytes]:
        self.conn.request("POST", endpoint, body=body.encode("utf-8"),
                          headers=headers or {})
        resp = self.conn.getresponse()
        return resp.status, dict(resp.getheaders()), resp.read()

    def get(self, path: str) -> tuple[int, dict, bytes]:
        self.conn.request("GET", path)
        resp = self.conn.getresponse()
        return resp.status, dict(resp.getheaders()), resp.read()

    def close(self) -> None:
        self.conn.close()


def classify(counts: dict, k: int, status: int, headers: dict,
             body: bytes, expected: list[bytes],
             failures: list[str]) -> None:
    """Bucket one response; anything outside the allowed shapes is a
    property violation recorded in ``failures``."""
    if status == 200:
        if headers.get("X-Quarantined"):
            counts["degraded"] += 1
        elif body == expected[k]:
            counts["ok"] += 1
        else:
            counts["wrong_bytes"] += 1
            failures.append(
                f"200 body diverged on workload[{k}] "
                f"(got {len(body)} bytes)")
        return
    if not body.startswith(b"error:"):
        counts["unattributed"] += 1
        failures.append(f"{status} without an error body: {body[:80]!r}")
        return
    if status == 504:
        counts["deadline_504"] += 1
    elif status == 503:
        counts["overload_503"] += 1
    elif status == 500:
        counts["storage_500"] += 1
    elif 400 <= status < 500:
        counts["client_4xx"] += 1
    else:
        counts["unattributed"] += 1
        failures.append(f"unexpected status {status}: {body[:80]!r}")


def storm(srv: QueryServer, expected: list[bytes], n_requests: int,
          counts: dict, failures: list[str]) -> None:
    """16 concurrent clients under active fault injection."""
    host, port = srv.address

    def worker(idx: int) -> None:
        cli = Client(host, port)
        try:
            for r in range(n_requests):
                k = (idx + r) % len(WORKLOAD)
                endpoint, query = WORKLOAD[k]
                hdrs = {}
                if (idx + r) % DEADLINE_EVERY == 0:
                    hdrs["X-Deadline-Ms"] = "0.2"
                status, headers, body = cli.post(endpoint, query, hdrs)
                with lock:
                    counts["requests"] += 1
                    if hdrs and status == 504:
                        counts["deadline_504"] += 1
                    else:
                        classify(counts, k, status, headers, body,
                                 expected, failures)
        except Exception as exc:  # noqa: BLE001 - a client death is a finding
            with lock:
                counts["unattributed"] += 1
                failures.append(f"client {idx} died: {exc!r}")
        finally:
            cli.close()

    lock = threading.Lock()
    threads = [threading.Thread(target=worker, args=(i,), daemon=True)
               for i in range(N_CLIENTS)]
    deadline = time.monotonic() + WATCHDOG_S
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=max(0.0, deadline - time.monotonic()))
        if t.is_alive():
            counts["hangs"] += 1
            failures.append("worker thread hung past the watchdog")


def wait_until(pred, timeout: float, poll: float = 0.05) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if pred():
            return True
        time.sleep(poll)
    return bool(pred())


def verify_exact(srv: QueryServer, expected: list[bytes]) -> list[str]:
    """Sequential pass: every workload answer byte-exact, undegraded."""
    host, port = srv.address
    cli = Client(host, port)
    problems = []
    try:
        for k, (endpoint, query) in enumerate(WORKLOAD):
            status, headers, body = cli.post(endpoint, query)
            if status != 200 or headers.get("X-Quarantined") \
                    or body != expected[k]:
                problems.append(
                    f"workload[{k}] not byte-exact after recovery "
                    f"(status {status}, quarantined "
                    f"{headers.get('X-Quarantined')!r})")
    finally:
        cli.close()
    return problems


def corrupt_file(path: str, page_size: int = 1024) -> bytes:
    """Flip one byte in the middle of every page past the header pages;
    returns the original bytes for repair."""
    original = pathlib.Path(path).read_bytes()
    buf = bytearray(original)
    for off in range(4 * page_size + page_size // 2, len(buf), page_size):
        buf[off] ^= 0x40
    pathlib.Path(path).write_bytes(bytes(buf))
    return original


def corruption_cycle(repo_dir: str, expected: list[bytes], pool: int,
                     failures: list[str]) -> dict:
    """Deterministic quarantine → repair → reinstate on a fresh server
    (fresh pool + lazy opens, so the on-disk corruption is actually
    read).  No injector involved — this is real damage."""
    member_file = os.path.join(repo_dir, "m0.vdoc")
    original = corrupt_file(member_file)
    srv = QueryServer(repo_dir, port=0, pool_pages=pool,
                      workers=4, result_cache_mb=0.0)
    srv.repo.quarantine.base_delay = 0.1
    srv.repo.quarantine.max_delay = 1.0
    srv.start()
    out = {"quarantined_500": 0, "degraded_200": 0}
    try:
        host, port = srv.address
        cli = Client(host, port)
        try:
            # first touch: the corrupt member fails the query and is
            # quarantined (500 naming it) — unless open-time validation
            # quarantined it already, in which case it is skipped (200)
            status, headers, body = cli.post(*WORKLOAD[0])
            if status == 500 and b"m0" in body:
                out["quarantined_500"] += 1
            elif not (status == 200 and "m0" in
                      headers.get("X-Quarantined", "")):
                failures.append(
                    f"corrupt member neither failed nor was skipped: "
                    f"{status} {body[:80]!r}")
            if not wait_until(
                    lambda: srv.repo.quarantine.is_quarantined("m0"), 5.0):
                failures.append("corrupt member was never quarantined")
            # degraded serving: flagged 200s, degraded health + manifest
            status, headers, body = cli.post(*WORKLOAD[0])
            if status == 200 and "m0" in headers.get("X-Quarantined", ""):
                out["degraded_200"] += 1
            else:
                failures.append(
                    f"expected degraded 200 while quarantined, got "
                    f"{status} (X-Quarantined "
                    f"{headers.get('X-Quarantined')!r})")
            _, _, health = cli.get("/healthz")
            if b"degraded" not in health:
                failures.append(f"/healthz not degraded: {health!r}")
            _, _, repo_body = cli.get("/repo")
            if not json.loads(repo_body).get("degraded"):
                failures.append("GET /repo does not flag degraded")

            # repair on disk; the supervisor reinstates without restart
            pathlib.Path(member_file).write_bytes(original)
            if not wait_until(
                    lambda: not srv.repo.quarantine.active(), 15.0):
                failures.append(
                    "repaired member was never reinstated "
                    f"(snapshot {srv.repo.quarantine.snapshot()})")
            _, _, health = cli.get("/healthz")
            if health != b"ok\n":
                failures.append(
                    f"/healthz not ok after reinstatement: {health!r}")
        finally:
            cli.close()
        failures.extend(verify_exact(srv, expected))
    finally:
        final = srv.shutdown()
    if final["pin_leaks"] or final["pool"]["pinned"]:
        failures.append("corruption-cycle server left pins behind")
    out["quarantine"] = final["quarantine"]
    out["final_stats"] = final
    if final["quarantine"]["reinstated_total"] < 1:
        failures.append("corruption cycle reinstated no member")
    return out


def run(member_sizes: list[int], pool: int, n_requests: int, rate: float,
        seed: int, out_path: str) -> int:
    counts = {"requests": 0, "ok": 0, "degraded": 0, "wrong_bytes": 0,
              "deadline_504": 0, "overload_503": 0, "storage_500": 0,
              "client_4xx": 0, "unattributed": 0, "hangs": 0}
    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="chaos-serve-") as workdir:
        print(f"building repository (members: {member_sizes} people)")
        repo_dir = build_repo(workdir, member_sizes)
        expected = expected_bodies(repo_dir)

        injector = FaultInjector(seed=seed, rate=rate)
        print(f"storm: {N_CLIENTS} clients x {n_requests} requests, "
              f"injecting at {rate:.0%} of reads (seed {seed})")
        with faults.inject(injector):
            srv = QueryServer(repo_dir, port=0, pool_pages=pool,
                              workers=N_CLIENTS, result_cache_mb=0.0)
            srv.repo.quarantine.base_delay = 0.1
            srv.repo.quarantine.max_delay = 1.0
            srv.start()
            try:
                storm(srv, expected, n_requests, counts, failures)
                print("storm outcomes: " + json.dumps(counts))
                print(f"injector fired: ops={injector.ops} "
                      f"{dict(injector.by_kind)}")

                # recovery: stop injecting; the supervisor's probes now
                # find clean files and must drain the quarantine
                injector.pause()
                if not wait_until(
                        lambda: not srv.repo.quarantine.active(), 20.0):
                    failures.append(
                        "quarantine did not drain after faults stopped: "
                        f"{srv.repo.quarantine.snapshot()}")
                failures.extend(verify_exact(srv, expected))

                # deterministic deadline probes against the recovered
                # server: the join queries cannot finish in 200µs, so
                # each must come back 504 (storm probes can be answered
                # in µs when every member is skipped, so they only
                # *count* 504s — this phase asserts them)
                host, port = srv.address
                cli = Client(host, port)
                try:
                    for endpoint, query in WORKLOAD[:2]:
                        status, _, body = cli.post(
                            endpoint, query, {"X-Deadline-Ms": "0.2"})
                        if status == 504 and body.startswith(
                                b"error: deadline exceeded"):
                            counts["deadline_504"] += 1
                        else:
                            failures.append(
                                f"deadline probe not 504: {status} "
                                f"{body[:60]!r}")
                finally:
                    cli.close()
            finally:
                final = srv.shutdown()
        storm_quarantine = final["quarantine"]
        if final["pin_leaks"] or final["pool"]["pinned"]:
            failures.append("storm server left pins behind")
        if counts["wrong_bytes"] or counts["unattributed"] \
                or counts["hangs"]:
            failures.append("storm violated the response property")
        # read_retries is reported, not asserted: the hash schedule may
        # land an OSError on an open-time header read (no retry loop) or
        # on a supervisor probe instead of a pool fault — the retry path
        # itself is pinned down deterministically in the unit tests.
        print(f"storm drained: quarantine {storm_quarantine} "
              f"read_retries={final['pool']['read_retries']} "
              f"timeouts={final['timeouts']}")

        print("corruption cycle: damage m0 on disk, serve degraded, "
              "repair, await reinstatement")
        cycle = corruption_cycle(repo_dir, expected, pool, failures)
        print(f"corruption cycle: {json.dumps(cycle['quarantine'])}")

    payload = {
        "bench": "serve_chaos_harness",
        "version": __version__,
        "member_sizes": member_sizes,
        "pool_pages": pool,
        "rate": rate,
        "seed": seed,
        "chaos_regime": {
            "storm": counts,
            "injected": {"ops": injector.ops,
                         "fired": dict(injector.by_kind)},
            "storm_quarantine": storm_quarantine,
            "storm_read_retries": final["pool"]["read_retries"],
            "storm_timeouts": final["timeouts"],
            "corruption_cycle": {
                "quarantined_500": cycle["quarantined_500"],
                "degraded_200": cycle["degraded_200"],
                "quarantine": cycle["quarantine"],
            },
            "failures": failures,
        },
    }
    pathlib.Path(out_path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out_path}")

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("chaos: ok — every response byte-exact, degraded-and-flagged, "
          "or cleanly attributed; quarantine drained; repair reinstated")
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    ap.add_argument("--smoke", action="store_true",
                    help="smaller members and fewer requests for CI")
    ap.add_argument("--pool", type=int, default=96,
                    help="server buffer pool pages (small on purpose: "
                         "eviction keeps physical reads — and therefore "
                         "fault opportunities — coming; default "
                         "%(default)s)")
    ap.add_argument("--rate", type=float, default=0.05,
                    help="per-read fault probability (default "
                         "%(default)s)")
    ap.add_argument("--seed", type=int, default=7)
    ap.add_argument("--out", default=str(
        pathlib.Path(__file__).resolve().parent.parent /
        "CHAOS_serve.json"))
    args = ap.parse_args(argv)

    member_sizes = [20, 20, 30] if args.smoke else [40, 40, 60]
    n_requests = 25 if args.smoke else 60
    return run(member_sizes, args.pool, n_requests, args.rate, args.seed,
               args.out)


if __name__ == "__main__":
    sys.exit(main())
