#!/usr/bin/env python
"""Serve benchmark: sustained concurrent throughput of ``repro-xq serve``.

A temporary repository (XMark-like members, value indexes built at save
time) is served by a real ``repro-xq serve`` subprocess and measured two
ways:

**Identity.**  Every workload query is answered once by a ``--workers 1``
server, once by a ``--workers 16`` server under 16 truly concurrent
clients, and once in-process through :class:`repro.repo.Repository` (the
code path behind ``repro-xq repo query``).  All three must be
byte-identical — concurrency must never change an answer.

**Throughput.**  Closed-loop clients with *think time*: each of N
clients repeatedly sends a query, waits for the answer, then sleeps
``T`` seconds, where ``T = THINK_FACTOR x`` the measured warm sequential
service time.  Per-client demand is therefore ~``1/(T+s)`` QPS and the
aggregate scales with N while total utilisation stays below one core —
so the reported ``speedup`` (``QPS_N / QPS_1``) measures what a server
must provide to concurrent users: *latency overlap* (admission, pool
sharing, per-request isolation all working under concurrency), not CPU
parallelism.  The think factor makes the ratio machine-independent — T
is derived from the same machine's own service time, so a uniformly
slower machine scales both sides and cancels — which is what lets
``gate.py`` compare these speedups across CI runners.  A zero-think
16-client burst is also reported (``capacity_qps``) as the raw
saturation throughput, informational only.

**Same-member hotspot.**  A second, single-member repository is served
with the result cache disabled and hammered by closed-loop clients that
all target that one member.  Before per-request evaluation contexts,
a per-member evaluation lock serialized exactly this regime; the
reported ``speedup`` (16-client QPS over 1-client QPS, same think-time
methodology) is the floor the tentpole must hold: >= MIN_HOTSPOT_16.

**Warm cache.**  The same workload is timed sequentially against two
warm servers — one with ``--result-cache 0`` (every request evaluates)
and one with the default cache (every request after the first is a
hit).  Per-query ``speedup`` is evaluated/hit service time on the same
machine, so it gates across runners like the other ratios; the overall
ratio must be >= MIN_CACHE_SPEEDUP on a full run.

The throughput and hotspot phases run with ``--result-cache 0`` so they
keep measuring concurrent *evaluation*; the 16-worker identity server
keeps the cache on, so cached responses are byte-checked against the
in-process reference too.

Asserted on a full run (not ``--smoke``): byte-identity everywhere,
``speedup`` at 16 clients >= MIN_SPEEDUP_16 (4x), hotspot speedup >=
MIN_HOTSPOT_16 (3x), warm-cache speedup >= MIN_CACHE_SPEEDUP (5x), zero
pin leaks and zero pinned pages in the server's own /stats after every
phase.  Results go to BENCH_serve.json.
"""

from __future__ import annotations

import argparse
import http.client
import json
import math
import os
import pathlib
import re
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro import __version__  # noqa: E402
from repro.core.vdoc import VectorizedDocument  # noqa: E402
from repro.datasets.synth import xmark_like_xml  # noqa: E402
from repro.repo import Repository  # noqa: E402
from repro.storage.vdocfile import save_vdoc  # noqa: E402

#: think time per closed-loop client, as a multiple of the measured warm
#: sequential service time — keeps 16-client demand well under one core
THINK_FACTOR = 24.0
#: required QPS scaling at 16 clients vs 1 (acceptance floor)
MIN_SPEEDUP_16 = 4.0
#: required QPS scaling at 16 clients all hitting ONE member, result
#: cache off — the regime the old per-member evaluation lock serialized
MIN_HOTSPOT_16 = 3.0
#: required warm service-time ratio: evaluated (cache off) / hit (cache on)
MIN_CACHE_SPEEDUP = 5.0
CLIENT_COUNTS = (1, 4, 16)

#: the served workload: (endpoint, query) pairs cycled by every client
WORKLOAD = [
    ("/xq",
     "for $p in /site/people/person where $p/profile/age >= '60' "
     "return <r>{$p/name}</r>"),
    ("/xq",
     "for $p in /site/people/person where $p/name = 'name 7' "
     "and $p/emailaddress = 'mailto:person7@example.com' "
     "return <r>{$p/phone}</r>"),
    ("/xq",
     "for $c in /site/closed_auctions/closed_auction, "
     "$p in /site/people/person where $c/buyer = $p/@id "
     "and $p/profile/age > '40' return <pair>{$p/name}{$c/price}</pair>"),
    ("/xpath", "/site/people/person/name"),
    ("/xpath", "//item/location"),
]


# -- repository + server plumbing -----------------------------------------

def build_repo(workdir: str, member_sizes: list[int]) -> str:
    """A repository of indexed XMark-like members; returns its path."""
    repo_dir = os.path.join(workdir, "repo")
    repo = Repository.init(repo_dir, "bench")
    for i, n_people in enumerate(member_sizes):
        vdoc = VectorizedDocument.from_xml(
            xmark_like_xml(n_people, seed=100 + i))
        path = os.path.join(workdir, f"m{i}.vdoc")
        save_vdoc(vdoc, path, index_paths="all")
        repo.add(path, name=f"m{i}")
    repo.close()
    return repo_dir


class Server:
    """A ``repro-xq serve`` subprocess on an ephemeral port."""

    def __init__(self, repo_dir: str, workers: int, pool: int,
                 result_cache_mb: float | None = None):
        cmd = [sys.executable, "-m", "repro.cli", "serve", repo_dir,
               "--port", "0", "--workers", str(workers), "--pool", str(pool)]
        if result_cache_mb is not None:
            cmd += ["--result-cache", str(result_cache_mb)]
        self.proc = subprocess.Popen(
            cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env={**os.environ, "PYTHONPATH": SRC}, text=True)
        line = self.proc.stdout.readline()
        m = re.search(r"http://([\d.]+):(\d+)", line)
        if not m:
            self.proc.kill()
            raise RuntimeError(f"no address in startup line: {line!r}")
        self.host, self.port = m.group(1), int(m.group(2))

    def stats(self) -> dict:
        conn = http.client.HTTPConnection(self.host, self.port, timeout=30)
        try:
            conn.request("GET", "/stats")
            return json.loads(conn.getresponse().read())
        finally:
            conn.close()

    def stop(self) -> dict:
        """SIGTERM, wait, parse the final-stats stderr line."""
        self.proc.send_signal(signal.SIGTERM)
        _, err = self.proc.communicate(timeout=60)
        if self.proc.returncode != 0:
            raise RuntimeError(
                f"server exited {self.proc.returncode}:\n{err}")
        m = re.search(r"serve: final stats (.*)", err)
        return json.loads(m.group(1)) if m else {}


class Client:
    """One keep-alive HTTP connection issuing workload queries."""

    def __init__(self, host: str, port: int):
        self.conn = http.client.HTTPConnection(host, port, timeout=60)
        # http.client writes headers and body in separate segments; with
        # Nagle on, back-to-back requests stall ~40ms on the peer's
        # delayed ACK — which would swamp every service-time measurement
        self.conn.connect()
        self.conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def query(self, endpoint: str, body: str) -> bytes:
        self.conn.request("POST", endpoint, body=body.encode("utf-8"))
        resp = self.conn.getresponse()
        data = resp.read()
        if resp.status != 200:
            raise RuntimeError(f"{endpoint} -> {resp.status}: "
                               f"{data[:200]!r}")
        return data

    def close(self) -> None:
        self.conn.close()


# -- phases ----------------------------------------------------------------

def expected_bodies(repo_dir: str) -> list[bytes]:
    """The workload's answers through the Repository API — the same code
    path (and the same bytes) as ``repro-xq repo query`` stdout."""
    out = []
    with Repository.open(repo_dir) as repo:
        for endpoint, query in WORKLOAD:
            if endpoint == "/xq":
                out.append((repo.xq(query).to_xml() + "\n").encode())
            else:
                lines = [f"{name}: count {res.count()}"
                         for name, res in repo.xpath(query)]
                out.append(("\n".join(lines) + "\n").encode())
    return out


def check_identity(repo_dir: str, expected: list[bytes], pool: int,
                   n_clients: int = 16) -> None:
    """1-worker sequential (result cache off) and 16-worker concurrent
    (result cache on: repeat queries answer from it) servers must both
    reproduce the in-process answers byte for byte."""
    srv = Server(repo_dir, workers=1, pool=pool, result_cache_mb=0)
    try:
        cli = Client(srv.host, srv.port)
        for (endpoint, query), want in zip(WORKLOAD, expected):
            got = cli.query(endpoint, query)
            assert got == want, f"1-worker answer diverges on {query!r}"
        cli.close()
    finally:
        final = srv.stop()
    assert final["pin_leaks"] == 0 and final["pool"]["pinned"] == 0

    srv = Server(repo_dir, workers=16, pool=pool)
    failures: list[str] = []

    def worker(idx: int) -> None:
        cli = Client(srv.host, srv.port)
        try:
            for off in range(len(WORKLOAD)):
                k = (idx + off) % len(WORKLOAD)
                endpoint, query = WORKLOAD[k]
                if cli.query(endpoint, query) != expected[k]:
                    failures.append(f"client {idx}: {query!r}")
        except Exception as exc:  # noqa: BLE001 - reported below
            failures.append(f"client {idx}: {exc}")
        finally:
            cli.close()

    try:
        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n_clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    finally:
        final = srv.stop()
    assert not failures, f"concurrent answers diverged: {failures[:3]}"
    assert final["pin_leaks"] == 0 and final["pool"]["pinned"] == 0
    print(f"identity: {len(WORKLOAD)} queries byte-identical "
          f"(in-process == 1 worker == 16 workers x {n_clients} clients)")


def closed_loop(srv: Server, n_clients: int, n_requests: int,
                think_s: float) -> dict:
    """Run the closed loop; returns QPS + client-side latency quantiles +
    server-side pool deltas."""
    before = srv.stats()
    latencies: list[list[float]] = [[] for _ in range(n_clients)]
    errors: list[str] = []

    def worker(idx: int) -> None:
        cli = Client(srv.host, srv.port)
        try:
            for r in range(n_requests):
                endpoint, query = WORKLOAD[(idx + r) % len(WORKLOAD)]
                t0 = time.perf_counter()
                cli.query(endpoint, query)
                latencies[idx].append(time.perf_counter() - t0)
                if think_s:
                    time.sleep(think_s)
        except Exception as exc:  # noqa: BLE001 - reported below
            errors.append(f"client {idx}: {exc}")
        finally:
            cli.close()

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(n_clients)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    if errors:
        raise RuntimeError(f"closed loop failed: {errors[:3]}")
    after = srv.stats()

    flat = sorted(x for per in latencies for x in per)
    d_hits = after["pool"]["hits"] - before["pool"]["hits"]
    d_miss = after["pool"]["misses"] - before["pool"]["misses"]
    return {
        "n_clients": n_clients,
        "requests": n_clients * n_requests,
        "elapsed_s": elapsed,
        "qps": n_clients * n_requests / elapsed,
        "p50_ms": flat[len(flat) // 2] * 1e3,
        "p99_ms": flat[min(len(flat) - 1,
                           math.ceil(len(flat) * 0.99) - 1)] * 1e3,
        "hit_rate": d_hits / (d_hits + d_miss) if d_hits + d_miss else 1.0,
        "pin_leaks": after["pin_leaks"],
        "pinned": after["pool"]["pinned"],
    }


def warm_service_times(srv: Server, rounds: int = 3) -> dict[str, float]:
    """Warm the server (pool + result cache, when enabled), then the mean
    sequential service time of each workload query, in seconds."""
    cli = Client(srv.host, srv.port)
    try:
        for endpoint, query in WORKLOAD:
            cli.query(endpoint, query)
        per_query: dict[str, float] = {}
        for endpoint, query in WORKLOAD:
            t0 = time.perf_counter()
            for _ in range(rounds):
                cli.query(endpoint, query)
            per_query[query] = (time.perf_counter() - t0) / rounds
    finally:
        cli.close()
    return per_query


def measure_hotspot(workdir: str, n_people: int, pool: int,
                    target_run_s: float, do_assert: bool) -> dict:
    """Same-member hotspot: every client hammers the only member of a
    one-member repository, result cache off — the regime a per-member
    evaluation lock would serialize."""
    hot_dir = os.path.join(workdir, "hot")
    os.makedirs(hot_dir)
    repo_dir = build_repo(hot_dir, [n_people])
    srv = Server(repo_dir, workers=16, pool=pool, result_cache_mb=0)
    try:
        service_s = sum(warm_service_times(srv).values()) / len(WORKLOAD)
        think_s = max(0.02, THINK_FACTOR * service_s)
        n_requests = max(8, min(120, math.ceil(
            target_run_s / (think_s + service_s))))
        print(f"hotspot ({n_people}-people member): warm service "
              f"{service_s * 1e3:.1f}ms -> think {think_s * 1e3:.0f}ms, "
              f"{n_requests} requests/client")
        runs = [closed_loop(srv, n, n_requests, think_s) for n in (1, 16)]
        for r in runs:
            print(f"  {r['n_clients']:2d} client(s) on one member: "
                  f"{r['qps']:7.2f} qps  p99 {r['p99_ms']:6.1f}ms")
            if do_assert:
                assert r["pin_leaks"] == 0, "hotspot run leaked pins"
                assert r["pinned"] == 0, "hotspot run left pages pinned"
    finally:
        final = srv.stop()
    assert final["pin_leaks"] == 0 and final["pool"]["pinned"] == 0
    qps_1 = runs[0]["qps"]
    records = [{**runs[1], "qps_1": qps_1,
                "speedup": runs[1]["qps"] / qps_1, "think_s": think_s}]
    print(f"  hotspot scaling: {records[0]['speedup']:5.2f}x over 1 client "
          f"(floor {MIN_HOTSPOT_16:.0f}x)")
    return {
        "member_people": n_people,
        "records": records,
        "runs": runs,
        "threshold": MIN_HOTSPOT_16,
    }


def measure_cache(repo_dir: str, pool: int, rounds: int) -> dict:
    """Warm-cache regime: sequential service time of the same warm
    workload with the result cache off (every request evaluates) vs on
    (every request hits); per-query speedup = evaluated/hit."""
    srv = Server(repo_dir, workers=4, pool=pool, result_cache_mb=0)
    try:
        evaluated = warm_service_times(srv, rounds)
    finally:
        final = srv.stop()
    assert final["pin_leaks"] == 0 and final["pool"]["pinned"] == 0

    srv = Server(repo_dir, workers=4, pool=pool)   # default cache on
    try:
        hit = warm_service_times(srv, rounds)
        cache_stats = srv.stats()["result_cache"]
    finally:
        final = srv.stop()
    assert final["pin_leaks"] == 0 and final["pool"]["pinned"] == 0
    assert cache_stats["hits"] > 0, "warm passes never hit the cache"

    records = []
    for _, query in WORKLOAD:
        records.append({
            "query": query,
            "evaluated_ms": evaluated[query] * 1e3,
            "hit_ms": hit[query] * 1e3,
            "speedup": evaluated[query] / hit[query],
        })
        print(f"  cache: {evaluated[query] * 1e3:7.2f}ms -> "
              f"{hit[query] * 1e3:6.2f}ms  "
              f"({records[-1]['speedup']:5.1f}x)  {query[:52]}")
    overall = (sum(evaluated.values()) / sum(hit.values()))
    print(f"  warm-cache speedup overall: {overall:5.2f}x "
          f"(floor {MIN_CACHE_SPEEDUP:.0f}x)")
    return {
        "records": records,
        "overall_speedup": overall,
        "cache_stats": cache_stats,
        "threshold": MIN_CACHE_SPEEDUP,
    }


def run(member_sizes: list[int], pool: int, target_run_s: float,
        out_path: str, do_assert: bool) -> int:
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as workdir:
        print(f"building repository (members: {member_sizes} people, "
              f"indexed)")
        repo_dir = build_repo(workdir, member_sizes)
        expected = expected_bodies(repo_dir)
        check_identity(repo_dir, expected, pool)

        # throughput is measured with the result cache OFF: this regime
        # gates concurrent evaluation, not the cache's hit path
        srv = Server(repo_dir, workers=16, pool=pool, result_cache_mb=0)
        try:
            # warm the pool, then measure the sequential service time the
            # think time is derived from
            cli = Client(srv.host, srv.port)
            for endpoint, query in WORKLOAD:
                cli.query(endpoint, query)
            t0 = time.perf_counter()
            rounds = 3
            for r in range(rounds):
                for endpoint, query in WORKLOAD:
                    cli.query(endpoint, query)
            service_s = (time.perf_counter() - t0) / (rounds * len(WORKLOAD))
            cli.close()
            think_s = max(0.02, THINK_FACTOR * service_s)
            n_requests = max(8, min(120, math.ceil(
                target_run_s / (think_s + service_s))))
            print(f"warm service time {service_s * 1e3:.1f}ms -> think "
                  f"{think_s * 1e3:.0f}ms, {n_requests} requests/client")

            runs = []
            for n in CLIENT_COUNTS:
                r = closed_loop(srv, n, n_requests, think_s)
                runs.append(r)
                print(f"  {n:2d} client(s): {r['qps']:7.2f} qps  "
                      f"p50 {r['p50_ms']:6.1f}ms  p99 {r['p99_ms']:6.1f}ms  "
                      f"hit-rate {r['hit_rate']:.3f}")
                if do_assert:
                    assert r["pin_leaks"] == 0, "server reported pin leaks"
                    assert r["pinned"] == 0, "pages left pinned after run"

            capacity = closed_loop(srv, 16, n_requests, think_s=0.0)
            print(f"  capacity (16 clients, zero think): "
                  f"{capacity['qps']:7.2f} qps  "
                  f"p99 {capacity['p99_ms']:6.1f}ms")
        finally:
            final = srv.stop()
        assert final["pin_leaks"] == 0 and final["pool"]["pinned"] == 0, \
            "server final stats report leaked/pinned pages"

        qps_1 = runs[0]["qps"]
        records = []
        for r in runs[1:]:
            records.append({**r, "qps_1": qps_1,
                            "speedup": r["qps"] / qps_1,
                            "think_s": think_s})
            print(f"  {r['n_clients']:2d}-client scaling: "
                  f"{r['qps'] / qps_1:5.2f}x over 1 client")

        hotspot = measure_hotspot(workdir, member_sizes[-1], pool,
                                  target_run_s, do_assert)
        cache = measure_cache(repo_dir, pool, rounds=5)

        payload = {
            "bench": "serve_concurrent_throughput",
            "version": __version__,
            "member_sizes": member_sizes,
            "pool_pages": pool,
            "workload": [q for _, q in WORKLOAD],
            "think_factor": THINK_FACTOR,
            "serve_regime": {
                "records": records,
                "runs": runs,
                "capacity_qps_16": capacity["qps"],
                "threshold": MIN_SPEEDUP_16,
            },
            "hotspot_regime": hotspot,
            "cache_regime": cache,
            "final_stats": final,
        }
        pathlib.Path(out_path).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {out_path}")

        if do_assert:
            failures = []
            speedup_16 = records[-1]["speedup"]
            if speedup_16 < MIN_SPEEDUP_16:
                failures.append(
                    f"16-client throughput {speedup_16:.2f}x < "
                    f"{MIN_SPEEDUP_16:.0f}x the single-client QPS")
            hot_16 = hotspot["records"][0]["speedup"]
            if hot_16 < MIN_HOTSPOT_16:
                failures.append(
                    f"same-member hotspot {hot_16:.2f}x < "
                    f"{MIN_HOTSPOT_16:.0f}x the single-client QPS")
            if cache["overall_speedup"] < MIN_CACHE_SPEEDUP:
                failures.append(
                    f"warm-cache hit path {cache['overall_speedup']:.2f}x "
                    f"< {MIN_CACHE_SPEEDUP:.0f}x the evaluated path")
            if failures:
                for f in failures:
                    print(f"FAIL: {f}", file=sys.stderr)
                return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    ap.add_argument("--smoke", action="store_true",
                    help="tiny members + short runs for CI (no scaling "
                         "assertion)")
    ap.add_argument("--pool", type=int, default=512,
                    help="server buffer pool size in pages "
                         "(default %(default)s)")
    ap.add_argument("--out", default=str(
        pathlib.Path(__file__).resolve().parent.parent /
        "BENCH_serve.json"))
    ap.add_argument("--no-assert", action="store_true")
    args = ap.parse_args(argv)

    member_sizes = [25, 25, 40] if args.smoke else [100, 100, 160]
    target_run_s = 1.0 if args.smoke else 2.5
    do_assert = not (args.no_assert or args.smoke)
    return run(member_sizes, args.pool, target_run_s, args.out, do_assert)


if __name__ == "__main__":
    sys.exit(main())
