#!/usr/bin/env python
"""XQ benchmark: graph reduction over extended vectors vs. the naive
nested-loop reference on the reconstructed tree.

For each document size the same XQ queries (joins + selections, the
workload of paper §4) run two ways:

* ``naive`` — reconstruct the full tree from (skeleton, vectors), then
  evaluate the FLWR expression with nested loops node at a time;
* ``vx``    — compile to (Gq, Gr), order operations with the heuristic
  planner, reduce Gq edge-at-a-time over extended vectors and instantiate
  Gr with stepwise hash-cons compression — zero decompression and at most
  one scan per touched vector, both machine-asserted by the engine.

Answers are checked byte-identical (after serialization) before timing.
Results go to BENCH_xq.json.  Exits nonzero if reduction does not beat
naive on every query at the largest size (disable with --no-assert;
--smoke uses tiny documents).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro import __version__  # noqa: E402
from repro.core.engine import eval_xq  # noqa: E402
from repro.core.vdoc import VectorizedDocument  # noqa: E402
from repro.core.xquery.parser import parse_xq  # noqa: E402
from repro.datasets.synth import xmark_like_xml  # noqa: E402
from repro.util import Timer, best_of, fmt_table, human_count  # noqa: E402

QUERIES = {
    "XQ1-selection":
        "for $p in /site/people/person where $p/profile/age >= '60' "
        "return <r>{$p/name}</r>",
    "XQ2-desc-selection":
        "for $i in //item where $i/location = 'United States' "
        "return <hit>{$i/name/text()}</hit>",
    "XQ3-value-join":
        "for $c in /site/closed_auctions/closed_auction, "
        "$p in /site/people/person where $c/buyer = $p/@id "
        "return <pair>{$p/name}{$c/price}</pair>",
    "XQ4-join-plus-selection":
        "for $c in //closed_auction, $p in //person "
        "where $p/profile/age > '40' and $c/buyer = $p/@id "
        "return <r>{$p/emailaddress}{$c/date}</r>",
    "XQ5-nested-vars":
        "for $p in /site/people/person, $i in $p/profile/interest "
        "where $i = 'databases' return <fan>{$p/@id}</fan>",
}


def run(sizes: list[int], repeat: int, out_path: str, do_assert: bool) -> int:
    records = []
    for n_people in sizes:
        with Timer() as t_gen:
            xml = xmark_like_xml(n_people, seed=42)
        with Timer() as t_vec:
            vdoc = VectorizedDocument.from_xml(xml)
        stats = vdoc.stats()
        print(
            f"\n== n_people={n_people}  nodes={human_count(stats['document_nodes'])}"
            f"  skeleton={stats['skeleton_nodes']} nodes"
            f"  vectors={stats['vectors']}"
            f"  (gen {t_gen.elapsed:.2f}s, vectorize {t_vec.elapsed:.2f}s)"
        )
        for name, query in QUERIES.items():
            xq = parse_xq(query)
            # sanity: byte-identical serialized answers before timing
            vx_res = eval_xq(vdoc, xq, mode="vx")
            nv_res = eval_xq(vdoc, xq, mode="naive")
            assert vx_res.to_xml() == nv_res.to_xml(), name
            t_naive = best_of(lambda: eval_xq(vdoc, xq, mode="naive"),
                              repeat)
            t_vx = best_of(lambda: eval_xq(vdoc, xq, mode="vx"), repeat)
            records.append({
                "n_people": n_people,
                "document_nodes": stats["document_nodes"],
                "skeleton_nodes": stats["skeleton_nodes"],
                "vectors": stats["vectors"],
                "query": name,
                "xq": query,
                "result_tuples": vx_res.n_tuples,
                "t_naive_s": t_naive,
                "t_vx_s": t_vx,
                "speedup": t_naive / t_vx if t_vx > 0 else float("inf"),
            })

    headers = ["nodes", "query", "tuples", "naive (ms)", "vx (ms)", "speedup"]
    rows = [
        [human_count(r["document_nodes"]), r["query"], r["result_tuples"],
         f"{r['t_naive_s'] * 1e3:.2f}", f"{r['t_vx_s'] * 1e3:.3f}",
         f"{r['speedup']:.1f}x"]
        for r in records
    ]
    print("\n" + fmt_table(headers, rows))

    largest = max(sizes)
    at_largest = [r for r in records if r["n_people"] == largest]
    min_speedup = min(r["speedup"] for r in at_largest)
    geo = 1.0
    for r in at_largest:
        geo *= r["speedup"]
    geo **= 1.0 / len(at_largest)
    print(f"\nlargest size: min speedup {min_speedup:.1f}x, "
          f"geomean {geo:.1f}x over {len(at_largest)} queries")

    payload = {
        "bench": "xq_reduction_vs_naive",
        "version": __version__,
        "sizes_n_people": sizes,
        "repeat": repeat,
        "records": records,
        "largest_size": {
            "n_people": largest,
            "min_speedup": min_speedup,
            "geomean_speedup": geo,
        },
    }
    pathlib.Path(out_path).write_text(json.dumps(payload, indent=2) + "\n",
                                      encoding="utf-8")
    print(f"wrote {out_path}")

    if do_assert and min_speedup < 1.0:
        print(f"FAIL: expected reduction to beat naive on every query at "
              f"the largest size, got {min_speedup:.2f}x", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    ap.add_argument("--sizes", default=None,
                    help="comma-separated n_people sizes (default 500,2000,"
                         "4000 — the naive nested-loop join is quadratic, so "
                         "sizes are smaller than the XPath benchmark's)")
    ap.add_argument("--smoke", action="store_true",
                    help="tiny documents for CI (no speedup assertion)")
    ap.add_argument("--repeat", type=int, default=2)
    ap.add_argument("--out", default=str(
        pathlib.Path(__file__).resolve().parent.parent / "BENCH_xq.json"))
    ap.add_argument("--no-assert", action="store_true")
    args = ap.parse_args(argv)

    if args.sizes:
        sizes = [int(s) for s in args.sizes.split(",")]
    elif args.smoke:
        sizes = [50, 200, 800]
    else:
        sizes = [500, 2000, 4000]
    do_assert = not (args.no_assert or args.smoke)
    return run(sizes, args.repeat, args.out, do_assert)


if __name__ == "__main__":
    sys.exit(main())
