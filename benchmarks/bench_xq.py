#!/usr/bin/env python
"""XQ benchmark: graph reduction over extended vectors vs. the naive
nested-loop reference on the reconstructed tree.

For each document size the same XQ queries (joins + selections, the
workload of paper §4) run two ways:

* ``naive`` — reconstruct the full tree from (skeleton, vectors), then
  evaluate the FLWR expression with nested loops node at a time;
* ``vx``    — compile to (Gq, Gr), order operations with the heuristic
  planner, reduce Gq edge-at-a-time over extended vectors and instantiate
  Gr with stepwise hash-cons compression — zero decompression and at most
  one scan per touched vector, both machine-asserted by the engine.

Two further regimes ride along: batched vs per-combo execution on
many-path documents, and **index probes vs column scans** — selective
queries on a disk-backed document with persistent value indexes, columns
dropped between runs, asserting byte-identical answers and the
``INDEXED_MIN_*`` speedup floors at the largest size.

Answers are checked byte-identical (after serialization) before timing.
Results go to BENCH_xq.json.  Exits nonzero if reduction does not beat
naive on every query at the largest size (disable with --no-assert;
--smoke uses tiny documents).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import tempfile

SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro import __version__  # noqa: E402
from repro.core.engine import eval_xq  # noqa: E402
from repro.core.vdoc import VectorizedDocument  # noqa: E402
from repro.core.xquery.parser import parse_xq  # noqa: E402
from repro.datasets.synth import manypath_xml, xmark_like_xml  # noqa: E402
from repro.storage.vdocfile import open_vdoc, save_vdoc  # noqa: E402
from repro.util import Timer, best_of, fmt_table, human_count  # noqa: E402

QUERIES = {
    "XQ1-selection":
        "for $p in /site/people/person where $p/profile/age >= '60' "
        "return <r>{$p/name}</r>",
    "XQ2-desc-selection":
        "for $i in //item where $i/location = 'United States' "
        "return <hit>{$i/name/text()}</hit>",
    "XQ3-value-join":
        "for $c in /site/closed_auctions/closed_auction, "
        "$p in /site/people/person where $c/buyer = $p/@id "
        "return <pair>{$p/name}{$c/price}</pair>",
    "XQ4-join-plus-selection":
        "for $c in //closed_auction, $p in //person "
        "where $p/profile/age > '40' and $c/buyer = $p/@id "
        "return <r>{$p/emailaddress}{$c/date}</r>",
    "XQ5-nested-vars":
        "for $p in /site/people/person, $i in $p/profile/interest "
        "where $i = 'databases' return <fan>{$p/@id}</fan>",
}


#: batched-vs-per-combo regime: a structurally wide document (many region
#: labels, so ``//item`` expands to many concrete paths) and a two-variable
#: query whose combo table is the cross product of those paths.  The
#: per-combo baseline re-runs the plan once per combo; batched execution
#: runs it once over the whole table.  Batched must be at least this much
#: faster at the largest configuration.
BATCHED_MIN_SPEEDUP = 2.0
BATCHED_XQ = (
    "for $i in //item, $j in //item "
    "where $i/quantity > '8' and $i/location = 'Kenya' "
    "and $j/quantity > '8' and $j/location = 'Kenya' "
    "return <pair>{$i/name}{$j/name}</pair>"
)


#: indexed regime: selective queries on a *disk-backed* document whose
#: vectors all carry persistent value indexes.  Columns are dropped
#: before every run (the buffer pool stays warm), so the scan path pays
#: column materialization for every vector a predicate touches while the
#: index path loads only the (binary, frombuffer-decoded) index segments
#: it probes plus the result columns — the access-path gap the paper's
#: value indexes exist to open.  Thresholds hold at the largest size.
INDEXED_MIN_SEL_SPEEDUP = 5.0    # selective constant selections
INDEXED_MIN_JOIN_SPEEDUP = 3.0   # selective equality joins
INDEXED_QUERIES = {
    "IXQ1-needle-selection": (
        "sel",
        "for $p in /site/people/person where $p/name = 'name 7' "
        "and $p/emailaddress = 'mailto:person7@example.com' "
        "and $p/@id = 'person7' return <r>{$p/phone}</r>"),
    "IXQ2-selective-join": (
        "join",
        "for $c in /site/closed_auctions/closed_auction, "
        "$p in /site/people/person where $p/name = 'name 7' "
        "and $c/buyer = $p/@id return <pair>{$c/price}</pair>"),
}


def run_indexed_regime(sizes: list[int], repeat: int,
                       workdir: str) -> tuple[list[dict], dict[str, float]]:
    """Time INDEXED_QUERIES with and without index probes on cold-column
    disk documents; returns (records, min speedup per kind at the largest
    size)."""
    records = []
    print("\n== index probes vs column scans (disk, cold columns) ==")
    for n_people in sizes:
        vdoc = VectorizedDocument.from_xml(xmark_like_xml(n_people, seed=42))
        path = str(pathlib.Path(workdir) / f"ix{n_people}.vdoc")
        with Timer() as t_build:
            summary = save_vdoc(vdoc, path, index_paths="all")
        with open_vdoc(path) as doc:
            for name, (kind, query) in INDEXED_QUERIES.items():
                xq = parse_xq(query)
                # byte-identical answers and an actually-indexed plan,
                # machine-checked before any timing
                ix_res = eval_xq(doc, xq, use_indexes=True)
                doc.drop_caches()
                scan_res = eval_xq(doc, xq, use_indexes=False)
                doc.drop_caches()
                assert ix_res.to_xml() == scan_res.to_xml(), name
                assert any(op.access == "index"
                           for op in ix_res.plan.ops), name
                assert all(op.access == "scan"
                           for op in scan_res.plan.ops), name

                def indexed():
                    doc.drop_caches()
                    return eval_xq(doc, xq, use_indexes=True)

                def scanned():
                    doc.drop_caches()
                    return eval_xq(doc, xq, use_indexes=False)

                t_ix = best_of(indexed, repeat)
                t_scan = best_of(scanned, repeat)
                speedup = t_scan / t_ix if t_ix > 0 else float("inf")
                print(f"  n_people={n_people} {name}"
                      f"  indexed {t_ix * 1e3:.1f}ms"
                      f"  scan {t_scan * 1e3:.1f}ms"
                      f"  speedup {speedup:.2f}x"
                      f"  tuples={ix_res.n_tuples}")
                records.append({
                    "n_people": n_people,
                    "query": name,
                    "kind": kind,
                    "xq": query,
                    "result_tuples": ix_res.n_tuples,
                    "index_pages": summary["index_pages"],
                    "t_index_build_s": t_build.elapsed,
                    "t_indexed_s": t_ix,
                    "t_scan_s": t_scan,
                    "speedup": speedup,
                })
        os.unlink(path)
    largest = max(sizes)
    mins = {
        kind: min(r["speedup"] for r in records
                  if r["n_people"] == largest and r["kind"] == kind)
        for kind in ("sel", "join")
    }
    return records, mins


def run_batched_regime(configs: list[tuple[int, int]], repeat: int,
                       check_naive: bool) -> tuple[list[dict], float]:
    """Time BATCHED_XQ batched vs. per-combo on many-path documents;
    returns (records, min speedup at the largest configuration)."""
    records = []
    xq = parse_xq(BATCHED_XQ)
    print("\n== batched combo execution (many-path documents) ==")
    for n_people, n_regions in configs:
        vdoc = VectorizedDocument.from_xml(
            manypath_xml(n_people, n_regions=n_regions, seed=42))
        batched = eval_xq(vdoc, xq, batched=True)
        per_combo = eval_xq(vdoc, xq, batched=False)
        assert batched.to_xml() == per_combo.to_xml(), "executors diverge"
        if check_naive:  # the nested-loop cross product is quadratic
            naive = eval_xq(vdoc, xq, mode="naive")
            assert batched.to_xml() == naive.to_xml(), "naive diverges"
        n_combos = len(batched.table.combos)
        t_batched = best_of(lambda: eval_xq(vdoc, xq, batched=True), repeat)
        t_percombo = best_of(lambda: eval_xq(vdoc, xq, batched=False),
                             repeat)
        speedup = t_percombo / t_batched if t_batched > 0 else float("inf")
        print(f"  people={n_people} regions={n_regions} combos={n_combos}"
              f" tuples={batched.n_tuples}"
              f"  batched {t_batched * 1e3:.1f}ms"
              f"  per-combo {t_percombo * 1e3:.1f}ms"
              f"  speedup {speedup:.2f}x")
        records.append({
            "n_people": n_people,
            "n_regions": n_regions,
            "n_combos": n_combos,
            "result_tuples": batched.n_tuples,
            "xq": BATCHED_XQ,
            "t_batched_s": t_batched,
            "t_per_combo_s": t_percombo,
            "speedup": speedup,
        })
    largest = max(configs)
    at_largest = [r for r in records
                  if (r["n_people"], r["n_regions"]) == largest]
    return records, min(r["speedup"] for r in at_largest)


def run(sizes: list[int], repeat: int, out_path: str, do_assert: bool,
        batched_configs: list[tuple[int, int]],
        check_naive_batched: bool, indexed_sizes: list[int]) -> int:
    records = []
    for n_people in sizes:
        with Timer() as t_gen:
            xml = xmark_like_xml(n_people, seed=42)
        with Timer() as t_vec:
            vdoc = VectorizedDocument.from_xml(xml)
        stats = vdoc.stats()
        print(
            f"\n== n_people={n_people}  nodes={human_count(stats['document_nodes'])}"
            f"  skeleton={stats['skeleton_nodes']} nodes"
            f"  vectors={stats['vectors']}"
            f"  (gen {t_gen.elapsed:.2f}s, vectorize {t_vec.elapsed:.2f}s)"
        )
        for name, query in QUERIES.items():
            xq = parse_xq(query)
            # sanity: byte-identical serialized answers before timing
            vx_res = eval_xq(vdoc, xq, mode="vx")
            nv_res = eval_xq(vdoc, xq, mode="naive")
            assert vx_res.to_xml() == nv_res.to_xml(), name
            t_naive = best_of(lambda: eval_xq(vdoc, xq, mode="naive"),
                              repeat)
            t_vx = best_of(lambda: eval_xq(vdoc, xq, mode="vx"), repeat)
            records.append({
                "n_people": n_people,
                "document_nodes": stats["document_nodes"],
                "skeleton_nodes": stats["skeleton_nodes"],
                "vectors": stats["vectors"],
                "query": name,
                "xq": query,
                "result_tuples": vx_res.n_tuples,
                "t_naive_s": t_naive,
                "t_vx_s": t_vx,
                "speedup": t_naive / t_vx if t_vx > 0 else float("inf"),
            })

    headers = ["nodes", "query", "tuples", "naive (ms)", "vx (ms)", "speedup"]
    rows = [
        [human_count(r["document_nodes"]), r["query"], r["result_tuples"],
         f"{r['t_naive_s'] * 1e3:.2f}", f"{r['t_vx_s'] * 1e3:.3f}",
         f"{r['speedup']:.1f}x"]
        for r in records
    ]
    print("\n" + fmt_table(headers, rows))

    largest = max(sizes)
    at_largest = [r for r in records if r["n_people"] == largest]
    min_speedup = min(r["speedup"] for r in at_largest)
    geo = 1.0
    for r in at_largest:
        geo *= r["speedup"]
    geo **= 1.0 / len(at_largest)
    print(f"\nlargest size: min speedup {min_speedup:.1f}x, "
          f"geomean {geo:.1f}x over {len(at_largest)} queries")

    batched_records, batched_speedup = run_batched_regime(
        batched_configs, repeat, check_naive_batched)

    with tempfile.TemporaryDirectory(prefix="bench-ix-") as workdir:
        indexed_records, indexed_mins = run_indexed_regime(
            indexed_sizes, repeat, workdir)

    payload = {
        "bench": "xq_reduction_vs_naive",
        "version": __version__,
        "sizes_n_people": sizes,
        "repeat": repeat,
        "records": records,
        "largest_size": {
            "n_people": largest,
            "min_speedup": min_speedup,
            "geomean_speedup": geo,
        },
        "batched_regime": {
            "records": batched_records,
            "min_speedup_at_largest": batched_speedup,
            "threshold": BATCHED_MIN_SPEEDUP,
        },
        "indexed_regime": {
            "records": indexed_records,
            "min_speedup_at_largest": indexed_mins,
            "thresholds": {"sel": INDEXED_MIN_SEL_SPEEDUP,
                           "join": INDEXED_MIN_JOIN_SPEEDUP},
        },
    }
    pathlib.Path(out_path).write_text(json.dumps(payload, indent=2) + "\n",
                                      encoding="utf-8")
    print(f"wrote {out_path}")

    if do_assert and min_speedup < 1.0:
        print(f"FAIL: expected reduction to beat naive on every query at "
              f"the largest size, got {min_speedup:.2f}x", file=sys.stderr)
        return 1
    if do_assert and batched_speedup < BATCHED_MIN_SPEEDUP:
        print(f"FAIL: expected batched combo execution to be at least "
              f"{BATCHED_MIN_SPEEDUP:.0f}x faster than the per-combo "
              f"baseline on the many-path document, got "
              f"{batched_speedup:.2f}x", file=sys.stderr)
        return 1
    for kind, floor in (("sel", INDEXED_MIN_SEL_SPEEDUP),
                        ("join", INDEXED_MIN_JOIN_SPEEDUP)):
        if do_assert and indexed_mins[kind] < floor:
            print(f"FAIL: expected index probes to be at least "
                  f"{floor:.0f}x faster than cold-column scans on "
                  f"selective {kind} queries at the largest size, got "
                  f"{indexed_mins[kind]:.2f}x", file=sys.stderr)
            return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    ap.add_argument("--sizes", default=None,
                    help="comma-separated n_people sizes (default 500,2000,"
                         "4000 — the naive nested-loop join is quadratic, so "
                         "sizes are smaller than the XPath benchmark's)")
    ap.add_argument("--smoke", action="store_true",
                    help="tiny documents for CI (no speedup assertion)")
    ap.add_argument("--repeat", type=int, default=2)
    ap.add_argument("--out", default=str(
        pathlib.Path(__file__).resolve().parent.parent / "BENCH_xq.json"))
    ap.add_argument("--no-assert", action="store_true")
    args = ap.parse_args(argv)

    if args.sizes:
        sizes = [int(s) for s in args.sizes.split(",")]
    elif args.smoke:
        sizes = [50, 200, 800]
    else:
        sizes = [500, 2000, 4000]
    if args.smoke:
        batched_configs = [(200, 16), (500, 24)]
        indexed_sizes = [2000, 20000]
    else:
        batched_configs = [(2000, 32), (4000, 48)]
        indexed_sizes = [2000, 8000, 20000]
    do_assert = not (args.no_assert or args.smoke)
    # the naive nested-loop check of the cross-product query is quadratic;
    # only run it at smoke sizes
    return run(sizes, args.repeat, args.out, do_assert,
               batched_configs, check_naive_batched=args.smoke,
               indexed_sizes=indexed_sizes)


if __name__ == "__main__":
    sys.exit(main())
