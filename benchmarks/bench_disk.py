#!/usr/bin/env python
"""Disk-backed vdoc benchmark: cold vs. warm cache, small vs. unbounded pool.

For each document size the document is vectorized, saved in the paged
on-disk format, and queried (one XPath and one two-variable-join XQ)
in four regimes:

* ``cold / small pool``      — fresh open, pool of --pool-pages frames:
  every touched vector chain is read from disk through the bounded pool;
* ``warm columns / small``   — same document object re-queried: the numpy
  columns are cached, zero physical I/O;
* ``cold / unbounded pool``  — fresh open, unbounded pool: same physical
  reads as the small pool (lazy loading reads each chain at most once
  either way — the paper's scan-once claim, now measured in pages);
* ``pool-warm / unbounded``  — columns dropped but the pool retains every
  page: rescans are pure buffer hits, zero reads;
* ``cold / noverify``        — fresh open with per-page checksum
  verification disabled: the baseline that prices the format-v2
  integrity checks.  The cold-path checksum overhead must stay under 10%
  (asserted only when the baseline is long enough to time reliably).

Two repository regimes follow: collection queries over one shared
bounded pool, and **catalog pruning** — repositories where most members
are schema-disjoint from the query, asserting the pruned members are
skipped with zero page I/O and the answer stays byte-identical.

A **compression regime** closes the sweep: a codec-rich document
(low-cardinality, sequential-numeric and prose vectors) is saved both
as format v4 (per-vector codecs) and as the uncompressed ``fmt=3``
layout, and a cold query battery runs over each.  The v4 file must read
fewer pages — roughly in proportion to its cataloged byte-level
compression ratio — at bounded decode CPU cost, answer byte-identically,
and evaluate its dictionary-equality selection with *zero* decoded
values on the predicate vector (machine-asserted through the context's
decode counters).  A high-cardinality twin checks the fallback edge:
when values resist coding, v4 degrades gracefully and never costs more
pages than v3.

Before timing, both queries are checked byte-identical against the
in-memory document.  Results go to BENCH_disk.json.  Exits nonzero if a
regime breaks its expected I/O profile (disable with --no-assert;
--smoke uses tiny documents).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import tempfile

SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro import __version__  # noqa: E402
from repro.core.engine import eval_query, eval_xq  # noqa: E402
from repro.core.vdoc import VectorizedDocument  # noqa: E402
from repro.datasets.synth import xmark_like_xml  # noqa: E402
from repro.repo import Repository  # noqa: E402
from repro.storage import open_vdoc  # noqa: E402
from repro.util import Timer, fmt_table, human_count  # noqa: E402

#: cold-path checksum overhead ceiling, and the shortest noverify
#: baseline that is long enough to price it against
MAX_CRC_OVERHEAD = 0.10
CRC_TIMING_FLOOR_S = 0.05

XPATH = "//item[quantity > 5]/name"
XQ = ("for $c in /site/closed_auctions/closed_auction, "
      "$p in /site/people/person where $c/buyer = $p/@id "
      "return <pair>{$p/name}{$c/price}</pair>")


def _answers(vdoc) -> tuple:
    return (eval_query(vdoc, XPATH).canonical(), eval_xq(vdoc, XQ).to_xml())


def _run_both(vdoc) -> float:
    with Timer() as t:
        _answers(vdoc)
    return t.elapsed


def _io_delta(pool, before: dict) -> dict:
    now = pool.stats.as_dict()
    return {k: now[k] - before[k] for k in before}


#: shared-pool repository regime: member document sizes (people per doc)
REPO_MEMBERS = (3, 7, 5)
REPO_XQ = ("for $p in /site/people/person where $p/profile/age > '40' "
           "return <r>{$p/name}{$p/profile/age}</r>")


def run_repo_regime(sizes, pool_pages, page_size, tmpdir) -> tuple[list, list]:
    """Multi-document repositories over one shared bounded pool: every
    member is queried through the same frames, so the pool must evict
    fairly across members and end with zero pins.  Results are checked
    byte-identical to concatenated per-document in-memory evaluation."""
    from repro.core.xquery.parser import parse_xq
    from repro.xmldata.model import Element
    from repro.xmldata.serializer import serialize

    records, failures = [], []
    xq = parse_xq(REPO_XQ)
    print("\n== shared-pool repository (collection queries) ==")
    for n_people in sizes:
        rdir = os.path.join(tmpdir, f"repo_{n_people}")
        repo = Repository.init(rdir, "bench")
        kids = []
        for i, scale in enumerate(REPO_MEMBERS):
            n = max(1, n_people * scale // 10)
            xml = xmark_like_xml(n, seed=100 + i)
            src = os.path.join(tmpdir, f"m{i}_{n_people}.xml")
            with open(src, "w", encoding="utf-8") as f:
                f.write(xml)
            repo.add(src, name=f"m{i}", page_size=page_size)
            mem = VectorizedDocument.from_xml(xml)
            kids.extend(eval_xq(mem, xq).vdoc.to_tree().children)
        expected = serialize(Element(xq.root_tag, children=kids))
        repo.close()

        repo = Repository.open(rdir, pool_pages=pool_pages)
        with Timer() as t_cold:
            result = repo.xq(REPO_XQ)
        if result.to_xml() != expected:
            failures.append(f"repo n={n_people}: collection result diverges "
                            f"from concatenated per-document evaluation")
        stats = repo.io_stats()
        file_pages = sum(
            os.path.getsize(os.path.join(rdir, m["file"])) // page_size
            for m in repo.manifest["members"])
        with Timer() as t_warm:
            repo.xq(REPO_XQ)
        repo.close()

        if stats["pinned"] != 0:
            failures.append(f"repo n={n_people}: leaked pins pool-wide")
        if stats["pool_resident"] > pool_pages:
            failures.append(f"repo n={n_people}: pool overflowed capacity")
        if stats["pool_pages_read"] > pool_pages \
                and stats["pool_evictions"] == 0:
            failures.append(f"repo n={n_people}: shared pool never evicted "
                            f"({stats['pool_pages_read']} pages read "
                            f"through {pool_pages} frames)")
        members_read = [m for i in range(len(REPO_MEMBERS))
                        for m in [f"m{i}.pages_read"] if stats.get(m, 0) > 0]
        if len(members_read) != len(REPO_MEMBERS):
            failures.append(f"repo n={n_people}: not every member did I/O "
                            f"through the shared pool")
        print(f"  n={n_people}: members={len(REPO_MEMBERS)} "
              f"pages={file_pages} pool={pool_pages}"
              f"  cold {t_cold.elapsed * 1e3:.2f}ms"
              f"  warm {t_warm.elapsed * 1e3:.2f}ms"
              f"  reads={stats['pool_pages_read']}"
              f" evictions={stats['pool_evictions']}"
              f" tuples={result.n_tuples}")
        records.append({
            "n_people": n_people,
            "members": len(REPO_MEMBERS),
            "file_pages": file_pages,
            "pool_pages": pool_pages,
            "t_cold_s": t_cold.elapsed,
            "t_warm_s": t_warm.elapsed,
            "result_tuples": result.n_tuples,
            **{f"io_{k}": v for k, v in stats.items()},
        })
    return records, failures


#: catalog-pruning regime: how many members match the query schema and
#: how many are schema-disjoint (prunable straight from the manifest)
PRUNE_HITS = 2
PRUNE_MISSES = 3


def run_prune_regime(sizes, pool_pages, page_size, tmpdir) -> tuple[list, list]:
    """Repositories where most members cannot match the query: catalog
    pruning must skip them with *zero* page I/O (they are never opened)
    and the pruned result must stay byte-identical to the full
    evaluation."""
    records, failures = [], []
    print("\n== catalog pruning (schema-disjoint members) ==")
    for n_people in sizes:
        rdir = os.path.join(tmpdir, f"prune_{n_people}")
        repo = Repository.init(rdir, "bench")
        for i in range(PRUNE_HITS):
            src = os.path.join(tmpdir, f"hit{i}_{n_people}.xml")
            with open(src, "w", encoding="utf-8") as f:
                f.write(xmark_like_xml(n_people, seed=200 + i))
            repo.add(src, name=f"hit{i}", page_size=page_size)
        for i in range(PRUNE_MISSES):
            # same bulk, different root label: every path starts <store>,
            # so a /site query can be refuted from the catalog alone
            xml = xmark_like_xml(n_people, seed=300 + i)
            xml = xml.replace("<site>", "<store>", 1) \
                     .replace("</site>", "</store>")
            src = os.path.join(tmpdir, f"miss{i}_{n_people}.xml")
            with open(src, "w", encoding="utf-8") as f:
                f.write(xml)
            repo.add(src, name=f"miss{i}", page_size=page_size)
        repo.close()

        repo = Repository.open(rdir, pool_pages=pool_pages)
        with Timer() as t_pruned:
            result = repo.xq(REPO_XQ)
        stats = repo.io_stats()
        repo.close()
        expected_pruned = sorted(f"miss{i}" for i in range(PRUNE_MISSES))
        if sorted(result.pruned) != expected_pruned:
            failures.append(f"prune n={n_people}: pruned {result.pruned}, "
                            f"expected {expected_pruned}")
        miss_reads = sum(stats.get(f"{m}.pages_read", 0)
                         for m in expected_pruned)
        if miss_reads != 0:
            failures.append(f"prune n={n_people}: pruned members read "
                            f"{miss_reads} pages (expected zero I/O)")

        repo = Repository.open(rdir, pool_pages=pool_pages)
        with Timer() as t_full:
            full = repo.xq(REPO_XQ, prune=False)
        repo.close()
        if result.to_xml() != full.to_xml():
            failures.append(f"prune n={n_people}: pruned result diverges "
                            f"from the full evaluation")
        speedup = t_full.elapsed / t_pruned.elapsed \
            if t_pruned.elapsed > 0 else float("inf")
        print(f"  n={n_people}: hits={PRUNE_HITS} misses={PRUNE_MISSES}"
              f"  pruned {t_pruned.elapsed * 1e3:.2f}ms"
              f"  full {t_full.elapsed * 1e3:.2f}ms"
              f"  speedup {speedup:.2f}x"
              f"  pruned_reads={miss_reads}")
        records.append({
            "n_people": n_people,
            "hits": PRUNE_HITS,
            "misses": PRUNE_MISSES,
            "pruned": sorted(result.pruned),
            "pruned_member_pages_read": miss_reads,
            "t_pruned_s": t_pruned.elapsed,
            "t_full_s": t_full.elapsed,
            "speedup": speedup,
            "result_tuples": result.n_tuples,
        })
    return records, failures


#: compression regime: cold pages through v4 may exceed the byte-level
#: compression ratio by at most this much (paging granularity slack)
COMPRESSION_PAGE_SLACK = 0.25
#: decode CPU ceiling: the cold v4 battery vs. its uncompressed twin,
#: asserted only when the twin is long enough to time reliably
MAX_CODEC_CPU_OVERHEAD = 0.50
CODEC_TIMING_FLOOR_S = 0.05

COMP_XQ = ("for $i in /r/items/it where $i/cat = 'c3' "
           "return <o>{$i/id}</o>")
CAT_PATH = ("r", "items", "it", "cat", "#")


def _codec_rich_xml(n_values: int) -> str:
    """Low-cardinality + sequential-numeric + prose vectors: one per
    codec (dict, delta, zlib)."""
    items = "".join(
        f"<it><id>{100000 + i}</id><cat>c{i % 7}</cat>"
        f"<note>shared prose prefix, distinct tail {i} of many</note></it>"
        for i in range(n_values))
    return f"<r><items>{items}</items></r>"


def _high_card_xml(n_values: int) -> str:
    """High-cardinality, high-entropy values: dictionary and delta coding
    are inapplicable, so v4 must degrade gracefully (zlib or identity)
    without ever costing more pages than the uncompressed layout."""
    import hashlib

    items = "".join(
        f"<it><v>{hashlib.sha256(str(i).encode()).hexdigest()[:20]}</v></it>"
        for i in range(n_values))
    return f"<r><items>{items}</items></r>"


def _battery(disk) -> tuple:
    """The cold battery: a dict-equality selection, a numeric range and a
    string-equality sweep — together they touch every vector kind."""
    return (eval_xq(disk, COMP_XQ).to_xml(),
            eval_query(disk, "//it[id >= 100000]").count(),
            eval_query(disk, "//it[note = 'no such note']").count())


def run_compression_regime(sizes, pool_pages, page_size,
                           tmpdir) -> tuple[list, list]:
    from repro.core.context import EvalContext

    records, failures = [], []
    print("\n== compressed storage (format v4 vs uncompressed fmt=3) ==")
    for n_people in sizes:
        n_values = n_people * 10
        mem = VectorizedDocument.from_xml(_codec_rich_xml(n_values))
        p4 = os.path.join(tmpdir, f"comp4_{n_people}.vdoc")
        p3 = os.path.join(tmpdir, f"comp3_{n_people}.vdoc")
        s4 = mem.save(p4, page_size=page_size)
        s3 = mem.save(p3, page_size=page_size, fmt=3)
        byte_ratio = s4["compression_ratio"]
        expected = _battery(mem)

        timings, reads = {}, {}
        for fmt, path in (("v3", p3), ("v4", p4)):
            with VectorizedDocument.open(path, pool_pages=pool_pages) as d:
                base = d.pool.stats.pages_read
                with Timer() as t:
                    got = _battery(d)
                timings[fmt] = t.elapsed
                reads[fmt] = d.pool.stats.pages_read - base
                if got != expected:
                    failures.append(f"compress n={n_people}: {fmt} answers "
                                    f"diverge from memory")
                if d.pool.pinned_total() != 0:
                    failures.append(f"compress n={n_people}: {fmt} leaked "
                                    f"pins")

        # the machine assertion: the dict-eq selection decodes nothing
        with VectorizedDocument.open(p4, pool_pages=pool_pages) as d:
            ctx = EvalContext.for_doc(d)
            eval_xq(d, COMP_XQ, ctx=ctx)
            dict_decodes = ctx.decode_counts(d).get(CAT_PATH, 0)
        if dict_decodes:
            failures.append(f"compress n={n_people}: dict-eq selection "
                            f"decoded {dict_decodes} values (expected 0)")

        page_ratio = reads["v4"] / reads["v3"] if reads["v3"] else 1.0
        overhead = timings["v4"] / timings["v3"] - 1.0 \
            if timings["v3"] > 0 else 0.0
        timed = timings["v3"] >= CODEC_TIMING_FLOOR_S
        if reads["v4"] >= reads["v3"]:
            failures.append(f"compress n={n_people}: v4 read {reads['v4']} "
                            f"cold pages, v3 read {reads['v3']} — "
                            f"compression saved nothing")
        if page_ratio > byte_ratio + COMPRESSION_PAGE_SLACK:
            failures.append(f"compress n={n_people}: cold page ratio "
                            f"{page_ratio:.2f} not tracking byte ratio "
                            f"{byte_ratio:.2f}")
        if timed and overhead > MAX_CODEC_CPU_OVERHEAD:
            failures.append(f"compress n={n_people}: decoding costs "
                            f"{overhead * 100:.0f}% cold CPU (budget "
                            f"{MAX_CODEC_CPU_OVERHEAD * 100:.0f}%)")

        # fallback edge: a high-cardinality twin must never pay pages
        # for failed compression (a v4 file is never worse than v3)
        hc = VectorizedDocument.from_xml(_high_card_xml(n_values))
        h4 = os.path.join(tmpdir, f"hc4_{n_people}.vdoc")
        h3 = os.path.join(tmpdir, f"hc3_{n_people}.vdoc")
        hs4 = hc.save(h4, page_size=page_size)
        hs3 = hc.save(h3, page_size=page_size, fmt=3)
        if hs4["pages"] > hs3["pages"] * 1.02 + 2:
            failures.append(f"compress n={n_people}: high-cardinality v4 "
                            f"file grew past its v3 twin "
                            f"({hs4['pages']} vs {hs3['pages']} pages)")

        print(f"  n_values={n_values}: byte_ratio={byte_ratio:.3f}"
              f"  cold pages v3={reads['v3']} v4={reads['v4']}"
              f" (ratio {page_ratio:.2f})"
              f"  cpu {overhead * 100:+.0f}%"
              + ("" if timed else " [below timing floor, not asserted]")
              + f"  dict_decodes={dict_decodes}"
              f"  highcard pages v3={hs3['pages']} v4={hs4['pages']}")
        records.append({
            "n_people": n_people,
            "n_values": n_values,
            "logical_bytes": s4["logical_bytes"],
            "physical_bytes": s4["physical_bytes"],
            "byte_ratio": byte_ratio,
            "codecs": s4["codecs"],
            "pages_cold_v3": reads["v3"],
            "pages_cold_v4": reads["v4"],
            "page_ratio": round(page_ratio, 4),
            "t_cold_v3_s": timings["v3"],
            "t_cold_v4_s": timings["v4"],
            "cpu_overhead": round(overhead, 4),
            "cpu_timed": timed,
            "dict_decodes": dict_decodes,
            "highcard_pages_v3": hs3["pages"],
            "highcard_pages_v4": hs4["pages"],
            "highcard_codecs": hs4["codecs"],
        })
    return records, failures


def run(sizes, pool_pages, page_size, out_path, do_assert) -> int:
    records = []
    failures: list[str] = []
    overheads: dict[int, float] = {}
    tmpdir = tempfile.mkdtemp(prefix="bench_disk_")
    for n_people in sizes:
        xml = xmark_like_xml(n_people, seed=42)
        mem = VectorizedDocument.from_xml(xml)
        path = os.path.join(tmpdir, f"doc_{n_people}.vdoc")
        with Timer() as t_save:
            summary = mem.save(path, page_size=page_size)
        mem_answers = _answers(mem)

        print(f"\n== n_people={n_people}"
              f"  nodes={human_count(mem.stats()['document_nodes'])}"
              f"  file={summary['bytes'] / 1024:.0f}KiB"
              f"  pages={summary['pages']}"
              f"  (save {t_save.elapsed:.2f}s)")

        # correctness gate on its own open so the timed opens stay cold
        with VectorizedDocument.open(path, pool_pages=pool_pages) as disk:
            assert _answers(disk) == mem_answers, "disk answers diverge"

        regimes = []

        # cold + small bounded pool
        disk = VectorizedDocument.open(path, pool_pages=pool_pages)
        base = disk.pool.stats.as_dict()
        t = _run_both(disk)
        regimes.append(("cold/small", t, _io_delta(disk.pool, base)))

        # warm columns, same small pool
        base = disk.pool.stats.as_dict()
        t = _run_both(disk)
        regimes.append(("warm/small", t, _io_delta(disk.pool, base)))
        disk.close()

        # cold + unbounded pool
        disk = VectorizedDocument.open(path, pool_pages=None)
        base = disk.pool.stats.as_dict()
        t = _run_both(disk)
        regimes.append(("cold/unbounded", t, _io_delta(disk.pool, base)))

        # pool-warm: drop the numpy columns, keep every page resident
        disk.drop_caches()
        base = disk.pool.stats.as_dict()
        t = _run_both(disk)
        regimes.append(("poolwarm/unbounded", t,
                        _io_delta(disk.pool, base)))
        disk.close()

        # cold again, checksums off: prices the format-v2 verification
        disk = open_vdoc(path, pool_pages=None, verify_checksums=False)
        base = disk.pool.stats.as_dict()
        t = _run_both(disk)
        regimes.append(("cold/noverify", t, _io_delta(disk.pool, base)))
        disk.close()

        io_by_name = {}
        times = {}
        for name, t, io in regimes:
            io_by_name[name] = io
            times[name] = t
            records.append({
                "n_people": n_people,
                "file_bytes": summary["bytes"],
                "file_pages": summary["pages"],
                "page_size": page_size,
                "pool_pages": pool_pages if "small" in name else None,
                "regime": name,
                "t_s": t,
                **{f"io_{k}": v for k, v in io.items()},
            })

        # expected I/O profiles
        if io_by_name["warm/small"]["pages_read"] != 0:
            failures.append(f"n={n_people}: warm columns still read pages")
        if io_by_name["poolwarm/unbounded"]["pages_read"] != 0:
            failures.append(f"n={n_people}: unbounded pool rescan missed")
        for name in ("cold/small", "cold/unbounded"):
            if io_by_name[name]["pages_read"] > summary["pages"]:
                failures.append(f"n={n_people}: {name} read more pages than "
                                f"the whole file (scan-once broken)")
        if io_by_name["cold/small"]["evictions"] == 0 \
                and io_by_name["cold/small"]["pages_read"] > pool_pages:
            failures.append(f"n={n_people}: small pool never evicted")
        if io_by_name["cold/noverify"]["pages_read"] != \
                io_by_name["cold/unbounded"]["pages_read"]:
            failures.append(f"n={n_people}: noverify run changed the "
                            f"physical read count")

        # checksum overhead: verified cold pass vs. the noverify twin
        t_verify, t_plain = times["cold/unbounded"], times["cold/noverify"]
        overhead = t_verify / t_plain - 1.0 if t_plain > 0 else 0.0
        overheads[n_people] = overhead
        print(f"   checksum overhead (cold): {overhead * 100:+.1f}%"
              + ("" if t_plain >= CRC_TIMING_FLOOR_S
                 else "  [below timing floor, not asserted]"))
        if t_plain >= CRC_TIMING_FLOOR_S and overhead > MAX_CRC_OVERHEAD:
            failures.append(
                f"n={n_people}: checksum verification costs "
                f"{overhead * 100:.1f}% on the cold path "
                f"(budget {MAX_CRC_OVERHEAD * 100:.0f}%)")

    repo_records, repo_failures = run_repo_regime(
        sizes, pool_pages, page_size, tmpdir)
    failures.extend(repo_failures)

    prune_records, prune_failures = run_prune_regime(
        sizes, pool_pages, page_size, tmpdir)
    failures.extend(prune_failures)

    comp_records, comp_failures = run_compression_regime(
        sizes, pool_pages, page_size, tmpdir)
    failures.extend(comp_failures)

    headers = ["people", "regime", "time (ms)", "reads", "hits", "evict"]
    rows = [[human_count(r["n_people"]), r["regime"], f"{r['t_s'] * 1e3:.2f}",
             r["io_pages_read"], r["io_hits"], r["io_evictions"]]
            for r in records]
    print("\n" + fmt_table(headers, rows))

    payload = {
        "bench": "disk_backed_vdoc",
        "version": __version__,
        "sizes_n_people": list(sizes),
        "page_size": page_size,
        "pool_pages": pool_pages,
        "queries": {"xpath": XPATH, "xq": XQ},
        "records": records,
        "repo_regime": {
            "members": list(REPO_MEMBERS),
            "xq": REPO_XQ,
            "records": repo_records,
        },
        "prune_regime": {
            "hits": PRUNE_HITS,
            "misses": PRUNE_MISSES,
            "xq": REPO_XQ,
            "records": prune_records,
        },
        "compression_regime": {
            "xq": COMP_XQ,
            "page_slack": COMPRESSION_PAGE_SLACK,
            "max_cpu_overhead": MAX_CODEC_CPU_OVERHEAD,
            "records": comp_records,
        },
        "checksum_overhead": {str(n): round(v, 4)
                              for n, v in overheads.items()},
        "max_crc_overhead": MAX_CRC_OVERHEAD,
        "profile_failures": failures,
    }
    pathlib.Path(out_path).write_text(json.dumps(payload, indent=2) + "\n",
                                      encoding="utf-8")
    print(f"wrote {out_path}")

    if failures:
        print("FAIL: " + "; ".join(failures), file=sys.stderr)
        return 1 if do_assert else 0
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    ap.add_argument("--sizes", default=None,
                    help="comma-separated n_people sizes (default 500,2000,8000)")
    ap.add_argument("--smoke", action="store_true",
                    help="tiny documents for CI")
    ap.add_argument("--pool-pages", type=int, default=16,
                    help="bounded-pool size in pages (default 16)")
    ap.add_argument("--page-size", type=int, default=4096)
    ap.add_argument("--out", default=str(
        pathlib.Path(__file__).resolve().parent.parent / "BENCH_disk.json"))
    ap.add_argument("--no-assert", action="store_true")
    args = ap.parse_args(argv)

    if args.sizes:
        sizes = [int(s) for s in args.sizes.split(",")]
    elif args.smoke:
        sizes = [50, 200]
    else:
        sizes = [500, 2000, 8000]
    return run(sizes, args.pool_pages, args.page_size, args.out,
               not args.no_assert)


if __name__ == "__main__":
    sys.exit(main())
