"""repro — a from-scratch reproduction of "Vectorizing and Querying Large
XML Repositories" (Buneman et al., ICDE 2005).

Public entry points::

    from repro import VectorizedDocument, eval_query

    vdoc = VectorizedDocument.from_xml(xml_text)
    result = eval_query(vdoc, "/site/people/person[profile/age = '32']/name")
    result.count(); result.canonical()
"""

from .core.engine import eval_query, eval_xq
from .core.vdoc import VectorizedDocument
from .errors import (
    DecompressionForbiddenError,
    EngineInvariantError,
    ParseError,
    ReproError,
    XPathSyntaxError,
    XQCompileError,
    XQSyntaxError,
)
from .xmldata import parse, serialize

__version__ = "0.1.0"

__all__ = [
    "eval_query",
    "eval_xq",
    "VectorizedDocument",
    "parse",
    "serialize",
    "ReproError",
    "ParseError",
    "XPathSyntaxError",
    "XQSyntaxError",
    "XQCompileError",
    "DecompressionForbiddenError",
    "EngineInvariantError",
    "__version__",
]
