"""Admission control: bound what the buffer pool is asked to carry.

Every in-flight query holds a small number of transient page pins (heap
scans pin one page at a time, a fault-in adds one more), so unbounded
concurrency over a bounded pool eventually pins every frame and faults
with :class:`~repro.errors.PoolExhaustedError` mid-query.  The admission
layer makes that impossible in steady state: at most ``max_inflight``
queries evaluate at once, sized so their worst-case pins still leave the
clock sweep an evictable frame (:func:`size_inflight`); excess requests
wait in a *bounded* queue and are shed with HTTP 503 + ``Retry-After``
when the queue is full or the wait times out — overload degrades into
fast, explicit rejections instead of deadlock or corruption-shaped
errors.

The controller is a plain condition variable, FIFO-fair enough for a
query service: waiters are woken together and race for the freed slot;
the bounded queue keeps the race small.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

#: pin headroom budgeted per admitted query: a heap scan holds one pinned
#: page, stitching a fragmented record briefly overlaps two, and a
#: concurrent fault-in reserves one more — 4 leaves slack so the clock
#: always finds an unpinned victim.
PINS_PER_QUERY = 4


def size_inflight(workers: int, pool_capacity: int | None) -> int:
    """Max concurrently evaluating queries for a pool of
    ``pool_capacity`` frames: the configured worker count, capped so
    worst-case transient pins (``PINS_PER_QUERY`` each) can never pin
    every frame.  An unbounded pool imposes no cap."""
    workers = max(1, workers)
    if pool_capacity is None:
        return workers
    return max(1, min(workers, pool_capacity // PINS_PER_QUERY))


class OverloadError(Exception):
    """The service is at capacity: queue full or queue wait timed out.
    ``retry_after`` is the hint (seconds) for the HTTP 503 header;
    ``cause`` attributes the 503 for metrics (``"admission"`` here,
    ``"drain"`` when raised by a shutting-down server)."""

    def __init__(self, message: str, retry_after: float = 1.0,
                 cause: str = "admission"):
        super().__init__(message)
        self.retry_after = retry_after
        self.cause = cause


class AdmissionController:
    """``max_inflight`` concurrent slots + a bounded wait queue."""

    def __init__(self, max_inflight: int, max_queue: int = 64,
                 queue_timeout: float = 2.0):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.queue_timeout = queue_timeout
        self._cond = threading.Condition()
        self._inflight = 0
        self._queued = 0
        # monotonic totals for /stats
        self._admitted = 0
        self._rejected_full = 0
        self._rejected_timeout = 0

    @contextmanager
    def admit(self):
        """Hold one in-flight slot for the duration of the block.

        Raises :class:`OverloadError` immediately when the wait queue is
        full, or after ``queue_timeout`` seconds without a freed slot."""
        with self._cond:
            if self._inflight < self.max_inflight:
                self._inflight += 1
                self._admitted += 1
            elif self._queued >= self.max_queue:
                self._rejected_full += 1
                raise OverloadError(
                    f"at capacity: {self._inflight} in flight, "
                    f"{self._queued} queued (queue limit {self.max_queue})",
                    retry_after=self.queue_timeout)
            else:
                self._queued += 1
                try:
                    deadline = threading.TIMEOUT_MAX \
                        if self.queue_timeout is None else self.queue_timeout
                    got = self._cond.wait_for(
                        lambda: self._inflight < self.max_inflight,
                        timeout=deadline)
                    if not got:
                        self._rejected_timeout += 1
                        raise OverloadError(
                            f"queued {self.queue_timeout:.1f}s without a "
                            f"free slot ({self._inflight} in flight)",
                            retry_after=self.queue_timeout)
                    self._inflight += 1
                    self._admitted += 1
                finally:
                    self._queued -= 1
        try:
            yield
        finally:
            with self._cond:
                self._inflight -= 1
                self._cond.notify()

    def depth(self) -> dict:
        """Live queue/slot occupancy + monotonic admission totals."""
        with self._cond:
            return {
                "in_flight": self._inflight,
                "queued": self._queued,
                "max_inflight": self.max_inflight,
                "max_queue": self.max_queue,
                "admitted": self._admitted,
                "rejected_queue_full": self._rejected_full,
                "rejected_timeout": self._rejected_timeout,
            }
