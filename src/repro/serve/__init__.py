"""``repro.serve`` — a long-lived concurrent query service.

The paper's premise is *repositories queried by many users*; this package
is the serving face of the reproduction: a stdlib-only HTTP server
(``ThreadingHTTPServer``, no new dependencies) over one resident
:class:`~repro.repo.Repository` whose members share a single
concurrency-safe :class:`~repro.storage.buffer.BufferPool`.

Layers (one module each):

* :mod:`repro.serve.metrics` — lock-protected per-endpoint counters and
  log-bucketed latency histograms (p50/p99), served as JSON from
  ``GET /stats`` and logged on graceful shutdown;
* :mod:`repro.serve.admission` — admission control: a max-in-flight
  semaphore sized from the buffer pool's capacity plus a bounded wait
  queue; overload surfaces as HTTP 503 with ``Retry-After`` instead of
  pinning the pool into :class:`~repro.errors.PoolExhaustedError`;
* :mod:`repro.serve.server` — the endpoints (``POST /xq``,
  ``POST /xpath``, ``GET /repo``, ``GET /stats``, ``GET /healthz``),
  per-request :class:`~repro.core.context.EvalContext` isolation, and the
  ``repro-xq serve`` entry point.
"""

from .admission import AdmissionController, OverloadError, size_inflight
from .metrics import LatencyHistogram, Metrics
from .server import QueryServer, run_serve

__all__ = [
    "AdmissionController",
    "LatencyHistogram",
    "Metrics",
    "OverloadError",
    "QueryServer",
    "run_serve",
    "size_inflight",
]
