"""The query service: HTTP endpoints over one resident repository.

Endpoints (all bodies UTF-8)::

    POST /xq      body = XQ FLWR query   -> application/xml, the exact
                                            bytes ``repro-xq repo query``
                                            prints (X-Pruned header lists
                                            catalog-pruned members)
    POST /xpath   body = XPath           -> text/plain, per-member
                                            ``name: count N`` lines,
                                            byte-identical to the CLI
    GET  /repo    repository manifest summary (JSON)
    GET  /stats   live metrics: per-endpoint counters + p50/p99,
                  admission depth, pool counters incl. hit rate (JSON)
    GET  /healthz liveness probe

Concurrency model: ``ThreadingHTTPServer`` (one handler thread per
connection) over ONE shared, concurrency-safe
:class:`~repro.storage.buffer.BufferPool`.  Each request evaluates inside
its own :class:`~repro.core.context.EvalContext` — the unit of session
isolation — so the engine's invariants are machine-asserted *per request,
concurrently*: zero leaked pins (per-thread pin accounting, checked on
success and failure, re-checked by the handler after every evaluation)
and at most one full-column sweep per plan operation.  Admission control
(:mod:`repro.serve.admission`) bounds in-flight evaluations from the
pool's capacity and sheds overload as HTTP 503 + ``Retry-After``; the
observability endpoints bypass admission so the service stays inspectable
under load.

Error mapping: malformed queries → 400; overload (queue full/timeout or a
pool with every frame pinned) → 503 with a ``Retry-After`` scaled from
the observed median query time times the admission backlog; a cooperative
deadline expiry → 504; storage failures → 500 with the failing *member
named in the body* while sibling members stay queryable — a corrupt
document degrades that document, not the service.

Fault tolerance: each request runs under an optional **deadline** — the
server-wide ``--deadline`` budget, tightened per request by an
``X-Deadline-Ms`` header (a client may shorten its budget, never extend
the server's) — enforced at the engine's cooperative checkpoints and
unwound with zero leaked pins.  A member whose evaluation dies with a
storage failure is **quarantined** (skipped by later queries, reported
via the ``X-Quarantined`` response header, the ``degraded`` flag on
``GET /repo`` and a degraded-but-200 ``/healthz`` body) while a
supervisor thread re-verifies it under backoff and reinstates it once
the file fscks clean — an on-disk repair heals the serving set without
a restart.

Graceful shutdown (SIGTERM/SIGINT via ``repro-xq serve``): stop accepting
connections, drain in-flight queries, log the final metrics snapshot as
JSON on stderr, then close the pool — which asserts zero pinned pages, so
a clean exit *is* the zero-leaked-pins proof for the whole session.
"""

from __future__ import annotations

import json
import math
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..errors import (
    DeadlineExceededError,
    ParseError,
    PoolExhaustedError,
    ReproError,
    XPathSyntaxError,
    XQCompileError,
    XQSyntaxError,
)
from ..repo import Repository
from .admission import AdmissionController, OverloadError, size_inflight
from .metrics import Metrics

DEFAULT_WORKERS = 8
DEFAULT_QUEUE = 64
MAX_BODY = 1 << 20  # 1 MiB of query text is far beyond any sane query
DEFAULT_RESULT_CACHE_MB = 64.0  # cross-request result cache (0 disables)


class _BadRequest(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True      # a wedged handler can never block exit
    request_queue_size = 128   # listen backlog: burst connects must not
    app: "QueryServer" = None  # get RST before admission control sees them


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    #: idle keep-alive connections give their thread back after this
    timeout = 30.0
    #: the handler writes status line, headers and body as separate small
    #: sends; with Nagle on, a keep-alive client issuing back-to-back
    #: requests stalls ~40ms per response on the delayed-ACK interaction —
    #: dwarfing millisecond query evaluation
    disable_nagle_algorithm = True
    server: _HTTPServer

    # -- plumbing ----------------------------------------------------------

    def log_message(self, fmt, *args):  # noqa: A003 - stdlib signature
        if self.server.app.verbose:
            sys.stderr.write("serve: %s - %s\n"
                             % (self.address_string(), fmt % args))

    def _respond(self, status: int, body: bytes,
                 ctype: str = "text/plain; charset=utf-8",
                 headers: dict | None = None) -> None:
        try:
            self.send_response(status)
            self.send_header("Content-Type", ctype)
            self.send_header("Content-Length", str(len(body)))
            for k, v in (headers or {}).items():
                self.send_header(k, v)
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to salvage

    def _read_body(self) -> str:
        length = self.headers.get("Content-Length")
        if length is None:
            raise _BadRequest(411, "Content-Length required")
        try:
            n = int(length)
        except ValueError:
            raise _BadRequest(400, f"bad Content-Length {length!r}") from None
        if n < 0 or n > MAX_BODY:
            raise _BadRequest(413, f"body of {n} bytes exceeds the "
                                   f"{MAX_BODY}-byte limit")
        raw = self.rfile.read(n)
        if len(raw) != n:
            # a client that disconnected mid-body leaves a truncated
            # prefix, which may itself parse as a different valid query —
            # evaluating it would silently answer a question never asked
            raise _BadRequest(400, f"truncated body: got {len(raw)} of "
                                   f"{n} declared bytes")
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise _BadRequest(400, f"body is not valid UTF-8 ({exc})") \
                from None

    # -- GET: observability (never queued behind queries) ------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        app = self.server.app
        t0 = time.perf_counter()
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            # degraded stays HTTP 200: the process is alive and serving
            # (liveness probes must not restart a self-healing server) —
            # the body carries the degradation for readiness tooling
            quarantined = app.repo.quarantine.active()
            body = (b"ok\n" if not quarantined else
                    ("degraded: quarantined="
                     + ",".join(quarantined) + "\n").encode("utf-8"))
            status, ctype = 200, "text/plain; charset=utf-8"
        elif path == "/stats":
            body = (json.dumps(app.stats_snapshot(), indent=1) + "\n") \
                .encode("utf-8")
            status, ctype = 200, "application/json"
        elif path == "/repo":
            body = (json.dumps(app.repo_snapshot(), indent=1) + "\n") \
                .encode("utf-8")
            status, ctype = 200, "application/json"
        else:
            status, body, ctype = 404, b"error: no such endpoint\n", \
                "text/plain; charset=utf-8"
            path = "*unknown*"
        self._respond(status, body, ctype)
        app.metrics.observe(path, status, time.perf_counter() - t0)

    # -- POST: queries -----------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        path = self.path.split("?", 1)[0]
        if path == "/xq":
            self._handle_query("/xq", self.server.app.eval_xq_bytes)
        elif path == "/xpath":
            self._handle_query("/xpath", self.server.app.eval_xpath_bytes)
        else:
            # measured like every other request — a fake 0.0 would drag
            # the *unknown* histogram's quantiles toward the floor
            t0 = time.perf_counter()
            self._respond(404, b"error: no such endpoint\n")
            self.server.app.metrics.observe("*unknown*", 404,
                                            time.perf_counter() - t0)

    def _handle_query(self, endpoint: str, evaluator) -> None:
        app = self.server.app
        t0 = time.perf_counter()
        status, body, headers = 500, b"error: internal\n", {}
        ctype = "text/plain; charset=utf-8"
        leaked = 0
        cause = None
        try:
            if app.draining:
                raise OverloadError("shutting down", retry_after=1.0,
                                    cause="drain")
            text = self._read_body()
            deadline = app.request_deadline(
                self.headers.get("X-Deadline-Ms"))
            with app.admission.admit():
                try:
                    body, ctype, headers = evaluator(text, deadline)
                    status = 200
                finally:
                    # per-request invariant, also on error paths: this
                    # thread's net pin delta across the shared pool must
                    # be zero once evaluation is over
                    leaked = app.repo.pool.pinned_local()
                    if leaked:
                        app.metrics.note_pin_leak()
            if leaked:
                status, ctype, headers = 500, \
                    "text/plain; charset=utf-8", {}
                body = (f"error: invariant violated: {leaked} buffer-pool "
                        f"pin(s) leaked by this request\n").encode("utf-8")
        except OverloadError as exc:
            hint = app.retry_hint(exc.retry_after)
            status, headers = 503, {"Retry-After": str(max(1, round(hint)))}
            body = f"error: overloaded: {exc}\n".encode("utf-8")
            cause = exc.cause
        except PoolExhaustedError as exc:
            # pool-level overload (admission should make this unreachable;
            # if it happens it is shed load, not a broken file)
            status, headers = 503, {"Retry-After": "1"}
            body = f"error: overloaded: {exc}\n".encode("utf-8")
            cause = "pool"
        except DeadlineExceededError as exc:
            # the engine unwound at a cooperative checkpoint with zero
            # leaked pins — the request is over budget, the service fine
            status = 504
            body = f"error: deadline exceeded: {exc}\n".encode("utf-8")
            cause = "deadline"
        except (ParseError, XPathSyntaxError, XQSyntaxError,
                XQCompileError) as exc:
            status, body = 400, f"error: {exc}\n".encode("utf-8")
        except _BadRequest as exc:
            status, body = exc.status, f"error: {exc}\n".encode("utf-8")
        except ReproError as exc:
            # StorageError carries the failing member's name in its message
            status, body = 500, f"error: {exc}\n".encode("utf-8")
        self._respond(status, body, ctype if status == 200 else
                      "text/plain; charset=utf-8", headers)
        app.metrics.observe(endpoint, status, time.perf_counter() - t0,
                            cause=cause)


class QueryServer:
    """A resident :class:`~repro.repo.Repository` behind an HTTP front.

    ``workers`` bounds concurrent query evaluations; the effective bound
    (``max_inflight``) is additionally capped from the pool capacity so
    admitted queries can never pin every frame
    (:func:`~repro.serve.admission.size_inflight`).
    """

    def __init__(self, repo_dir: str, host: str = "127.0.0.1",
                 port: int = 0, pool_pages: int | None = None,
                 workers: int = DEFAULT_WORKERS,
                 max_queue: int = DEFAULT_QUEUE,
                 queue_timeout: float = 2.0, verify: bool = True,
                 verbose: bool = False,
                 result_cache_mb: float = DEFAULT_RESULT_CACHE_MB,
                 deadline: float | None = None):
        cache_bytes = int(result_cache_mb * (1 << 20))
        self.repo = Repository.open(repo_dir, pool_pages=pool_pages,
                                    verify=verify,
                                    result_cache_bytes=cache_bytes or None)
        #: server-wide per-request budget (seconds); X-Deadline-Ms may
        #: tighten it per request but never exceed it
        self.deadline = deadline
        # supervised recovery: quarantined members are re-verified in the
        # background and reinstated when their file fscks clean
        self.repo.start_supervisor()
        self.workers = max(1, workers)
        self.max_inflight = size_inflight(self.workers,
                                          self.repo.pool.capacity)
        self.admission = AdmissionController(self.max_inflight,
                                             max_queue=max_queue,
                                             queue_timeout=queue_timeout)
        self.metrics = Metrics()
        self.verbose = verbose
        self.draining = False
        self._closed = False
        self._final: dict | None = None
        self._thread: threading.Thread | None = None
        try:
            self._httpd = _HTTPServer((host, port), _Handler)
        except BaseException:
            self.repo.close()
            raise
        self._httpd.app = self

    # -- evaluation (called from handler threads) --------------------------

    def request_deadline(self, header: str | None) -> float | None:
        """The effective budget (seconds) for one request: the server's
        ``--deadline``, tightened by an ``X-Deadline-Ms`` header.  A
        client may shorten its own budget, never extend the server's."""
        if header is None:
            return self.deadline
        try:
            ms = float(header)
        except ValueError:
            raise _BadRequest(
                400, f"bad X-Deadline-Ms {header!r}: not a number") \
                from None
        if not ms > 0 or math.isinf(ms) or math.isnan(ms):
            raise _BadRequest(
                400, f"bad X-Deadline-Ms {header!r}: must be a positive "
                     f"finite millisecond count")
        seconds = ms / 1e3
        return seconds if self.deadline is None \
            else min(seconds, self.deadline)

    def retry_hint(self, fallback: float) -> float:
        """The 503 ``Retry-After`` estimate: the time for the current
        admission backlog to drain at the observed median query service
        time — ``p50 × (in flight + queued) / slots`` — instead of a
        constant.  Falls back to the admission layer's static hint until
        a median exists, and is capped so a latency spike cannot tell
        clients to go away for minutes."""
        p50 = self.metrics.query_p50()
        if not p50 or math.isinf(p50):
            return fallback
        depth = self.admission.depth()
        backlog = depth["in_flight"] + depth["queued"]
        return min(p50 * max(1, backlog) / self.max_inflight, 30.0)

    def eval_xq_bytes(self, query: str,
                      deadline: float | None = None) -> tuple:
        result = self.repo.xq(query, deadline=deadline)
        headers = {}
        if result.pruned:
            headers["X-Pruned"] = ",".join(result.pruned)
        if result.quarantined:
            # the response is degraded: these members were skipped
            headers["X-Quarantined"] = ",".join(result.quarantined)
        headers["X-Tuples"] = str(result.n_tuples)
        # the CLI prints to_xml() with print(): same bytes + newline
        return (result.to_xml() + "\n").encode("utf-8"), \
            "application/xml; charset=utf-8", headers

    def eval_xpath_bytes(self, query: str,
                         deadline: float | None = None) -> tuple:
        text = query.lstrip()
        if not text.startswith("/"):
            raise XPathSyntaxError(
                "/xpath body must be an XPath (starts with '/'); "
                "POST XQ queries to /xq")
        skipped: list = []
        lines = [f"{name}: count {res.count()}"
                 for name, res in self.repo.xpath(text, deadline=deadline,
                                                  skipped=skipped)]
        headers = ({"X-Quarantined": ",".join(sorted(skipped))}
                   if skipped else {})
        return ("\n".join(lines) + "\n").encode("utf-8"), \
            "text/plain; charset=utf-8", headers

    # -- reporting ---------------------------------------------------------

    def stats_snapshot(self) -> dict:
        pool = self.repo.pool
        snap = self.metrics.snapshot()
        snap["admission"] = self.admission.depth()
        snap["pool"] = {
            **pool.stats.as_dict(),
            "capacity": pool.capacity,
            "resident": pool.resident(),
            "pinned": pool.pinned_total(),
            "max_inflight": self.max_inflight,
        }
        snap["repository"] = {
            "name": self.repo.name,
            "members": len(self.repo.members()),
            "open_members": len(self.repo._open),
        }
        cache = self.repo.result_cache
        snap["result_cache"] = cache.stats() if cache is not None else None
        snap["quarantine"] = self.repo.quarantine.snapshot()
        return snap

    def repo_snapshot(self) -> dict:
        quarantined = set(self.repo.quarantine.active())
        members = [
            {
                "name": m["name"],
                "file": m["file"],
                "catalog_paths": len(m["paths"]),
                "values": sum(c for p, c in m["paths"]
                              if p and p[-1] == "#"),
                "quarantined": m["name"] in quarantined,
            }
            for m in self.repo.manifest["members"]
        ]
        return {
            "name": self.repo.name,
            "members": members,
            "degraded": bool(quarantined),
            "quarantined": sorted(quarantined),
            "pool_capacity": self.repo.pool.capacity,
            "workers": self.workers,
            "max_inflight": self.max_inflight,
            "deadline_s": self.deadline,
        }

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return host, port

    def url(self, path: str = "") -> str:
        host, port = self.address
        return f"http://{host}:{port}{path}"

    def start(self) -> "QueryServer":
        """Serve on a background thread (tests/benchmarks); returns self."""
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="repro-serve", daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`request_stop` (or
        ``_httpd.shutdown()``) is called from elsewhere."""
        self._httpd.serve_forever()

    def request_stop(self) -> None:
        """Signal-handler-safe: stop the accept loop from any thread."""
        self.draining = True
        threading.Thread(target=self._httpd.shutdown, daemon=True).start()

    def shutdown(self, drain_timeout: float = 10.0) -> dict:
        """Graceful stop: close the accept loop, drain in-flight queries,
        close pool (asserting zero pinned pages) and repository.  Returns
        the final metrics snapshot.  Idempotent."""
        if self._closed:
            return self._final or {}
        self.draining = True
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=drain_timeout)
        deadline = time.monotonic() + drain_timeout
        while time.monotonic() < deadline:
            depth = self.admission.depth()
            if not depth["in_flight"] and not depth["queued"]:
                break
            time.sleep(0.01)
        self._final = self.stats_snapshot()
        self._closed = True
        try:
            self._httpd.server_close()
        finally:
            # in-flight work is drained, so this asserts the session-wide
            # zero-leaked-pins invariant (raises StorageError otherwise)
            self.repo.pool.close()
            self.repo.close()
        return self._final

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def parse_chaos(spec: str):
    """``--chaos RATE[:SEED]`` → a live-server
    :class:`~repro.storage.faults.FaultInjector` (transient OSErrors,
    bitflips and torn reads on the pool's physical reads)."""
    from ..storage.faults import FaultInjector
    rate_s, _, seed_s = spec.partition(":")
    try:
        rate = float(rate_s)
        seed = int(seed_s) if seed_s else 0
    except ValueError:
        raise ValueError(
            f"bad --chaos spec {spec!r} (want RATE[:SEED], e.g. 0.05:7)") \
            from None
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"--chaos rate {rate} outside [0, 1]")
    return FaultInjector(seed=seed, rate=rate)


def run_serve(args) -> int:
    """``repro-xq serve`` entry point (argparse namespace in, exit code
    out).  SIGTERM/SIGINT trigger graceful shutdown; the final metrics
    snapshot is logged as one JSON line on stderr."""
    from ..storage import faults

    injector = None
    chaos_cm = None
    if getattr(args, "chaos", None):
        # installed before the repository opens so every member page file
        # is wrapped; stays installed until after drain
        try:
            injector = parse_chaos(args.chaos)
        except ValueError as exc:
            print(f"repro-xq: error: {exc}", file=sys.stderr)
            return 2
        chaos_cm = faults.inject(injector)
        chaos_cm.__enter__()
    try:
        server = QueryServer(
            args.dir, host=args.host, port=args.port, pool_pages=args.pool,
            workers=args.workers, max_queue=args.queue,
            queue_timeout=args.queue_timeout, verbose=args.verbose,
            result_cache_mb=args.result_cache,
            deadline=getattr(args, "deadline", None))
    except BaseException:
        if chaos_cm is not None:
            chaos_cm.__exit__(None, None, None)
        raise
    host, port = server.address
    pool = server.repo.pool.capacity
    print(f"serving repository {server.repo.name!r} "
          f"({len(server.repo.members())} members) on http://{host}:{port} "
          f"workers={server.workers} max_inflight={server.max_inflight} "
          f"pool={'unbounded' if pool is None else pool}"
          + (f" deadline={server.deadline}s" if server.deadline else "")
          + (f" chaos={args.chaos}" if injector is not None else ""),
          flush=True)

    def _on_signal(signum, frame):
        print(f"serve: received signal {signum}, shutting down",
              file=sys.stderr, flush=True)
        server.request_stop()

    previous = {s: signal.signal(s, _on_signal)
                for s in (signal.SIGTERM, signal.SIGINT)}
    try:
        server.serve_forever()
    finally:
        for s, h in previous.items():
            signal.signal(s, h)
        final = server.shutdown()
        if chaos_cm is not None:
            chaos_cm.__exit__(None, None, None)
        if injector is not None:
            final["chaos"] = {"ops": injector.ops,
                              "fired": dict(injector.by_kind)}
        print("serve: final stats " + json.dumps(final, sort_keys=True),
              file=sys.stderr, flush=True)
    return 0
