"""Live service metrics: request counters + latency histograms.

Everything here is updated on the request path, so the design goal is a
few dict/array bumps under one lock — no allocation, no sorting.  Latency
is recorded in a fixed log-bucketed histogram (factor √2 between bucket
bounds, ~±20% quantile resolution over 50µs .. hours), which makes
``p50``/``p99`` O(buckets) to read and the memory footprint constant no
matter how long the server runs.  Quantiles are reported as the upper
bound of the bucket holding the target rank — a conservative estimate
(never under-reports a latency regression).  A rank landing in the
overflow bucket has **no** finite upper bound, so ``quantile`` returns
``inf`` and ``as_dict`` reports ``null`` plus an explicit ``overflow``
count — clamping it to the last bound (~148 s) would silently
under-report exactly the latencies most worth alarming on.
"""

from __future__ import annotations

import bisect
import math
import threading
import time

#: bucket upper bounds in seconds: 50µs · √2^i — 44 buckets reach ~3.7h
_BOUNDS = [5e-05 * (2 ** (i / 2.0)) for i in range(44)]


class LatencyHistogram:
    """Fixed log-bucket latency histogram (not thread-safe on its own;
    :class:`Metrics` updates it under its lock)."""

    __slots__ = ("counts", "n", "total")

    def __init__(self) -> None:
        self.counts = [0] * (len(_BOUNDS) + 1)
        self.n = 0
        self.total = 0.0

    def observe(self, seconds: float) -> None:
        self.counts[bisect.bisect_left(_BOUNDS, seconds)] += 1
        self.n += 1
        self.total += seconds

    def quantile(self, q: float) -> float:
        """Upper bound (seconds) of the bucket holding rank ``ceil(q*n)``;
        0.0 before the first observation; ``inf`` when the rank falls in
        the overflow bucket (an observation beyond the last bound has no
        finite upper bound to report conservatively)."""
        if not self.n:
            return 0.0
        target = max(1, math.ceil(self.n * q))
        cum = 0
        for i, c in enumerate(self.counts):
            cum += c
            if cum >= target:
                return _BOUNDS[i] if i < len(_BOUNDS) else math.inf
        return math.inf

    @property
    def overflow(self) -> int:
        """Observations beyond the last bucket bound (~148 s)."""
        return self.counts[-1]

    def as_dict(self) -> dict:
        def _ms(seconds: float):
            # inf is not representable in JSON: report null, with the
            # explicit overflow count alongside as the marker
            return None if math.isinf(seconds) else round(seconds * 1e3, 3)

        return {
            "count": self.n,
            "mean_ms": round(self.total / self.n * 1e3, 3) if self.n
            else 0.0,
            "p50_ms": _ms(self.quantile(0.50)),
            "p99_ms": _ms(self.quantile(0.99)),
            "overflow": self.overflow,
        }


class _Endpoint:
    __slots__ = ("requests", "errors", "by_status", "latency")

    def __init__(self) -> None:
        self.requests = 0
        self.errors = 0
        self.by_status: dict[int, int] = {}
        self.latency = LatencyHistogram()


class Metrics:
    """Thread-safe service counters: per-endpoint requests/errors/status
    codes + latency, plus service-level invariant counters (``pin_leaks``
    must stay 0 — the serve tests and benchmark assert it)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._endpoints: dict[str, _Endpoint] = {}
        self.started = time.time()
        self.pin_leaks = 0       # per-request leaked-pin assertions tripped
        # 503s attributed by cause — conflating them made every drain
        # rejection and pool exhaustion look like admission pressure:
        self.overloads = 0       # shed by admission control (queue/timeout)
        self.drain_rejects = 0   # rejected during graceful shutdown
        self.pool_exhausted = 0  # every pool frame pinned mid-query
        self.timeouts = 0        # 504s: cooperative deadlines exceeded

    def observe(self, endpoint: str, status: int, seconds: float,
                cause: str | None = None) -> None:
        """Record one finished request.  For a 503, ``cause`` attributes
        it: ``"admission"`` (or ``None``) counts as an overload shed,
        ``"drain"`` as a shutdown rejection, ``"pool"`` as pool
        exhaustion."""
        with self._lock:
            ep = self._endpoints.get(endpoint)
            if ep is None:
                ep = self._endpoints[endpoint] = _Endpoint()
            ep.requests += 1
            ep.by_status[status] = ep.by_status.get(status, 0) + 1
            if status >= 400:
                ep.errors += 1
            if status == 503:
                if cause == "drain":
                    self.drain_rejects += 1
                elif cause == "pool":
                    self.pool_exhausted += 1
                else:
                    self.overloads += 1
            if status == 504:
                self.timeouts += 1
            ep.latency.observe(seconds)

    def query_p50(self, endpoints: tuple = ("/xq", "/xpath")) -> float:
        """The median *service* time (seconds) observed across the query
        endpoints, merged rank-wise over their shared bucket bounds — the
        input to the 503 ``Retry-After`` estimate.  0.0 before any query
        has completed; ``inf`` when the median fell in the overflow
        bucket (the hint falls back to its static default then)."""
        with self._lock:
            counts = [0] * (len(_BOUNDS) + 1)
            n = 0
            for name in endpoints:
                ep = self._endpoints.get(name)
                if ep is None:
                    continue
                for i, c in enumerate(ep.latency.counts):
                    counts[i] += c
                n += ep.latency.n
            if not n:
                return 0.0
            target = max(1, math.ceil(n * 0.5))
            cum = 0
            for i, c in enumerate(counts):
                cum += c
                if cum >= target:
                    return _BOUNDS[i] if i < len(_BOUNDS) else math.inf
            return math.inf

    def note_pin_leak(self) -> None:
        with self._lock:
            self.pin_leaks += 1

    def snapshot(self) -> dict:
        """One consistent JSON-ready view of every counter."""
        with self._lock:
            endpoints = {
                name: {
                    "requests": ep.requests,
                    "errors": ep.errors,
                    "by_status": {str(k): v
                                  for k, v in sorted(ep.by_status.items())},
                    **ep.latency.as_dict(),
                }
                for name, ep in sorted(self._endpoints.items())
            }
            return {
                "uptime_s": round(time.time() - self.started, 3),
                "requests": sum(e.requests
                                for e in self._endpoints.values()),
                "pin_leaks": self.pin_leaks,
                "overloads": self.overloads,
                "drain_rejects": self.drain_rejects,
                "pool_exhausted": self.pool_exhausted,
                "timeouts": self.timeouts,
                "endpoints": endpoints,
            }
