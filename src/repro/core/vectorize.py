"""Vectorizer: event stream -> (skeleton, vectors) in one linear pass
(Prop 2.1).

The parser's event stream is consumed directly — the node tree is never
built.  A stack of open elements accumulates child ids bottom-up; on each
end event the children runs are collapsed and the node hash-consed.  Text
(and attribute) values are appended to the vector keyed by the current
root-to-text label path.
"""

from __future__ import annotations

from ..xmldata.parser import iterparse, tree_events
from .skeleton import NodeStore, collapse_runs
from .vectors import Vector


def vectorize_events(events, store: NodeStore | None = None):
    """Consume parse events; return ``(store, root_id, vectors)``."""
    store = store or NodeStore()
    text_id = store.text_id
    path: list[str] = []  # current label path (root .. open element)
    frames: list[list[int]] = []  # child-id accumulator per open element
    raw: dict[tuple, list[str]] = {}
    root_id: int | None = None

    for ev in events:
        kind = ev[0]
        if kind == "start":
            label = ev[1]
            path.append(label)
            children: list[int] = []
            for name, value in ev[2]:
                attr_path = (*path, "@" + name, "#")
                raw.setdefault(attr_path, []).append(value)
                children.append(store.intern("@" + name, ((text_id, 1),)))
            frames.append(children)
        elif kind == "text":
            raw.setdefault((*path, "#"), []).append(ev[1])
            frames[-1].append(text_id)
        else:  # end
            label = path.pop()
            child_ids = frames.pop()
            nid = store.intern(label, collapse_runs(child_ids))
            if frames:
                frames[-1].append(nid)
            else:
                root_id = nid

    if root_id is None:
        raise ValueError("empty event stream")
    vectors = {p: Vector(p, vals) for p, vals in raw.items()}
    return store, root_id, vectors


def vectorize_xml(text: str, store: NodeStore | None = None):
    """Vectorize XML text directly from the streaming parser."""
    return vectorize_events(iterparse(text), store)


def vectorize_tree(root, store: NodeStore | None = None):
    """Vectorize an existing node tree (re-emits its event stream)."""
    return vectorize_events(tree_events(root), store)
