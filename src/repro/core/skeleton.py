"""Compressed skeleton: a hash-consed DAG with run-length edges (paper §2.2).

A skeleton node is ``(label, children)`` where ``children`` is a tuple of
``(child_id, count)`` runs — maximal runs of consecutive identical children
collapsed into one edge annotated with a multiplicity, exactly the paper's
``#[3]`` notation.  Identical subtrees are interned to a single id
("folkloric hash-consing"), so the skeleton of a regular document is
exponentially smaller than the tree it represents.

The text marker is the unique node with label ``#`` and no children;
attributes appear as ``@name`` nodes whose single child is the text marker.

Per-node statistics ``occ(node, relative-label-path)`` — the number of
occurrences of a label path under *one* instance of the node — are the
basis of the run-length position algebra in :mod:`repro.core.paths`: all
occurrences in a run share a skeleton node and therefore share these
statistics, which is what makes position maps arithmetic progressions.
They are computed by :meth:`NodeStore.occ_column` as bulk passes over the
whole store in topological order (node ids are already topological: a
child is always interned before its parents), one numpy column per path
suffix — no recursion, so arbitrarily long relative paths are safe, and
the planner gets the statistics of *every* node for the cost of one.
"""

from __future__ import annotations

import threading

import numpy as np

TEXT_LABEL = "#"

Runs = tuple  # tuple[(child_id, count), ...]


def collapse_runs(child_ids: list[int]) -> Runs:
    """Collapse consecutive identical child ids into (id, count) runs."""
    runs: list[tuple[int, int]] = []
    for cid in child_ids:
        if runs and runs[-1][0] == cid:
            runs[-1] = (cid, runs[-1][1] + 1)
        else:
            runs.append((cid, 1))
    return tuple(runs)


class NodeStore:
    """Interning store for skeleton nodes.

    Ids are dense ints; node 0 is always the text marker ``#``.  The store is
    append-only and may be shared between documents (input and output of a
    query share one store so result construction can reuse subtree ids).
    """

    def __init__(self) -> None:
        self._labels: list[str] = []
        self._children: list[Runs] = []
        self._intern: dict[tuple[str, Runs], int] = {}
        self._occ_cols: dict[tuple[str, ...], np.ndarray] = {}
        self._size_memo: dict[int, int] = {}
        self._intern_lock = threading.Lock()
        self.text_id = self.intern(TEXT_LABEL, ())

    # -- construction -----------------------------------------------------

    def intern(self, label: str, children: Runs) -> int:
        """Intern ``(label, children)``; safe under concurrent result
        construction (a repository member's store is shared by every
        request evaluating it).  The fast path is a lock-free dict hit; a
        miss appends under the lock, ``_children`` before ``_labels`` and
        the intern entry last, so lock-free readers iterating up to
        ``len(self._labels)`` never see a node whose children are missing.
        """
        key = (label, children)
        nid = self._intern.get(key)
        if nid is None:
            with self._intern_lock:
                nid = self._intern.get(key)
                if nid is None:
                    nid = len(self._labels)
                    self._children.append(children)
                    self._labels.append(label)
                    self._intern[key] = nid
        return nid

    def intern_list(self, label: str, child_ids: list[int]) -> int:
        return self.intern(label, collapse_runs(child_ids))

    # -- accessors --------------------------------------------------------

    def label(self, nid: int) -> str:
        return self._labels[nid]

    def children(self, nid: int) -> Runs:
        return self._children[nid]

    def is_text(self, nid: int) -> bool:
        return nid == self.text_id

    def __len__(self) -> int:
        """Total interned nodes (across all documents sharing the store)."""
        return len(self._labels)

    # -- statistics -------------------------------------------------------

    def occ_column(self, relpath: tuple[str, ...]) -> np.ndarray:
        """Bulk statistics: ``occ(n, relpath)`` for *every* interned node,
        as one int64 column indexed by node id.

        Computed iteratively, suffix by suffix (shortest first), each level
        one pass over the store in id order — which *is* topological order,
        because the store is append-only and children are interned before
        their parents.  Columns are cached per suffix and extended
        incrementally when new nodes are interned later (e.g. by result
        construction), so the total cost stays O(|S| * |relpath|).
        """
        n = len(self._labels)
        if not relpath:
            return np.ones(n, dtype=np.int64)
        children = self._children
        labels = self._labels
        sub = np.ones(n, dtype=np.int64)  # occ of the empty suffix
        for k in range(len(relpath) - 1, -1, -1):
            suffix = relpath[k:]
            col = self._occ_cols.get(suffix)
            if col is not None and len(col) == n:
                sub = col
                continue
            start = 0 if col is None else len(col)
            head = relpath[k]
            out = np.empty(n, dtype=np.int64)
            if start:
                out[:start] = col
            for nid in range(start, n):
                total = 0
                for child, count in children[nid]:
                    if labels[child] == head:
                        total += count * int(sub[child])
                out[nid] = total
            self._occ_cols[suffix] = out
            sub = out
        return sub

    def occ(self, nid: int, relpath: tuple[str, ...]) -> int:
        """Occurrences of ``relpath`` under one instance of ``nid``.

        ``occ(n, ())`` is 1; ``occ(n, (l, *rest))`` sums ``count *
        occ(child, rest)`` over child runs labelled ``l``.  Backed by the
        bulk columns of :meth:`occ_column`.
        """
        if not relpath:
            return 1
        return int(self.occ_column(relpath)[nid])

    def node_count(self, nid: int) -> int:
        """Size of the *decompressed* tree rooted at ``nid`` (iterative)."""
        memo = self._size_memo
        if nid in memo:
            return memo[nid]
        stack = [nid]
        while stack:
            cur = stack[-1]
            if cur in memo:
                stack.pop()
                continue
            missing = [c for c, _ in self._children[cur] if c not in memo]
            if missing:
                stack.extend(missing)
                continue
            memo[cur] = 1 + sum(k * memo[c] for c, k in self._children[cur])
            stack.pop()
        return memo[nid]

    def reachable(self, root: int) -> set[int]:
        """Skeleton node ids reachable from ``root`` (DAG nodes, not tree)."""
        seen: set[int] = set()
        stack = [root]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(c for c, _ in self._children[cur] if c not in seen)
        return seen

    def edge_count(self, root: int) -> int:
        """Run-length edges among nodes reachable from ``root``."""
        return sum(len(self._children[n]) for n in self.reachable(root))
