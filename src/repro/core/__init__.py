"""Core of the vectorized store: skeletons, vectors, position algebra,
XPath evaluators and the query engine."""

from .engine import TreeResult, XQTreeResult, XQVXResult, eval_query, eval_xq
from .paths import ExtendedVector, PathIndex, PathsCatalog, ranges_to_ordinals
from .reconstruct import forbid_decompression
from .reconstruct import reconstruct as reconstruct_tree
from .skeleton import NodeStore, collapse_runs
from .vdoc import VectorizedDocument
from .vectorize import vectorize_events, vectorize_tree, vectorize_xml
from .vectors import Vector

__all__ = [
    "TreeResult",
    "XQTreeResult",
    "XQVXResult",
    "eval_query",
    "eval_xq",
    "ExtendedVector",
    "PathIndex",
    "PathsCatalog",
    "ranges_to_ordinals",
    "forbid_decompression",
    "reconstruct_tree",
    "NodeStore",
    "collapse_runs",
    "VectorizedDocument",
    "vectorize_events",
    "vectorize_tree",
    "vectorize_xml",
    "Vector",
]
