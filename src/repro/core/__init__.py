"""Core of the vectorized store: skeletons, vectors, position algebra,
XPath evaluators and the query engine."""

from .engine import TreeResult, eval_query
from .paths import ExtendedVector, PathIndex, PathsCatalog, ranges_to_ordinals
from .reconstruct import forbid_decompression
from .reconstruct import reconstruct as reconstruct_tree
from .skeleton import NodeStore, collapse_runs
from .vdoc import VectorizedDocument
from .vectorize import vectorize_events, vectorize_tree, vectorize_xml
from .vectors import Vector

__all__ = [
    "TreeResult",
    "eval_query",
    "ExtendedVector",
    "PathIndex",
    "PathsCatalog",
    "ranges_to_ordinals",
    "forbid_decompression",
    "reconstruct_tree",
    "NodeStore",
    "collapse_runs",
    "VectorizedDocument",
    "vectorize_events",
    "vectorize_tree",
    "vectorize_xml",
    "Vector",
]
