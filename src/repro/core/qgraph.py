"""Query graphs (paper §3.3): compile an XQ query into ``Gq`` + ``Gr``.

``Gq`` is a graph over the query's ``for`` variables:

* **tree edges** — each variable is reached from its parent variable by a
  relative path (projections); root variables carry an absolute XPath;
* **constant edges** — ``$x/p op 'c'`` qualifiers (selections);
* **equality edges** — ``$x/p1 op $y/p2`` qualifiers (joins; the paper's
  formal fragment has ``=`` only, the other comparators are the DESIGN.md
  extension).

``Gr`` is the result skeleton: the return-clause template with its
parameter slots (splices) flattened in template order, which is exactly
the order result construction emits values in.

The compiler also normalizes selection/join operand paths to text paths
(appending the ``#`` marker) and validates variable references, so the
planner and the reduction engine can assume a well-formed graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import XQCompileError
from .xquery.ast import (
    AbsSource,
    Const,
    TElem,
    TSplice,
    TText,
    XQuery,
)
from .xquery.rewrite import normalize


@dataclass(frozen=True)
class TreeEdge:
    """Projection: ``var`` is bound to ``parent``/steps (``parent`` is None
    for root variables, whose ``abs_path`` is an absolute XPath)."""

    var: str
    parent: str | None
    steps: tuple = ()      # tuple[Step, ...] for relative bindings
    abs_path: object = None  # xpath.ast.Path for root bindings

    def __str__(self) -> str:
        if self.parent is None:
            return f"${self.var} <- {self.abs_path}"
        rel = "".join(str(s) for s in self.steps)
        return f"${self.var} <- ${self.parent}{rel}"


@dataclass(frozen=True)
class ConstEdge:
    """Selection: existentially compare text at ``$var/rel`` to a constant.
    ``rel`` is normalized to end at the text marker ``#``."""

    var: str
    rel: tuple
    op: str
    value: str

    def __str__(self) -> str:
        rel = "/".join(c for c in self.rel)
        return f"${self.var}/{rel} {self.op} '{self.value}'"


@dataclass(frozen=True)
class EqEdge:
    """Join: existentially compare text at ``$var1/rel1`` with text at
    ``$var2/rel2`` (both rels normalized to ``#``)."""

    var1: str
    rel1: tuple
    op: str
    var2: str
    rel2: tuple

    def __str__(self) -> str:
        r1 = "/".join(self.rel1)
        r2 = "/".join(self.rel2)
        return f"${self.var1}/{r1} {self.op} ${self.var2}/{r2}"


@dataclass
class QueryGraph:
    """``Gq``: variables in declaration order plus the three edge kinds.

    ``collection`` is the repository collection every root variable ranges
    over (``None`` for single-document queries); the compiler rejects
    mixed-collection queries, so the repository layer can evaluate ``Gq``
    member by member."""

    variables: list[str] = field(default_factory=list)
    tree_edges: dict[str, TreeEdge] = field(default_factory=dict)
    selections: list[ConstEdge] = field(default_factory=list)
    joins: list[EqEdge] = field(default_factory=list)
    collection: str | None = None

    def children_of(self, var: str) -> list[str]:
        return [v for v in self.variables
                if self.tree_edges[v].parent == var]


@dataclass
class ResultSkeleton:
    """``Gr``: the return-clause template plus its flattened slots."""

    root_tag: str
    items: tuple  # template forest (TElem | TText | TSplice)
    slots: list[TSplice] = field(default_factory=list)


def _norm_text_rel(rel: tuple) -> tuple:
    """Normalize a comparison operand path to end at the text marker."""
    if not rel or rel[-1] != "#":
        return (*rel, "#")
    return rel


def compile_query(xq: XQuery) -> tuple[QueryGraph, ResultSkeleton]:
    """Compile a (possibly let-carrying) XQ query into ``(Gq, Gr)``."""
    xq = normalize(xq)
    gq = QueryGraph()
    for b in xq.bindings:
        if b.var in gq.tree_edges:
            raise XQCompileError(f"duplicate variable ${b.var}")
        if isinstance(b.source, AbsSource):
            if b.source.collection is not None:
                if gq.collection not in (None, b.source.collection):
                    raise XQCompileError(
                        f"for ${b.var}: a query may range over at most one "
                        f"collection ({gq.collection!r} vs "
                        f"{b.source.collection!r})")
                gq.collection = b.source.collection
            edge = TreeEdge(b.var, None, (), b.source.path)
        else:
            if b.source.var not in gq.tree_edges:
                raise XQCompileError(
                    f"for ${b.var}: unknown base variable ${b.source.var} "
                    "(variables may only reference earlier bindings)")
            edge = TreeEdge(b.var, b.source.var, b.source.steps)
        gq.variables.append(b.var)
        gq.tree_edges[b.var] = edge

    def check_var(var: str, where: str) -> None:
        if var not in gq.tree_edges:
            raise XQCompileError(f"unknown variable ${var} in {where}")

    for comp in xq.where:
        left, right = comp.left, comp.right
        if isinstance(left, Const) and isinstance(right, Const):
            raise XQCompileError("constant-only comparison in where clause")
        if isinstance(left, Const):
            # flip so the variable is on the left; mirror the operator
            flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
            left, right = right, left
            comp_op = flip.get(comp.op, comp.op)
        else:
            comp_op = comp.op
        check_var(left.var, "where clause")
        if isinstance(right, Const):
            gq.selections.append(ConstEdge(
                left.var, _norm_text_rel(left.rel), comp_op, right.value))
        else:
            check_var(right.var, "where clause")
            gq.joins.append(EqEdge(
                left.var, _norm_text_rel(left.rel), comp_op,
                right.var, _norm_text_rel(right.rel)))

    gr = ResultSkeleton(xq.root_tag, xq.ret)

    def walk(item) -> None:
        if isinstance(item, TSplice):
            check_var(item.var, "return template")
            gr.slots.append(item)
        elif isinstance(item, TElem):
            for c in item.children:
                walk(c)
        else:
            assert isinstance(item, TText)

    for item in xq.ret:
        walk(item)
    return gq, gr
