"""Reconstruction: (skeleton, vectors) -> node tree, linear in the output
(Prop 2.2) — i.e. full skeleton *decompression*.

This is deliberately the only place the DAG is expanded back into a tree.
Every call bumps a module counter, and :func:`forbid_decompression` turns any
call inside its scope into an error: the engine wraps the vectorized
evaluator in that guard, making "querying without decompression" an enforced
invariant rather than a comment.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from ..errors import DecompressionForbiddenError
from ..xmldata.model import Element, Text
from .skeleton import NodeStore, TEXT_LABEL

#: Total number of skeleton decompressions performed (test/bench hook).
DECOMPRESSION_COUNT = 0

# The guard depth is *per thread*: one server request evaluating inside
# forbid_decompression() must not make an unrelated thread's (legal)
# result-tree reconstruction raise.
_FORBID = threading.local()


def _forbid_depth() -> int:
    return getattr(_FORBID, "depth", 0)


@contextmanager
def forbid_decompression():
    """Raise :class:`DecompressionForbiddenError` on any reconstruction
    attempted inside this context (on this thread)."""
    _FORBID.depth = _forbid_depth() + 1
    try:
        yield
    finally:
        _FORBID.depth -= 1


def reconstruct(store: NodeStore, root_id: int, vectors) -> Element:
    """Decompress ``(S, V)`` back into a document tree.

    Walks the skeleton in preorder, expanding run-length edges, and pulls
    text values from per-path cursors — each vector is consumed left to
    right exactly once, so the whole pass is linear in the output tree.
    """
    global DECOMPRESSION_COUNT
    if _forbid_depth():
        raise DecompressionForbiddenError(
            "skeleton decompression attempted inside forbid_decompression()"
        )
    DECOMPRESSION_COUNT += 1

    cursors: dict[tuple, int] = {}

    def read(path: tuple) -> str:
        i = cursors.get(path, 0)
        cursors[path] = i + 1
        return vectors[path].at(i)

    root_label = store.label(root_id)
    root = Element(root_label)
    # Frames: (node_id, element, label path); children are expanded in
    # document order, so per-path cursor order equals document order.
    stack: list[tuple[int, Element, tuple]] = [(root_id, root, (root_label,))]
    while stack:
        nid, elem, path = stack.pop()
        pending: list[tuple[int, Element, tuple]] = []
        for child, count in store.children(nid):
            label = store.label(child)
            if label == TEXT_LABEL:
                for _ in range(count):
                    elem.append(Text(read((*path, "#"))))
            elif label.startswith("@"):
                for _ in range(count):
                    elem.attrs[label[1:]] = read((*path, label, "#"))
            else:
                child_path = (*path, label)
                for _ in range(count):
                    sub = Element(label)
                    elem.append(sub)
                    pending.append((child, sub, child_path))
        stack.extend(reversed(pending))
    return root
