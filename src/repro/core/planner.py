"""Heuristic operation ordering for graph reduction (paper §4.1, step 3).

``Gq`` is reduced one edge at a time; the order is a topological sort of
the operations (a variable must be instantiated before anything that
filters it) refined by the classic relational heuristics the paper cites:

* **selections before joins** — constant edges are applied as soon as
  their variable is instantiated, joins only once both sides are;
* **cheapest vector first** — among ready selections (and ready joins)
  the one whose operand vector is smallest goes first, estimated from the
  skeleton's bulk ``occ`` statistics (``extension_total`` — no vector is
  touched to plan);
* projections that unlock selections are preferred over bare projections,
  tie-broken by smallest estimated instantiation.

Every tie is broken by a stable integer **op id** assigned from the query
graph (variables, then selections, then joins, each in graph order), so
repeated compiles of the same query against the same statistics produce
the *identical* plan — plan snapshots are reproducible.

**Index-aware access paths** — when the document carries persistent value
indexes (:mod:`repro.index`), each selection and equality join is priced
twice: the scan estimate (total matching text occurrences — the column
sweep) against the probe estimate (expected posting size ``n/u`` from the
catalog's distinct counts, plus the probe overhead).  The cheaper side
wins and the op is stamped ``access='index'`` or ``'scan'`` — the
``IndexProbe`` variant the reduction executes.  An op only becomes a
probe when *every* candidate concrete text path is indexed; the executor
still degrades to a scan per path if an index goes missing at run time.

The plan is computed once per query against aggregate dataguide
statistics and reused for every concrete-path combination.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .qgraph import ConstEdge, EqEdge, QueryGraph, TreeEdge
from .xpath.vx_eval import _alignments

#: probe cost floor: hash + two searchsorted calls have a fixed overhead
#: that a scan over a tiny vector does not
PROBE_OVERHEAD = 16.0
#: assumed selectivity of a range (ordering-operator) probe
RANGE_FRACTION = 1 / 3
#: relative cost of an integer sweep over dictionary codes vs a string
#: sweep over the column (no decode, fixed-width compares)
DICT_SWEEP_FRACTION = 0.25


@dataclass(frozen=True)
class PlanOp:
    kind: str      # 'instantiate' | 'select' | 'join'
    payload: TreeEdge | ConstEdge | EqEdge
    cost: float    # statistics estimate of the *chosen* access path
    op_id: int = 0           # stable id from the query graph (tie-breaks)
    access: str = "scan"     # 'scan' | 'index' | 'dict'
    scan_cost: float = 0.0   # the scan estimate (== cost when scanning)

    def __str__(self) -> str:
        est = f"est {self.cost:.0f}"
        if self.access != "scan":
            est += f", scan {self.scan_cost:.0f}"
        return f"{self.kind:11s} [{self.access:5s}] {self.payload}  ({est})"


@dataclass
class Plan:
    ops: list[PlanOp]
    #: variable -> candidate concrete label paths (dataguide matches),
    #: computed once here and reused by combo enumeration in the reduction
    var_paths: dict[str, list[tuple]] = field(default_factory=dict)

    def explain(self) -> str:
        return "\n".join(f"{i + 1}. {op}" for i, op in enumerate(self.ops))


def candidate_var_paths(gq: QueryGraph,
                        guide: list[tuple]) -> dict[str, list[tuple]]:
    """Concrete label paths each variable may bind to, against any
    dataguide — the document's own, or a repository member's cataloged
    path list (which is how pruning prices a member without opening it)."""
    out: dict[str, list[tuple]] = {}
    for var in gq.variables:
        edge = gq.tree_edges[var]
        if edge.parent is None:
            steps = edge.abs_path.steps
            out[var] = [cp for cp in guide if _alignments(steps, cp)]
        else:
            matches: list[tuple] = []
            for base in out.get(edge.parent, ()):
                k = len(base)
                for g in guide:
                    if len(g) > k and g[:k] == base and \
                            _alignments(edge.steps, g[k:]):
                        matches.append(g)
            # distinct paths (several bases may reach the same guide entry)
            out[var] = list(dict.fromkeys(matches))
    return out


def _side_qpaths(cpaths: list[tuple], rel: tuple,
                 guide_set: set) -> list[tuple]:
    """The concrete text paths one comparison operand can touch: the
    variable's candidates extended by the relative path, kept when the
    dataguide holds them (plus the identity case for text-bound
    variables)."""
    out: list[tuple] = []
    for cp in cpaths:
        if cp[-1] == "#":
            if rel == ("#",):
                out.append(cp)
            continue
        q = (*cp, *rel)
        if q in guide_set:
            out.append(q)
    return list(dict.fromkeys(out))


def member_can_match(gq: QueryGraph, guide: list[tuple]) -> bool:
    """Can a document whose dataguide is ``guide`` contribute *any* tuple
    to ``gq``?  ``False`` is a proof of emptiness: some variable has no
    concrete path, or some selection/join operand resolves to no text path
    anywhere — the conjunctive existential then fails for every row (the
    reduction's ``_side() is None`` case), so the member can be skipped
    without reading a single page."""
    vp = candidate_var_paths(gq, guide)
    if any(not vp[v] for v in gq.variables):
        return False
    gset = set(guide)
    for s in gq.selections:
        if not _side_qpaths(vp[s.var], s.rel, gset):
            return False
    for j in gq.joins:
        if not _side_qpaths(vp[j.var1], j.rel1, gset) or \
                not _side_qpaths(vp[j.var2], j.rel2, gset):
            return False
    return True


def match_estimate(gq: QueryGraph, guide_counts: dict[tuple, int]) -> float:
    """Crude upper-bound tuple estimate from per-path occurrence counts
    alone (a member's manifest catalog): the product over variables of
    their candidates' total occurrences.  Used to order surviving
    repository members most-selective-first."""
    vp = candidate_var_paths(gq, list(guide_counts))
    est = 1.0
    for var in gq.variables:
        est *= float(max(sum(guide_counts[cp] for cp in vp[var]), 1))
    return est


def _var_paths(gq: QueryGraph, vdoc) -> dict[str, list[tuple]]:
    return candidate_var_paths(gq, vdoc.catalog.dataguide())


def _cardinality(vdoc, cpaths: list[tuple]) -> float:
    """Total occurrences over all candidate concrete paths."""
    catalog = vdoc.catalog
    total = 0
    for cp in cpaths:
        idx = catalog.index(cp)
        if idx is not None:
            total += idx.total
    return float(total)


def _text_cardinality(vdoc, cpaths: list[tuple], rel: tuple) -> float:
    """Total matching text occurrences under the candidate paths — the size
    of the vector(s) a selection/join side would scan."""
    catalog = vdoc.catalog
    total = 0
    for cp in cpaths:
        use_rel = rel
        if cp and cp[-1] == "#":
            use_rel = rel[:-1] if rel and rel[-1] == "#" else rel
        total += catalog.extension_total(cp, use_rel)
    return float(total)


def _probe_stats(vdoc, cpaths: list[tuple], rel: tuple, guide_set: set):
    """``(total n, total distinct)`` over the operand's text paths when
    *every* one carries a value index; ``None`` otherwise (no probe)."""
    qpaths = _side_qpaths(cpaths, rel, guide_set)
    if not qpaths:
        return None
    n_total, u_total = 0.0, 0.0
    for q in qpaths:
        stats = vdoc.vindex_stats(q)
        if stats is None:
            return None
        idx = vdoc.catalog.index(q)
        n_total += float(idx.total if idx is not None else 0)
        u_total += float(stats["distinct"])
    return n_total, u_total


def _dict_coded(vdoc, cpaths, rel, guide_set) -> bool:
    """Is *every* concrete text path of this operand stored
    dictionary-coded?  (Catalog lookup only — no page I/O.)  All paths
    must be coded: a mixed operand would decode the stragglers anyway,
    so it is priced as a plain scan."""
    qpaths = _side_qpaths(cpaths, rel, guide_set)
    return bool(qpaths) and \
        all(vdoc.codec_of(q) == "dict" for q in qpaths)


def _sel_access(vdoc, sel: ConstEdge, cpaths, guide_set, scan_cost: float,
                use_indexes: bool = True,
                use_codecs: bool = True) -> tuple[str, float]:
    """Choose the access path of one selection:
    ``('scan'|'index'|'dict', cost)``.

    Three candidates compete on estimated cost: the column sweep, the
    value-index probe (when every operand path is indexed), and — for
    equality operators over all-dictionary-coded operands — the
    code-space sweep (integer compares over the stored codes, no
    decode).  Ties prefer index over dict over scan (a probe touches the
    fewest pages, a code sweep the fewest CPU cycles)."""
    candidates = [(scan_cost, 2, "scan")]
    if use_indexes:
        stats = _probe_stats(vdoc, cpaths, sel.rel, guide_set)
        if stats is not None:
            n_total, u_total = stats
            if sel.op in ("=", "!="):
                # expected posting size of one key
                probe = n_total / max(u_total, 1.0) + PROBE_OVERHEAD
            else:
                # range probe: gathers + sorts an assumed fraction of rows
                probe = n_total * RANGE_FRACTION + PROBE_OVERHEAD
            candidates.append((probe, 0, "index"))
    if use_codecs and sel.op in ("=", "!=") and \
            _dict_coded(vdoc, cpaths, sel.rel, guide_set):
        candidates.append(
            (scan_cost * DICT_SWEEP_FRACTION + PROBE_OVERHEAD, 1, "dict"))
    cost, _, access = min(candidates)
    return access, cost


def _join_access(vdoc, join: EqEdge, var_paths, guide_set,
                 scan_cost: float) -> tuple[str, float]:
    """Choose the access path of one join.  Only ``=`` / ``!=`` have an
    index variant (dictionary-merge coding); ordering joins always scan."""
    if join.op not in ("=", "!="):
        return "scan", scan_cost
    s1 = _probe_stats(vdoc, var_paths[join.var1], join.rel1, guide_set)
    s2 = _probe_stats(vdoc, var_paths[join.var2], join.rel2, guide_set)
    if s1 is None or s2 is None:
        return "scan", scan_cost
    # dictionary merge is u-proportional; the per-row work drops from a
    # string sort to integer gathers — price it at a quarter of the sweep
    probe = (s1[1] + s2[1]) / 2 + (s1[0] + s2[0]) / 4 + PROBE_OVERHEAD
    if probe < scan_cost:
        return "index", probe
    return "scan", scan_cost


def plan_query(gq: QueryGraph, vdoc, use_indexes: bool = True,
               use_codecs: bool = True) -> Plan:
    """Topological + heuristic operation ordering for one document.

    ``use_indexes`` admits value-index probes, ``use_codecs`` admits the
    code-space (``access='dict'``) sweep for equality selections over
    dictionary-coded vectors — both are costing switches; results are
    byte-identical with any combination."""
    var_paths = _var_paths(gq, vdoc)
    guide_set = set(vdoc.catalog.dataguide())
    var_card = {v: _cardinality(vdoc, var_paths[v]) for v in gq.variables}
    # stable op ids: variables, then selections, then joins, in graph order
    var_id = {v: i for i, v in enumerate(gq.variables)}
    sel_id = {id(s): len(gq.variables) + i
              for i, s in enumerate(gq.selections)}
    join_id = {id(j): len(gq.variables) + len(gq.selections) + i
               for i, j in enumerate(gq.joins)}

    sel_plan: dict[int, tuple[str, float, float]] = {}
    for s in gq.selections:
        scan = _text_cardinality(vdoc, var_paths[s.var], s.rel)
        access, cost = _sel_access(vdoc, s, var_paths[s.var], guide_set,
                                   scan, use_indexes=use_indexes,
                                   use_codecs=use_codecs)
        sel_plan[id(s)] = (access, cost, scan)
    join_plan: dict[int, tuple[str, float, float]] = {}
    for j in gq.joins:
        scan = (_text_cardinality(vdoc, var_paths[j.var1], j.rel1)
                + _text_cardinality(vdoc, var_paths[j.var2], j.rel2))
        access, cost = (_join_access(vdoc, j, var_paths, guide_set, scan)
                        if use_indexes else ("scan", scan))
        join_plan[id(j)] = (access, cost, scan)

    placed: set[str] = set()
    pending_sel = list(gq.selections)
    pending_join = list(gq.joins)
    pending_var = list(gq.variables)
    ops: list[PlanOp] = []

    def flush_filters() -> None:
        """Apply every ready selection, then every ready join — cheapest
        first within each class, ties broken by op id."""
        while True:
            ready = [s for s in pending_sel if s.var in placed]
            if not ready:
                break
            ready.sort(key=lambda s: (sel_plan[id(s)][1], sel_id[id(s)]))
            s = ready[0]
            pending_sel.remove(s)
            access, cost, scan = sel_plan[id(s)]
            ops.append(PlanOp("select", s, cost, op_id=sel_id[id(s)],
                              access=access, scan_cost=scan))
        while True:
            ready = [j for j in pending_join
                     if j.var1 in placed and j.var2 in placed]
            if not ready:
                break
            ready.sort(key=lambda j: (join_plan[id(j)][1], join_id[id(j)]))
            j = ready[0]
            pending_join.remove(j)
            access, cost, scan = join_plan[id(j)]
            ops.append(PlanOp("join", j, cost, op_id=join_id[id(j)],
                              access=access, scan_cost=scan))

    while pending_var:
        ready = [v for v in pending_var
                 if gq.tree_edges[v].parent is None
                 or gq.tree_edges[v].parent in placed]
        assert ready, "tree edges form a forest over earlier bindings"
        # prefer instantiating a variable some pending selection filters
        with_sel = [v for v in ready
                    if any(s.var == v for s in pending_sel)]
        pool = with_sel or ready
        pool.sort(key=lambda v: (var_card[v], var_id[v]))
        v = pool[0]
        pending_var.remove(v)
        placed.add(v)
        ops.append(PlanOp("instantiate", gq.tree_edges[v], var_card[v],
                          op_id=var_id[v], scan_cost=var_card[v]))
        flush_filters()

    assert not pending_sel and not pending_join
    return Plan(ops, var_paths)
