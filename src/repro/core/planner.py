"""Heuristic operation ordering for graph reduction (paper §4.1, step 3).

``Gq`` is reduced one edge at a time; the order is a topological sort of
the operations (a variable must be instantiated before anything that
filters it) refined by the classic relational heuristics the paper cites:

* **selections before joins** — constant edges are applied as soon as
  their variable is instantiated, joins only once both sides are;
* **cheapest vector first** — among ready selections (and ready joins)
  the one whose operand vector is smallest goes first, estimated from the
  skeleton's bulk ``occ`` statistics (``extension_total`` — no vector is
  touched to plan);
* projections that unlock selections are preferred over bare projections,
  tie-broken by smallest estimated instantiation.

The plan is computed once per query against aggregate dataguide
statistics and reused for every concrete-path combination.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .qgraph import ConstEdge, EqEdge, QueryGraph, TreeEdge
from .xpath.vx_eval import _alignments


@dataclass(frozen=True)
class PlanOp:
    kind: str      # 'instantiate' | 'select' | 'join'
    payload: TreeEdge | ConstEdge | EqEdge
    cost: float    # statistics estimate used to order the op

    def __str__(self) -> str:
        return f"{self.kind:11s} {self.payload}  (est {self.cost:.0f})"


@dataclass
class Plan:
    ops: list[PlanOp]
    #: variable -> candidate concrete label paths (dataguide matches),
    #: computed once here and reused by combo enumeration in the reduction
    var_paths: dict[str, list[tuple]] = field(default_factory=dict)

    def explain(self) -> str:
        return "\n".join(f"{i + 1}. {op}" for i, op in enumerate(self.ops))


def _var_paths(gq: QueryGraph, vdoc) -> dict[str, list[tuple]]:
    """Concrete label paths each variable may bind to (dataguide matches),
    used for cost aggregation only (enumeration happens in reduction)."""
    catalog = vdoc.catalog
    guide = catalog.dataguide()
    out: dict[str, list[tuple]] = {}
    for var in gq.variables:
        edge = gq.tree_edges[var]
        if edge.parent is None:
            steps = edge.abs_path.steps
            out[var] = [cp for cp in guide if _alignments(steps, cp)]
        else:
            matches: list[tuple] = []
            for base in out.get(edge.parent, ()):
                k = len(base)
                for g in guide:
                    if len(g) > k and g[:k] == base and \
                            _alignments(edge.steps, g[k:]):
                        matches.append(g)
            # distinct paths (several bases may reach the same guide entry)
            out[var] = list(dict.fromkeys(matches))
    return out


def _cardinality(vdoc, cpaths: list[tuple]) -> float:
    """Total occurrences over all candidate concrete paths."""
    catalog = vdoc.catalog
    total = 0
    for cp in cpaths:
        idx = catalog.index(cp)
        if idx is not None:
            total += idx.total
    return float(total)


def _text_cardinality(vdoc, cpaths: list[tuple], rel: tuple) -> float:
    """Total matching text occurrences under the candidate paths — the size
    of the vector(s) a selection/join side would scan."""
    catalog = vdoc.catalog
    total = 0
    for cp in cpaths:
        use_rel = rel
        if cp and cp[-1] == "#":
            use_rel = rel[:-1] if rel and rel[-1] == "#" else rel
        total += catalog.extension_total(cp, use_rel)
    return float(total)


def plan_query(gq: QueryGraph, vdoc) -> Plan:
    """Topological + heuristic operation ordering for one document."""
    var_paths = _var_paths(gq, vdoc)
    var_card = {v: _cardinality(vdoc, var_paths[v]) for v in gq.variables}
    sel_cost = {
        id(s): _text_cardinality(vdoc, var_paths[s.var], s.rel)
        for s in gq.selections
    }
    join_cost = {
        id(j): _text_cardinality(vdoc, var_paths[j.var1], j.rel1)
        + _text_cardinality(vdoc, var_paths[j.var2], j.rel2)
        for j in gq.joins
    }

    placed: set[str] = set()
    pending_sel = list(gq.selections)
    pending_join = list(gq.joins)
    pending_var = list(gq.variables)
    ops: list[PlanOp] = []

    def flush_filters() -> None:
        """Apply every ready selection, then every ready join — cheapest
        first within each class."""
        while True:
            ready = [s for s in pending_sel if s.var in placed]
            if not ready:
                break
            ready.sort(key=lambda s: (sel_cost[id(s)],
                                      gq.selections.index(s)))
            s = ready[0]
            pending_sel.remove(s)
            ops.append(PlanOp("select", s, sel_cost[id(s)]))
        while True:
            ready = [j for j in pending_join
                     if j.var1 in placed and j.var2 in placed]
            if not ready:
                break
            ready.sort(key=lambda j: (join_cost[id(j)], gq.joins.index(j)))
            j = ready[0]
            pending_join.remove(j)
            ops.append(PlanOp("join", j, join_cost[id(j)]))

    while pending_var:
        ready = [v for v in pending_var
                 if gq.tree_edges[v].parent is None
                 or gq.tree_edges[v].parent in placed]
        assert ready, "tree edges form a forest over earlier bindings"
        # prefer instantiating a variable some pending selection filters
        with_sel = [v for v in ready
                    if any(s.var == v for s in pending_sel)]
        pool = with_sel or ready
        pool.sort(key=lambda v: (var_card[v], gq.variables.index(v)))
        v = pool[0]
        pending_var.remove(v)
        placed.add(v)
        ops.append(PlanOp("instantiate", gq.tree_edges[v], var_card[v]))
        flush_filters()

    assert not pending_sel and not pending_join
    return Plan(ops, var_paths)
