"""Data vectors (paper §2.1): one vector per distinct root-to-text label path.

Values are held as a numpy unicode column array so predicate evaluation is a
single vectorized comparison.  A cached float view supports the ordering
operators.  ``scan()`` is the instrumented access path used by the query
evaluators — the engine asserts each touched vector is scanned at most once
per query, the paper's "each data vector is scanned at most once" guarantee.
"""

from __future__ import annotations

import numpy as np

PathKey = tuple  # tuple[str, ...] root label path, ending with '#'


class Vector:
    __slots__ = ("path", "_values", "_floats", "scan_count")

    def __init__(self, path: PathKey, values):
        self.path = path
        if isinstance(values, np.ndarray) and values.dtype.kind == "U":
            self._values = values
        else:
            self._values = np.asarray(list(values), dtype=np.str_)
            if self._values.dtype.kind != "U":  # e.g. empty input
                self._values = self._values.astype(np.str_)
        self._floats: np.ndarray | None = None
        self.scan_count = 0

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Vector({'/'.join(self.path)!r}, n={len(self)})"

    # -- instrumented access (query hot path) -----------------------------

    def scan(self) -> np.ndarray:
        """Return the full column, counting one sequential scan."""
        self.scan_count += 1
        return self._values

    def floats(self) -> np.ndarray:
        """The column parsed as float64 (NaN where non-numeric), cached.

        Derived from the already-loaded column; it does not count as an
        additional scan.
        """
        if self._floats is None:
            try:
                self._floats = self._values.astype(np.float64)
            except ValueError:
                out = np.full(len(self._values), np.nan)
                for i, v in enumerate(self._values):
                    try:
                        out[i] = float(v)
                    except ValueError:
                        pass
                self._floats = out
        return self._floats

    # -- uninstrumented access (reconstruction / materialization) ---------

    def at(self, i: int) -> str:
        return str(self._values[i])

    def gather(self, ids: np.ndarray) -> np.ndarray:
        """Bulk positional gather as a numpy column (result construction
        copies source ranges into output vectors with this)."""
        return self._values[ids]

    def take(self, ids: np.ndarray) -> list[str]:
        return [str(v) for v in self._values[ids]]

    def slice(self, start: int, stop: int) -> list[str]:
        return [str(v) for v in self._values[start:stop]]
