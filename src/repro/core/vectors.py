"""Data vectors (paper §2.1): one vector per distinct root-to-text label path.

Values are held as a numpy unicode column array so predicate evaluation is a
single vectorized comparison.  A cached float view supports the ordering
operators.  ``scan()`` is the instrumented access path used by the query
evaluators — the engine asserts each touched vector is scanned at most once
per query, the paper's "each data vector is scanned at most once" guarantee.

Scan accounting is **per evaluation context, not per vector**: a query's
:class:`~repro.core.context.EvalContext` installs itself as the calling
thread's *active context* (:func:`set_active_context`) for the duration of
its guard, and ``scan()`` reports each scan to it.  The shared ``Vector``
carries no per-query state, which is what lets two requests evaluate the
same document concurrently, each with its own scan-once invariant
machine-checked.

All access to the column goes through the :meth:`Vector._col` hook so a
disk-backed subclass (``repro.storage.vdocfile.LazyVector``) can defer
materialization to the first touch — loading its pages through the buffer
pool, charging the physical reads to the cumulative per-vector
``pages_read`` counter *and* to the active context, which checks them
against ``n_pages`` (at most one full page pass per vector per query).
For the in-memory vector both counters stay 0.
"""

from __future__ import annotations

import threading

import numpy as np

from ..util import parse_float

PathKey = tuple  # tuple[str, ...] root label path, ending with '#'

#: the calling thread's active evaluation context (scan/IO sink)
_ACTIVE = threading.local()


def set_active_context(ctx):
    """Install ``ctx`` as this thread's scan/IO accounting sink; returns
    the previous one so nested guards can restore it."""
    prev = getattr(_ACTIVE, "ctx", None)
    _ACTIVE.ctx = ctx
    return prev


def active_context():
    """The calling thread's active :class:`EvalContext`, or ``None``."""
    return getattr(_ACTIVE, "ctx", None)


def parse_float_column(col: np.ndarray) -> np.ndarray:
    """One string column parsed as float64 (NaN where non-numeric) — the
    engine's single numeric-text semantics (:func:`repro.util.parse_float`,
    which rejects underscore digit separators) applied in bulk.  Shared
    by :meth:`Vector.floats` and the dictionary-coded fast path, which
    parses the ``u`` distinct *keys* and gathers — same per-value
    semantics, so the two paths agree exactly."""
    under = np.char.find(col, "_") >= 0 if len(col) else \
        np.zeros(0, dtype=bool)
    try:
        floats = col.astype(np.float64)
        floats[under] = np.nan
    except ValueError:
        floats = np.full(len(col), np.nan)
        for i, v in enumerate(col):
            try:
                floats[i] = parse_float(v)
            except ValueError:
                pass
    return floats


class Vector:
    __slots__ = ("path", "_values", "_floats", "pages_read", "n_pages")

    def __init__(self, path: PathKey, values):
        self.path = path
        if isinstance(values, np.ndarray) and values.dtype.kind == "U":
            self._values = values
        else:
            self._values = np.asarray(list(values), dtype=np.str_)
            if self._values.dtype.kind != "U":  # e.g. empty input
                self._values = self._values.astype(np.str_)
        self._floats: np.ndarray | None = None
        self.pages_read = 0   # physical pages read for this column, ever
        self.n_pages = 0      # pages of its on-disk chain (0 = in memory)

    def __len__(self) -> int:
        return len(self._col())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Vector({'/'.join(self.path)!r}, n={len(self)})"

    # -- materialization hook (overridden by disk-backed vectors) ---------

    def _col(self) -> np.ndarray:
        return self._values

    # -- instrumented access (query hot path) -----------------------------

    def note_touch(self) -> None:
        """Report one logical scan of this vector to the calling thread's
        active evaluation context (if any).  A touch is also a deadline
        checkpoint — column materialization is the unit of work a
        cooperative cancellation must interleave with.  The
        :class:`~repro.core.context.VectorCache` funnels *every* access
        representation (string column, dictionary codes, floats) through
        one touch per vector per query, so reading a vector both as codes
        and as strings still counts as the single scan it physically is."""
        ctx = active_context()
        if ctx is not None:
            ctx.checkpoint()
            ctx.note_scan(self)

    def scan(self) -> np.ndarray:
        """Return the full column, reporting one sequential scan to the
        calling thread's active evaluation context (if any)."""
        self.note_touch()
        return self._col()

    def dict_codes(self):
        """``(sorted keys, per-value int64 codes)`` when the vector is
        stored dictionary-coded and can be queried in code space without
        building the string column; ``None`` otherwise (always ``None``
        for in-memory vectors — there is nothing to avoid decoding)."""
        return None

    def floats(self) -> np.ndarray:
        """The column parsed as float64 (NaN where non-numeric), cached.

        Derived from the already-loaded column; it does not count as an
        additional scan.  Numeric-ness is decided by one parse —
        :func:`repro.util.parse_float`, which rejects underscore digit
        separators — on both the bulk and the per-element path, so a
        value's interpretation never depends on its sibling values (or on
        the numpy version's ``astype`` string parser).
        """
        if self._floats is None:
            self._floats = parse_float_column(self._col())
        return self._floats

    # -- uninstrumented access (reconstruction / materialization) ---------

    def at(self, i: int) -> str:
        return str(self._col()[i])

    def gather(self, ids: np.ndarray) -> np.ndarray:
        """Bulk positional gather as a numpy column (result construction
        copies source ranges into output vectors with this)."""
        return self._col()[ids]

    def take(self, ids: np.ndarray) -> list[str]:
        return [str(v) for v in self._col()[ids]]

    def slice(self, start: int, stop: int) -> list[str]:
        return [str(v) for v in self._col()[start:stop]]

    def tolist(self) -> list[str]:
        """Every value in document order (used by the on-disk writer)."""
        return [str(v) for v in self._col()]
