"""Data vectors (paper §2.1): one vector per distinct root-to-text label path.

Values are held as a numpy unicode column array so predicate evaluation is a
single vectorized comparison.  A cached float view supports the ordering
operators.  ``scan()`` is the instrumented access path used by the query
evaluators — the engine asserts each touched vector is scanned at most once
per query, the paper's "each data vector is scanned at most once" guarantee.

All access to the column goes through the :meth:`Vector._col` hook so a
disk-backed subclass (``repro.storage.vdocfile.LazyVector``) can defer
materialization to the first touch — loading its pages through the buffer
pool and charging the physical reads to the per-vector ``pages_read``
counter the engine checks against ``n_pages`` (at most one full page pass
per vector per query).  For the in-memory vector both counters stay 0.
"""

from __future__ import annotations

import numpy as np

from ..util import parse_float

PathKey = tuple  # tuple[str, ...] root label path, ending with '#'


class Vector:
    __slots__ = ("path", "_values", "_floats", "scan_count",
                 "pages_read", "n_pages", "_io_baseline")

    def __init__(self, path: PathKey, values):
        self.path = path
        if isinstance(values, np.ndarray) and values.dtype.kind == "U":
            self._values = values
        else:
            self._values = np.asarray(list(values), dtype=np.str_)
            if self._values.dtype.kind != "U":  # e.g. empty input
                self._values = self._values.astype(np.str_)
        self._floats: np.ndarray | None = None
        self.scan_count = 0
        self.pages_read = 0   # physical pages read for this column, ever
        self.n_pages = 0      # pages of its on-disk chain (0 = in memory)
        self._io_baseline = 0

    def __len__(self) -> int:
        return len(self._col())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Vector({'/'.join(self.path)!r}, n={len(self)})"

    # -- materialization hook (overridden by disk-backed vectors) ---------

    def _col(self) -> np.ndarray:
        return self._values

    # -- per-query I/O accounting -----------------------------------------

    def reset_io_window(self) -> None:
        """Start a per-query window for :meth:`pages_read_in_window`."""
        self._io_baseline = self.pages_read

    def pages_read_in_window(self) -> int:
        return self.pages_read - self._io_baseline

    # -- instrumented access (query hot path) -----------------------------

    def scan(self) -> np.ndarray:
        """Return the full column, counting one sequential scan."""
        self.scan_count += 1
        return self._col()

    def floats(self) -> np.ndarray:
        """The column parsed as float64 (NaN where non-numeric), cached.

        Derived from the already-loaded column; it does not count as an
        additional scan.  Numeric-ness is decided by one parse —
        :func:`repro.util.parse_float`, which rejects underscore digit
        separators — on both the bulk and the per-element path, so a
        value's interpretation never depends on its sibling values (or on
        the numpy version's ``astype`` string parser).
        """
        if self._floats is None:
            col = self._col()
            under = np.char.find(col, "_") >= 0 if len(col) else \
                np.zeros(0, dtype=bool)
            try:
                floats = col.astype(np.float64)
                floats[under] = np.nan
            except ValueError:
                floats = np.full(len(col), np.nan)
                for i, v in enumerate(col):
                    try:
                        floats[i] = parse_float(v)
                    except ValueError:
                        pass
            self._floats = floats
        return self._floats

    # -- uninstrumented access (reconstruction / materialization) ---------

    def at(self, i: int) -> str:
        return str(self._col()[i])

    def gather(self, ids: np.ndarray) -> np.ndarray:
        """Bulk positional gather as a numpy column (result construction
        copies source ranges into output vectors with this)."""
        return self._col()[ids]

    def take(self, ids: np.ndarray) -> list[str]:
        return [str(v) for v in self._col()[ids]]

    def slice(self, start: int, stop: int) -> list[str]:
        return [str(v) for v in self._col()[start:stop]]

    def tolist(self) -> list[str]:
        """Every value in document order (used by the on-disk writer)."""
        return [str(v) for v in self._col()]
