"""Run-length position algebra over compressed skeletons.

For a root label path ``p``, the document nodes reachable by ``p`` are
numbered 0..n-1 in document order; when ``p`` ends at ``#`` these ordinals
are exactly the offsets into ``vector(p)``.  Occurrences of ``p`` are kept
in run-length form ``(skeleton node, count)`` obtained by traversing the
*compressed* skeleton — all occurrences in a run share a skeleton node and
therefore identical subtree statistics (``occ``).  Hence the map from an
occurrence of ``p`` to its contiguous range of ``p/q`` descendants is an
arithmetic progression per run, and positional joins between a path and its
extensions cost O(runs + |instantiation| log runs) — independent of |T|.
This module is the concrete realization of "querying without decompression".

Everything here is columnar: ordinal sets are int64 numpy arrays, range
maps are (starts, lengths) column pairs, and expansion uses
``np.searchsorted`` / prefix sums / ``np.repeat`` — no per-node Python
loops on hot paths (Python iteration is over *runs* only, which is the
compressed size).
"""

from __future__ import annotations

import numpy as np

from .skeleton import NodeStore


def ranges_to_ordinals(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Materialize the union of ranges ``[starts[i], starts[i]+lengths[i])``.

    Classic prefix-sum expansion: O(total output), fully vectorized.
    For sorted, disjoint input ranges the output is sorted.
    """
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends_local = np.cumsum(lengths)
    first_local = ends_local - lengths
    return np.repeat(starts - first_local, lengths) + np.arange(total, dtype=np.int64)


class ExtendedVector:
    """A collection-at-a-time instantiation: numpy column arrays.

    ``ord`` is the occurrence-ordinal column of the variable's path;
    ``anc`` (optional) the ordinal column of its ancestor in the query;
    ``card`` (optional) a cardinality column used when rows are kept
    collapsed (a row stands for ``card`` consecutive occurrences).
    """

    __slots__ = ("path", "ord", "anc", "card")

    def __init__(self, path: tuple, ords: np.ndarray,
                 anc: np.ndarray | None = None,
                 card: np.ndarray | None = None):
        self.path = path
        self.ord = ords
        self.anc = anc
        self.card = card

    def __len__(self) -> int:
        return len(self.ord)

    def total(self) -> int:
        """Number of represented occurrences (sum of cardinalities)."""
        if self.card is None:
            return len(self.ord)
        return int(self.card.sum())


class PathIndex:
    """Run-length occurrence index of one root label path."""

    __slots__ = ("path", "runs", "run_nodes", "run_counts", "run_start", "total")

    def __init__(self, path: tuple, runs: list[tuple[int, int]]):
        self.path = path
        self.runs = runs  # [(skeleton node id, count), ...] document order
        self.run_nodes = np.fromiter((r[0] for r in runs), dtype=np.int64,
                                     count=len(runs))
        self.run_counts = np.fromiter((r[1] for r in runs), dtype=np.int64,
                                      count=len(runs))
        cum = np.cumsum(self.run_counts)
        self.total = int(cum[-1]) if len(runs) else 0
        self.run_start = cum - self.run_counts  # first ordinal of each run

    def all_ordinals(self) -> np.ndarray:
        return np.arange(self.total, dtype=np.int64)

    def run_of(self, ids: np.ndarray) -> np.ndarray:
        """Run index of each ordinal (ids need not be sorted)."""
        return np.searchsorted(self.run_start, ids, side="right") - 1


def _merge_adjacent(runs: list[tuple[int, int]]) -> list[tuple[int, int]]:
    out: list[tuple[int, int]] = []
    for node, count in runs:
        if out and out[-1][0] == node:
            out[-1] = (node, out[-1][1] + count)
        else:
            out.append((node, count))
    return out


class PathsCatalog:
    """Lazily built PathIndex per label path, plus extension statistics.

    ``extension_ranges(path, ids, rel)`` is the workhorse positional join:
    given occurrence ordinals of ``path``, return per-occurrence contiguous
    ranges in the ordinal space of ``path + rel``, computed per *run* as an
    arithmetic progression.
    """

    def __init__(self, store: NodeStore, root: int):
        self.store = store
        self.root = root
        root_path = (store.label(root),)
        self._idx: dict[tuple, PathIndex | None] = {
            root_path: PathIndex(root_path, [(root, 1)])
        }
        self._ext: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}
        self._guide: list[tuple] | None = None
        self._order: dict[tuple, np.ndarray] = {
            root_path: np.zeros(1, dtype=np.int64)
        }
        self._loc: dict[tuple[int, str], np.ndarray] = {}

    # -- index construction ----------------------------------------------

    def index(self, path: tuple) -> PathIndex | None:
        """The run-length index of ``path`` (None if the path is absent)."""
        if path in self._idx:
            return self._idx[path]
        if len(path) <= 1:  # wrong root label
            self._idx[path] = None
            return None
        parent = self.index(path[:-1])
        if parent is None:
            self._idx[path] = None
            return None
        store = self.store
        label = path[-1]
        runs: list[tuple[int, int]] = []
        for node, count in parent.runs:
            matching = _merge_adjacent(
                [(c, k) for c, k in store.children(node) if store.label(c) == label]
            )
            if not matching:
                continue
            if len(matching) == 1:
                # The common, regular case: c copies of a single child run
                # collapse into one run — the index stays compressed.
                child, k = matching[0]
                runs.append((child, count * k))
            else:
                # Irregular interleaving (e.g. a<b/><c/><b/>): document
                # order forces the child-run sequence to repeat per copy.
                for _ in range(count):
                    runs.extend(matching)
        runs = _merge_adjacent(runs)
        idx = PathIndex(path, runs) if runs else None
        self._idx[path] = idx
        return idx

    # -- dataguide --------------------------------------------------------

    def dataguide(self) -> list[tuple]:
        """All distinct root label paths in the document (elements, ``@``
        attribute nodes and ``#`` text), lexicographically sorted."""
        if self._guide is not None:
            return self._guide
        store = self.store
        paths: list[tuple] = []
        frontier: dict[tuple, set[int]] = {(store.label(self.root),): {self.root}}
        while frontier:
            nxt: dict[tuple, set[int]] = {}
            for path, nodes in frontier.items():
                paths.append(path)
                for n in nodes:
                    for child, _ in store.children(n):
                        cpath = (*path, store.label(child))
                        nxt.setdefault(cpath, set()).add(child)
            frontier = nxt
        paths.sort()
        self._guide = paths
        return paths

    # -- document order across paths ---------------------------------------

    def _local_offsets(self, node: int, label: str) -> np.ndarray:
        """Preorder offsets (within one instance of ``node``, whose own
        offset is 0) of its ``label``-children, in document order."""
        key = (node, label)
        cached = self._loc.get(key)
        if cached is not None:
            return cached
        store = self.store
        segs: list[np.ndarray] = []
        base = 1  # the first child starts right after the node itself
        for child, count in store.children(node):
            size = store.node_count(child)
            if store.label(child) == label:
                segs.append(base + np.arange(count, dtype=np.int64) * size)
            base += count * size
        out = (np.concatenate(segs) if segs
               else np.empty(0, dtype=np.int64))
        self._loc[key] = out
        return out

    def order_keys(self, path: tuple) -> np.ndarray:
        """Global preorder rank of every occurrence of ``path``.

        Ranks are the node's position in a preorder walk of the
        *decompressed* document (attributes first, as XPath sees them), but
        are computed entirely on the compressed skeleton: per parent run the
        child ranks are ``parent rank + local offset`` — one ``np.repeat``
        and tile per run.  Ranks of occurrences of *different* label paths
        are directly comparable, which is what lets ``//`` and ``*`` results
        be interleaved into true document order without decompression.
        """
        for depth in range(2, len(path) + 1):
            prefix = path[:depth]
            if prefix in self._order:
                continue
            pk = self._order[prefix[:-1]]
            pidx = self.index(prefix[:-1])
            assert pidx is not None, prefix
            label = prefix[-1]
            segs: list[np.ndarray] = []
            for i, (node, k) in enumerate(pidx.runs):
                loc = self._local_offsets(node, label)
                if len(loc) == 0:
                    continue
                start = int(pidx.run_start[i])
                pr = pk[start : start + k]
                segs.append((pr[:, None] + loc[None, :]).ravel())
            self._order[prefix] = (np.concatenate(segs) if segs
                                   else np.empty(0, dtype=np.int64))
        return self._order[path]

    # -- extension statistics (the position algebra) ----------------------

    def _ext_stats(self, path: tuple, rel: tuple):
        """Per-run occurrence counts of ``rel`` and per-run exclusive base
        offsets into the ordinal space of ``path + rel``."""
        key = (path, rel)
        cached = self._ext.get(key)
        if cached is not None:
            return cached
        pidx = self.index(path)
        assert pidx is not None
        # Bulk per-node statistics: one column lookup instead of per-run
        # memoized recursion.
        counts = self.store.occ_column(rel)[pidx.run_nodes]
        weighted = pidx.run_counts * counts
        base = np.cumsum(weighted) - weighted  # exclusive prefix sum
        self._ext[key] = (counts, base)
        return counts, base

    def extension_total(self, path: tuple, rel: tuple) -> int:
        pidx = self.index(path)
        if pidx is None:
            return 0
        counts, base = self._ext_stats(path, rel)
        if len(base) == 0:
            return 0
        return int(base[-1] + pidx.run_counts[-1] * counts[-1])

    def extension_ranges(self, path: tuple, ids: np.ndarray | None, rel: tuple):
        """Contiguous descendant ranges of each occurrence in ``ids``.

        Returns ``(starts, lengths)`` into the ordinal space of
        ``path + rel``.  ``ids=None`` means *all* occurrences of ``path``
        (computed by run expansion, no searchsorted needed).
        """
        pidx = self.index(path)
        assert pidx is not None
        counts, base = self._ext_stats(path, rel)
        if ids is None:
            lengths = np.repeat(counts, pidx.run_counts)
            ends = np.cumsum(lengths)
            return ends - lengths, lengths
        runs = pidx.run_of(ids)
        lengths = counts[runs]
        starts = base[runs] + (ids - pidx.run_start[runs]) * lengths
        return starts, lengths

    def expand(self, path: tuple, ids: np.ndarray | None, rel: tuple,
               with_anc: bool = False):
        """Positional join: occurrence ordinals of ``path + rel`` lying
        under ``ids``; optionally also the ancestor ordinal column
        (an :class:`ExtendedVector` keyed by ancestor)."""
        starts, lengths = self.extension_ranges(path, ids, rel)
        ords = ranges_to_ordinals(starts, lengths)
        if not with_anc:
            return ords
        if ids is None:
            pidx = self.index(path)
            ids = pidx.all_ordinals()
        anc = np.repeat(ids, lengths)
        return ExtendedVector((*path, *rel), ords, anc=anc)
