"""Recursive-descent parser for the XPath fragment P[*,//]."""

from __future__ import annotations

from ...errors import XPathSyntaxError
from .ast import CHILD, DESCENDANT, OPS, Path, Pred, Step

_NAME_START = set("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz_")
_NAME_CHARS = _NAME_START | set("0123456789-.:")


class _Scanner:
    def __init__(self, s: str):
        self.s = s
        self.i = 0

    def ws(self) -> None:
        while self.i < len(self.s) and self.s[self.i] in " \t\r\n":
            self.i += 1

    def eof(self) -> bool:
        self.ws()
        return self.i >= len(self.s)

    def peek(self, tok: str) -> bool:
        self.ws()
        return self.s.startswith(tok, self.i)

    def eat(self, tok: str) -> bool:
        if self.peek(tok):
            self.i += len(tok)
            return True
        return False

    def expect(self, tok: str) -> None:
        if not self.eat(tok):
            raise XPathSyntaxError(
                f"expected {tok!r} at offset {self.i} in {self.s!r}")

    def name(self) -> str:
        self.ws()
        i = self.i
        if i >= len(self.s) or self.s[i] not in _NAME_START:
            raise XPathSyntaxError(
                f"expected a name at offset {i} in {self.s!r}")
        j = i + 1
        while j < len(self.s) and self.s[j] in _NAME_CHARS:
            j += 1
        self.i = j
        return self.s[i:j]


def _parse_test(sc: _Scanner, allow_wild: bool) -> str:
    if sc.eat("*"):
        if not allow_wild:
            raise XPathSyntaxError("'*' is not supported inside predicates")
        return "*"
    if sc.eat("@"):
        return "@" + sc.name()
    name = sc.name()
    if name == "text" and sc.eat("("):
        sc.expect(")")
        return "#"
    return name


def _parse_literal(sc: _Scanner) -> str:
    sc.ws()
    if sc.i < len(sc.s) and sc.s[sc.i] in "\"'":
        quote = sc.s[sc.i]
        end = sc.s.find(quote, sc.i + 1)
        if end < 0:
            raise XPathSyntaxError("unterminated string literal")
        value = sc.s[sc.i + 1 : end]
        sc.i = end + 1
        return value
    # bare number
    i = sc.i
    j = i
    while j < len(sc.s) and (sc.s[j].isdigit() or sc.s[j] in "+-.eE"):
        j += 1
    if j == i:
        raise XPathSyntaxError(f"expected a literal at offset {i} in {sc.s!r}")
    sc.i = j
    return sc.s[i:j]


def _parse_pred(sc: _Scanner) -> Pred:
    rel = [_parse_test(sc, allow_wild=False)]
    while True:
        if sc.peek("//"):
            raise XPathSyntaxError("'//' is not supported inside predicates")
        if not sc.eat("/"):
            break
        rel.append(_parse_test(sc, allow_wild=False))
    for comp in rel[:-1]:
        if comp == "#" or comp.startswith("@"):
            raise XPathSyntaxError(
                f"{comp!r} may only appear last in a predicate path")
    op = None
    value = None
    for candidate in ("<=", ">=", "!=", "=", "<", ">"):
        if sc.eat(candidate):
            op = candidate
            break
    if op is not None:
        assert op in OPS
        value = _parse_literal(sc)
    sc.expect("]")
    return Pred(tuple(rel), op, value)


def parse_xpath(s: str) -> Path:
    """Parse an absolute XPath expression of the fragment P[*,//]."""
    sc = _Scanner(s)
    steps: list[Step] = []
    sc.ws()
    if not (sc.peek("/") or sc.peek("//")):
        raise XPathSyntaxError("only absolute paths ('/...' or '//...') are supported")
    while not sc.eof():
        if sc.eat("//"):
            axis = DESCENDANT
        elif sc.eat("/"):
            axis = CHILD
        else:
            raise XPathSyntaxError(
                f"unexpected input at offset {sc.i} in {s!r}")
        test = _parse_test(sc, allow_wild=True)
        preds: list[Pred] = []
        while sc.eat("["):
            preds.append(_parse_pred(sc))
        if steps and steps[-1].test == "#":
            raise XPathSyntaxError("text() must be the last step")
        if steps and steps[-1].test.startswith("@") and test != "#":
            raise XPathSyntaxError("an attribute step may only be followed by text()")
        steps.append(Step(axis, test, tuple(preds)))
    if not steps:
        raise XPathSyntaxError("empty path")
    return Path(tuple(steps))
