"""Naive node-at-a-time XPath evaluator over the *decompressed* tree.

This is the correctness and speed baseline (paper §3.2's "naive
evaluation"): it walks Python node objects one at a time.  Semantics are
kept bit-identical to the vectorized evaluator so the cross-evaluator tests
can compare them on arbitrary documents.
"""

from __future__ import annotations

from ...util import parse_float
from ...xmldata.model import Element, Node, Text, node_label, preorder, xpath_children
from .ast import CHILD, Path, Pred


def _match(test: str, label: str) -> bool:
    if test == "*":
        return label != "#" and not label.startswith("@")
    return test == label


def _nodes_at_rel(n: Node, rel: tuple) -> list[Node]:
    cur = [n]
    for label in rel:
        cur = [c for x in cur for c in xpath_children(x)
               if node_label(c) == label]
        if not cur:
            break
    return cur


def _compare(value: str, op: str, const: str) -> bool:
    if op == "=":
        return value == const
    if op == "!=":
        return value != const
    try:
        a, b = parse_float(value), parse_float(const)
    except ValueError:
        return False
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    return a >= b


def _pred_holds(n: Node, pred: Pred) -> bool:
    if pred.op is None:
        return bool(_nodes_at_rel(n, pred.relpath))
    rel = pred.relpath if pred.relpath[-1] == "#" else (*pred.relpath, "#")
    return any(
        isinstance(t, Text) and _compare(t.value, pred.op, pred.value)
        for t in _nodes_at_rel(n, rel)
    )


def evaluate_tree(root: Element, path: Path) -> list[Node]:
    """Evaluate ``path`` against the document rooted at ``root``; returns
    the result node set in document order (deduplicated)."""
    order: dict[int, int] = {id(n): i for i, n in enumerate(preorder(root))}

    current: list[Node]
    first = path.steps[0]
    if first.axis == CHILD:
        current = [root] if _match(first.test, node_label(root)) else []
    else:
        current = [n for n in preorder(root) if _match(first.test, node_label(n))]
    current = [n for n in current if all(_pred_holds(n, p) for p in first.preds)]

    for step in path.steps[1:]:
        seen: set[int] = set()
        nxt: list[Node] = []
        for n in current:
            if step.axis == CHILD:
                candidates = xpath_children(n)
            else:
                candidates = [d for c in xpath_children(n) for d in preorder(c)]
            for c in candidates:
                if _match(step.test, node_label(c)) and id(c) not in seen:
                    if all(_pred_holds(c, p) for p in step.preds):
                        seen.add(id(c))
                        nxt.append(c)
        nxt.sort(key=lambda n: order[id(n)])
        current = nxt
        if not current:
            break
    return current


def node_path(root: Element, target_ids: set[int]) -> dict[int, tuple]:
    """Root label path of every node whose ``id()`` is in ``target_ids``."""
    out: dict[int, tuple] = {}
    stack: list[tuple[Node, tuple]] = [(root, (node_label(root),))]
    while stack:
        n, p = stack.pop()
        if id(n) in target_ids:
            out[id(n)] = p
        for c in xpath_children(n):
            stack.append((c, (*p, node_label(c))))
    return out


def canonical_item(n: Node) -> tuple:
    """Canonical content of a result node: sorted-by-path tuple of
    ``(relative text path, value)`` pairs, document order within a path.

    Matches exactly what the vectorized evaluator can produce from vectors
    (per-path ordering; see DESIGN.md deviations).
    """
    if isinstance(n, Text):
        return (((), n.value),)
    items: list[tuple[tuple, str]] = []
    stack: list[tuple[Node, tuple]] = [(n, ())]
    while stack:
        cur, rel = stack.pop()
        pending: list[tuple[Node, tuple]] = []
        for c in xpath_children(cur):
            if isinstance(c, Text):
                items.append(((*rel, "#"), c.value))
            else:
                pending.append((c, (*rel, node_label(c))))
        stack.extend(reversed(pending))
    # stable by path, preserving discovery (document) order within a path
    items_idx = sorted(range(len(items)), key=lambda i: (items[i][0], i))
    return tuple(items[i] for i in items_idx)
