"""Vectorized XPath evaluation over (skeleton, vectors) — the hot path.

A collection at a time (paper §4): a query step is evaluated for *all*
occurrences of a path at once, as numpy column operations over the
run-length position algebra of :mod:`repro.core.paths`.  The skeleton DAG
is never decompressed; data vectors are loaded lazily and each touched
vector is scanned at most once per query (the engine asserts both).

Wildcard (``*``) and descendant (``//``) steps are resolved against the
*dataguide* — the set of distinct label paths, which is a property of the
compressed skeleton and is tiny for regular data — producing a set of
(concrete path, step->position alignment) pairs; each alignment is then
evaluated with pure child-axis columnar kernels:

* step expansion   — ``extension_ranges`` + prefix-sum range materialization
  (``np.repeat``/``np.arange``), an arithmetic progression per run;
* existence filter — per-occurrence descendant counts ``> 0``, straight from
  skeleton statistics, touching no vector at all;
* value predicate  — one vectorized comparison over the vector column, one
  prefix sum, and a gather: ∃-semantics per occurrence without any per-node
  loop.
"""

from __future__ import annotations

import numpy as np

from ...util import parse_float
from ..context import VectorCache
from ..paths import PathsCatalog, ranges_to_ordinals
from .ast import CHILD, Path, Pred

__all__ = ["VectorCache", "VXResult", "evaluate_vx", "pred_mask"]


def _match(test: str, label: str) -> bool:
    if test == "*":
        return label != "#" and not label.startswith("@")
    return test == label


def _alignments(steps: tuple, cpath: tuple) -> list[tuple]:
    """All ways the query steps can align with a concrete label path so the
    last step lands on the path's last position."""
    out: list[tuple] = []
    L = len(cpath)
    last = len(steps) - 1

    def rec(si: int, pos: int, acc: tuple) -> None:
        step = steps[si]
        candidates = (pos,) if step.axis == CHILD else range(pos, L)
        for p in candidates:
            if p >= L or not _match(step.test, cpath[p]):
                continue
            if si == last:
                if p == L - 1:
                    out.append((*acc, p))
            else:
                rec(si + 1, p + 1, (*acc, p))

    rec(0, 0, ())
    return out


def pred_mask(cache: VectorCache, qpath: tuple, op: str, const: str) -> np.ndarray:
    """Boolean mask over the ordinals of text path ``qpath``.

    Every predicate evaluator funnels through here — XPath predicates and
    both XQ executors — so this is the one place code-space evaluation
    plugs in: when the vector is stored dictionary-coded (and codec
    evaluation is on), an equality predicate maps its constant into code
    space with one ``searchsorted`` over the ``u`` sorted keys and
    compares integers; the string column is never built.  An absent
    constant maps to code -1, which no value code equals — exactly the
    all-False (``=``) / all-True (``!=``) masks of the string compare, so
    results are byte-identical either way.  Ordering predicates use the
    float view, which a ``dict``/``delta``-coded vector also derives
    without building strings."""
    if op in ("=", "!="):
        dc = cache.dict_codes(qpath)
        if dc is not None:
            keys, codes = dc
            pos = np.searchsorted(keys, const) if len(keys) else 0
            code = pos if pos < len(keys) and keys[pos] == const else -1
            return codes == code if op == "=" else codes != code
        if op == "=":
            return cache.column(qpath) == const
        return cache.column(qpath) != const
    try:
        c = parse_float(const)
    except ValueError:
        # all-False, sized off the float view (never forces a decode)
        n = len(cache.floats(qpath))
        return np.zeros(n, dtype=bool)
    f = cache.floats(qpath)
    if op == "<":
        return f < c
    if op == "<=":
        return f <= c
    if op == ">":
        return f > c
    return f >= c


def _apply_pred(catalog: PathsCatalog, cache: VectorCache, prefix: tuple,
                ids: np.ndarray, pred: Pred) -> np.ndarray:
    """Filter occurrence ordinals ``ids`` of ``prefix`` by one predicate."""
    if pred.op is None:
        if catalog.index((*prefix, *pred.relpath)) is None:
            return ids[:0]
        _, lengths = catalog.extension_ranges(prefix, ids, pred.relpath)
        return ids[lengths > 0]
    rel = pred.relpath if pred.relpath[-1] == "#" else (*pred.relpath, "#")
    qpath = (*prefix, *rel)
    if catalog.index(qpath) is None:
        return ids[:0]  # no such text anywhere: ∃ fails for every occurrence
    starts, lengths = catalog.extension_ranges(prefix, ids, rel)
    mask = pred_mask(cache, qpath, pred.op, pred.value)
    cum = np.concatenate(([0], np.cumsum(mask, dtype=np.int64)))
    keep = cum[starts + lengths] > cum[starts]
    return ids[keep]


def _eval_alignment(catalog: PathsCatalog, cache: VectorCache, cpath: tuple,
                    align: tuple, steps: tuple) -> np.ndarray | None:
    """Occurrence ordinals of ``cpath`` selected by one alignment.

    ``None`` means "all occurrences" — kept symbolic (an implicit extended
    vector of cardinality |cpath|) until a predicate forces materialization.
    """
    ids: np.ndarray | None = None
    prev_pos = -1
    for si, pos in enumerate(align):
        prefix = cpath[: pos + 1]
        if ids is not None:
            rel = cpath[prev_pos + 1 : pos + 1]
            starts, lengths = catalog.extension_ranges(
                cpath[: prev_pos + 1], ids, rel)
            ids = ranges_to_ordinals(starts, lengths)
        preds = steps[si].preds
        if preds:
            if ids is None:
                ids = catalog.index(prefix).all_ordinals()
            for pred in preds:
                ids = _apply_pred(catalog, cache, prefix, ids, pred)
                if len(ids) == 0:
                    return ids
        prev_pos = pos
    return ids


class VXResult:
    """Result of a vectorized evaluation: per concrete path, the selected
    occurrence ordinals (a columnar node set — no nodes are materialized).

    Reporting methods interleave occurrences of *different* concrete paths
    into true global document order using the catalog's preorder rank
    columns (``order_keys``) — ``//`` and ``*`` results come out exactly as
    a document-order tree walk would emit them, still without touching the
    decompressed tree."""

    def __init__(self, vdoc, groups: list[tuple]):
        self.vdoc = vdoc
        self.groups = groups  # [(concrete path, int64 ordinal array)], sorted

    def count(self) -> int:
        return sum(len(ids) for _, ids in self.groups)

    def paths(self) -> list[tuple]:
        return [p for p, _ in self.groups]

    def _doc_order(self, groups: list[tuple]) -> np.ndarray:
        """Permutation putting the concatenation of ``groups`` ordinals in
        global document order."""
        catalog = self.vdoc.catalog
        ranks = [catalog.order_keys(cpath)[ids] for cpath, ids in groups]
        if not ranks:
            return np.empty(0, dtype=np.int64)
        return np.argsort(np.concatenate(ranks), kind="stable")

    def text_values(self) -> list[str]:
        """Values of text-path results, vector gathers only, interleaved in
        document order across paths."""
        text_groups = [(p, ids) for p, ids in self.groups if p[-1] == "#"]
        vals: list[str] = []
        for cpath, ids in text_groups:
            vals.extend(self.vdoc.vectors[cpath].take(ids))
        order = self._doc_order(text_groups)
        return [vals[i] for i in order]

    def canonical(self) -> list[tuple]:
        """Canonical content per result occurrence in global document order
        (for cross-evaluator comparison); matches
        :func:`tree_eval.canonical_item` exactly.  Uses the position algebra
        to locate each occurrence's contiguous source range in every
        descendant vector — still no decompression."""
        catalog = self.vdoc.catalog
        guide = catalog.dataguide()
        items: list[tuple] = []
        for cpath, ids in self.groups:
            if cpath[-1] == "#":
                vec = self.vdoc.vectors[cpath]
                items.extend((((), v),) for v in vec.take(ids))
                continue
            k = len(cpath)
            rels = sorted(
                g[k:] for g in guide
                if len(g) > k and g[:k] == cpath and g[-1] == "#"
            )
            per_id: list[list] = [[] for _ in range(len(ids))]
            for rel in rels:
                qpath = (*cpath, *rel)
                vec = self.vdoc.vectors[qpath]
                starts, lengths = catalog.extension_ranges(cpath, ids, rel)
                # one bulk gather over the run-length ranges (no per-row
                # slicing): materialize every value of every row at once,
                # then fan the flat column back out to its rows
                ords = ranges_to_ordinals(starts, lengths)
                if len(ords) == 0:
                    continue
                vals = vec.gather(ords)
                rows = np.repeat(np.arange(len(ids)), lengths)
                for row, v in zip(rows.tolist(), vals.tolist()):
                    per_id[row].append((rel, v))
            items.extend(tuple(it) for it in per_id)
        order = self._doc_order(self.groups)
        return [items[i] for i in order]


def evaluate_vx(vdoc, path: Path, ctx=None) -> VXResult:
    """Evaluate an XPath of the fragment P[*,//] over a vectorized document.

    ``ctx`` (an :class:`~repro.core.context.EvalContext`) lets a larger
    computation — the XQ graph reduction, or a repository-wide query —
    share one per-document vector cache so the scan-once invariant spans
    the whole query, and carries the pool-wide invariant guards."""
    catalog: PathsCatalog = vdoc.catalog
    cache = ctx.cache(vdoc) if ctx is not None \
        else VectorCache(vdoc.vectors)
    steps = path.steps
    groups: dict[tuple, list] = {}

    for cpath in catalog.dataguide():
        if ctx is not None:
            ctx.checkpoint()   # per catalog path: a structural query may
            # select without ever scanning a value vector, and the
            # cooperative deadline must still be able to stop it
        aligns = _alignments(steps, cpath)
        if not aligns:
            continue
        parts: list = []
        for align in aligns:
            ids = _eval_alignment(catalog, cache, cpath, align, steps)
            if ids is None:
                parts = [None]  # every occurrence selected; no need for more
                break
            if len(ids):
                parts.append(ids)
        if parts:
            groups.setdefault(cpath, []).extend(parts)

    result: list[tuple] = []
    for cpath in sorted(groups):
        parts = groups[cpath]
        if any(p is None for p in parts):
            ids = catalog.index(cpath).all_ordinals()
        elif len(parts) == 1:
            ids = parts[0]
        else:
            ids = np.unique(np.concatenate(parts))
        if len(ids):
            result.append((cpath, ids))
    return VXResult(vdoc, result)
