"""XPath fragment P[*,//]: parser plus naive and vectorized evaluators."""

from .ast import CHILD, DESCENDANT, Path, Pred, Step
from .parser import parse_xpath
from .tree_eval import canonical_item, evaluate_tree, node_path
from .vx_eval import VXResult, evaluate_vx

__all__ = [
    "CHILD",
    "DESCENDANT",
    "Path",
    "Pred",
    "Step",
    "parse_xpath",
    "canonical_item",
    "evaluate_tree",
    "node_path",
    "VXResult",
    "evaluate_vx",
]
