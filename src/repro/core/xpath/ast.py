"""AST for the XPath fragment P[*,//] (paper §3.1).

Grammar (absolute paths only)::

    path      := ('/' | '//') step (('/' | '//') step)*
    step      := test pred*
    test      := NAME | '*' | '@' NAME | 'text()'
    pred      := '[' relpath (op literal)? ']'
    relpath   := test ('/' test)*        -- concrete child-axis only
    op        := '=' | '!=' | '<' | '<=' | '>' | '>='

Tests are normalized to skeleton labels: ``text()`` -> ``#``, ``@x`` ->
``@x``.  A predicate with no operator asserts existence of the relative
path; a comparison predicate has existential semantics — it holds iff some
text value directly under the relative path compares true (the paper's
formal fragment has ``=`` only; the other comparators are the documented
extension of DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

CHILD = "child"
DESCENDANT = "descendant"

OPS = ("=", "!=", "<=", ">=", "<", ">")


@dataclass(frozen=True)
class Pred:
    relpath: tuple  # tuple[str, ...] concrete labels ('#'/@ allowed at end)
    op: str | None = None
    value: str | None = None

    def __str__(self) -> str:
        rel = "/".join("text()" if c == "#" else c for c in self.relpath)
        if self.op is None:
            return f"[{rel}]"
        return f"[{rel} {self.op} '{self.value}']"


@dataclass(frozen=True)
class Step:
    axis: str  # CHILD or DESCENDANT
    test: str  # label, '*', '@name' or '#'
    preds: tuple = ()

    def __str__(self) -> str:
        sep = "//" if self.axis == DESCENDANT else "/"
        test = "text()" if self.test == "#" else self.test
        return sep + test + "".join(str(p) for p in self.preds)


@dataclass(frozen=True)
class Path:
    steps: tuple  # tuple[Step, ...]

    def __str__(self) -> str:
        return "".join(str(s) for s in self.steps)

    def child_axis_only(self) -> bool:
        return all(s.axis == CHILD and s.test not in ("*",) for s in self.steps)
