"""Shared evaluation context: the one object threaded through the stack.

Before this module, every layer of a query evaluation wired its own state:
the engine reset scan counters on the document, built a
:class:`VectorCache`, passed it to the reduction, which passed it to the
XPath evaluator, and each of them reached for ``vdoc.pool`` separately to
check pin accounting.  An :class:`EvalContext` bundles all of it — the
documents in scope (one for a plain query, every member for a repository
query), one vector cache per document, the per-query pass counters behind
the batched-execution invariant, and the engine's guards — so a single
object flows through ``engine`` → ``reduction`` → ``builder`` → the XPath
evaluators, and the invariants are checked in one place, pool-wide.

Invariants enforced here (all machine checks, not comments):

* **no decompression** — :meth:`EvalContext.guard` wraps the evaluation in
  :func:`~repro.core.reconstruct.forbid_decompression`;
* **scan-at-most-once** — after the query, no touched vector may have been
  scanned more than once, logically (per-context scan counts reported by
  ``Vector.scan()`` through the thread's active context) or physically
  (pages read *by this context* bounded by one full chain pass);
* **one pass per plan operation** — batched combo execution promises each
  data vector is swept at most once per plan *operation* across all
  concrete-path combos; full-column kernel sweeps register through
  :meth:`note_pass` and are asserted ``<= 1`` per ``(operation, vector)``
  (the per-combo baseline keeps counting but skips the assertion — that
  contrast is what the batched benchmark regime measures);
* **zero leaked pins** — after the query (successful or not), every buffer
  pool reachable from the documents has ``pinned_total() == 0``.

The context also carries the query's **cooperative deadline**: an
absolute monotonic instant set by :meth:`EvalContext.set_deadline`.
:meth:`EvalContext.checkpoint` — one counter bump plus at most one
``time.monotonic()`` call — is sprinkled through the engine's loops
(vector scans, plan operations, combo enumeration, result-row assembly)
and the buffer pool's fault path, so a runaway query raises a typed
:class:`~repro.errors.DeadlineExceededError` at the next checkpoint and
unwinds through the ordinary failure path — which asserts zero leaked
pins, leaving the pool fully reusable.  Checkpoints are *numbered*, and
``expire_at_checkpoint`` forces expiry at an exact index — the
deterministic fault-injection hook the deadline-expiry sweep uses to
prove the unwind is clean at every single checkpoint of a query.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

import numpy as np

from ..errors import DeadlineExceededError, EngineInvariantError
from .reconstruct import forbid_decompression
from .vectors import Vector, set_active_context


class VectorCache:
    """Per-query lazy vector loads; guarantees one scan per touched vector.

    Shared across every operation of a query — including all operations of
    an XQ graph reduction — so the engine's scan-at-most-once invariant
    holds for whole multi-operation queries, not just single paths.

    A vector may be read through several *representations* in one query —
    the string column, the dictionary codes of a ``dict``-coded vector,
    the float view — all derived from the same single chain pass.  The
    cache funnels them through one logical **touch** per vector
    (:meth:`Vector.note_touch`), so the scan-once invariant counts
    physical passes, not representations.  ``codec_eval=False`` is the
    ``--no-codec-eval`` escape hatch: :meth:`dict_codes` then always
    returns ``None`` and every predicate degrades to the plain string
    column, byte-identically."""

    def __init__(self, vectors: dict[tuple, Vector],
                 codec_eval: bool = True):
        self._vectors = vectors
        self._loaded: dict[tuple, np.ndarray] = {}
        self._codes: dict[tuple, tuple] = {}
        self._touched: set[tuple] = set()
        self.codec_eval = codec_eval

    def _touch(self, path: tuple, vec: Vector) -> None:
        if path not in self._touched:
            self._touched.add(path)
            vec.note_touch()

    def column(self, path: tuple) -> np.ndarray:
        col = self._loaded.get(path)
        if col is None:
            vec = self._vectors[path]
            self._touch(path, vec)
            col = vec._col()
            self._loaded[path] = col
        return col

    def dict_codes(self, path: tuple):
        """``(keys, codes)`` of a dictionary-coded vector — the
        decode-free predicate surface — or ``None`` (not dict-coded, or
        codec evaluation disabled)."""
        if not self.codec_eval:
            return None
        dc = self._codes.get(path)
        if dc is None:
            vec = self._vectors[path]
            dc = vec.dict_codes()
            if dc is None:
                return None
            self._touch(path, vec)
            self._codes[path] = dc
        return dc

    def floats(self, path: tuple) -> np.ndarray:
        vec = self._vectors[path]
        self._touch(path, vec)  # ensure the load is accounted for
        return vec.floats()


class EvalContext:
    """Evaluation state for one query (or one repository query).

    ``strict_passes`` arms the once-per-plan-operation assertion; the
    per-combo baseline evaluates with it off (it violates the invariant by
    construction — that is the regression the batched executor fixes).
    """

    def __init__(self, docs=(), strict_passes: bool = True,
                 codec_eval: bool = True):
        self.docs: list = list(docs)
        self.strict_passes = strict_passes
        #: evaluate predicates over dictionary codes where possible
        #: (``--no-codec-eval`` clears this; results are byte-identical)
        self.codec_eval = codec_eval
        self._caches: dict[int, VectorCache] = {}
        self._passes: dict[tuple, int] = {}
        # per-context accounting windows, keyed by id(I/O unit): logical
        # scans, physical page reads, and decoded string values performed
        # *by this context* — the shared vectors carry no per-query state,
        # so concurrent contexts over the same document never see each
        # other's counts
        self._scans: dict[int, int] = {}
        self._io: dict[int, int] = {}
        self._decodes: dict[int, int] = {}
        #: absolute monotonic instant after which checkpoint() raises
        self.deadline: float | None = None
        #: the deadline budget in seconds (for the error message)
        self._budget: float | None = None
        #: checkpoints passed so far (monotonic across the context's life)
        self.checkpoints: int = 0
        #: deterministic expiry: raise at exactly this checkpoint index
        #: (the deadline-sweep test hook — no wall clock involved)
        self.expire_at_checkpoint: int | None = None

    @classmethod
    def for_doc(cls, vdoc, strict_passes: bool = True) -> "EvalContext":
        return cls([vdoc], strict_passes=strict_passes)

    def add(self, vdoc) -> None:
        """Bring another document into scope (repository members join the
        context lazily, as they are opened)."""
        if not any(d is vdoc for d in self.docs):
            self.docs.append(vdoc)

    def cache(self, vdoc) -> VectorCache:
        """The per-document vector cache (created on first use)."""
        c = self._caches.get(id(vdoc))
        if c is None:
            c = VectorCache(vdoc.vectors, codec_eval=self.codec_eval)
            self._caches[id(vdoc)] = c
        return c

    def pools(self) -> list:
        """Every distinct buffer pool reachable from the documents."""
        seen: set[int] = set()
        out = []
        for d in self.docs:
            pool = getattr(d, "pool", None)
            if pool is not None and id(pool) not in seen:
                seen.add(id(pool))
                out.append(pool)
        return out

    # -- cooperative deadline ----------------------------------------------

    def set_deadline(self, seconds: float | None) -> None:
        """Arm the deadline: the query may run ``seconds`` from *now*.
        ``None`` disarms it (the library default — only services and the
        CLI opt in)."""
        if seconds is None:
            self.deadline = self._budget = None
        else:
            self._budget = seconds
            self.deadline = time.monotonic() + seconds

    def checkpoint(self) -> None:
        """The cooperative cancellation point: cheap enough for inner
        loops (one int bump; the clock is read only when a deadline is
        armed).  Raises :class:`DeadlineExceededError` once the deadline
        has passed — or exactly at ``expire_at_checkpoint`` when the
        deterministic sweep hook is set."""
        n = self.checkpoints
        self.checkpoints = n + 1
        if self.expire_at_checkpoint is not None \
                and n >= self.expire_at_checkpoint:
            raise DeadlineExceededError(self._budget, n)
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise DeadlineExceededError(self._budget, n)

    # -- per-query windows -------------------------------------------------

    def begin(self, vdoc) -> None:
        """Open a fresh accounting window for a query over ``vdoc``: drop
        this context's scan/IO counts for its I/O units, drop its cached
        columns, reset pass counts.  The document itself is untouched —
        other contexts evaluating it concurrently keep their windows."""
        self.add(vdoc)
        for u in vdoc.io_units():
            uid = id(u)
            self._scans.pop(uid, None)
            self._io.pop(uid, None)
            self._decodes.pop(uid, None)
        self._caches.pop(id(vdoc), None)
        self._passes = {k: v for k, v in self._passes.items()
                        if k[0] != id(vdoc)}

    def note_scan(self, unit) -> None:
        """Record one logical scan of ``unit`` (a vector or index handle)
        by this context — called by ``Vector.scan()`` through the
        thread-local active context."""
        uid = id(unit)
        self._scans[uid] = self._scans.get(uid, 0) + 1

    def note_io(self, unit, pages: int) -> None:
        """Record ``pages`` physical page reads performed by this context
        while materializing ``unit``."""
        if pages:
            uid = id(unit)
            self._io[uid] = self._io.get(uid, 0) + pages

    def note_decode(self, unit, count: int) -> None:
        """Record ``count`` string values decoded from encoded storage by
        this context while serving ``unit`` — charged when (and only when)
        a string column is actually built from the stored bytes, so a
        dictionary-coded vector queried purely in code space contributes
        zero.  The decode-free evaluation claim is asserted through
        :meth:`decode_counts`, not taken on faith."""
        if count:
            uid = id(unit)
            self._decodes[uid] = self._decodes.get(uid, 0) + count

    def scan_counts(self, vdoc) -> dict[tuple, int]:
        """This context's per-unit scan counts for ``vdoc`` (tests assert
        the scan-once invariant through this)."""
        return {u.path: self._scans.get(id(u), 0) for u in vdoc.io_units()}

    def decode_counts(self, vdoc) -> dict[tuple, int]:
        """This context's per-unit decoded-value counts for ``vdoc`` (the
        zero-decode machine assertion for code-space evaluation reads
        this)."""
        return {u.path: self._decodes.get(id(u), 0)
                for u in vdoc.io_units()}

    def pages_in_window(self, unit) -> int:
        """Physical pages this context read while materializing ``unit``."""
        return self._io.get(id(unit), 0)

    def note_pass(self, vdoc, key: tuple) -> None:
        """Record one full-column kernel sweep attributed to ``key``
        (an ``(operation, vector path)`` pair from the reduction)."""
        full = (id(vdoc), *key)
        self._passes[full] = self._passes.get(full, 0) + 1

    def pass_counts(self) -> dict[tuple, int]:
        return dict(self._passes)

    # -- invariant checks ----------------------------------------------------

    def check_pins(self) -> None:
        """Zero leaked buffer-pool pins — asserted even when a query
        fails, so corrupt on-disk data surfaces as a StorageError with the
        pool intact and reusable, not as a poisoned pool.

        The check is *per request*: a query runs start to finish on one
        thread, and the pool accounts pins per thread
        (:meth:`~repro.storage.buffer.BufferPool.pinned_local`), so the
        assertion holds concurrently — other requests' transient pins on
        the shared pool do not trip it, and this request cannot hide a
        leak behind them.  Single-threaded, it is exactly the old
        pool-wide check."""
        for pool in self.pools():
            local = getattr(pool, "pinned_local", None)
            pinned = local() if local is not None else pool.pinned_total()
            if pinned:
                raise EngineInvariantError(
                    f"{pinned} buffer-pool page pin(s) leaked by the query"
                )

    def check_passes(self) -> None:
        if not self.strict_passes:
            return
        over = [k for k, v in self._passes.items() if v > 1]
        if over:
            detail = ", ".join(
                f"{'/'.join(k[-1])} in op {k[1:-1]} x{self._passes[k]}"
                for k in over)
            raise EngineInvariantError(
                "data vectors swept more than once per plan operation: "
                + detail)

    def check(self, vdoc) -> None:
        """Post-query assertions for ``vdoc``: scan-once (logical and
        physical), once-per-operation passes, and zero pins pool-wide."""
        units = vdoc.io_units()
        over = [u.path for u in units if self._scans.get(id(u), 0) > 1]
        if over:
            raise EngineInvariantError(
                "vectors scanned more than once in one query: "
                + ", ".join("/".join(p) for p in over)
            )
        # Disk-backed documents: the logical counter is additionally
        # checked against *physical* I/O — within the query window this
        # context may not read more pages of a vector (or index segment)
        # than one full pass over its chain(s).
        over_io = [
            u.path for u in units
            if self._io.get(id(u), 0) > u.n_pages
        ]
        if over_io:
            raise EngineInvariantError(
                "vectors read more pages than one full chain pass: "
                + ", ".join("/".join(p) for p in over_io)
            )
        self.check_passes()
        self.check_pins()

    @contextmanager
    def guard(self, vdoc):
        """The engine's evaluation envelope: fresh accounting window, this
        context installed as the thread's scan/IO sink, no decompression
        inside, pin check on failure, full check on success."""
        self.begin(vdoc)
        prev = set_active_context(self)
        try:
            try:
                with forbid_decompression():
                    yield self
            except BaseException:
                self.check_pins()  # a failed query must not leak pins either
                raise
        finally:
            set_active_context(prev)
        self.check(vdoc)
