"""XQ rewrites: let-alias elimination.

A ``let $z := $y/rel`` binding names a (possibly empty) subsequence of a
bound variable; every use of ``$z`` — in ``where`` operands, in template
splices, or as the base of a ``for`` source — is equivalent to the use of
``$y`` with ``rel`` prefixed.  ``normalize`` folds all lets away, so the
query graph compiler and both evaluators only ever see ``for`` variables.
Existential ``where`` semantics and splice-all template semantics make
this rewriting exact (documented XQ fragment semantics, DESIGN.md).
"""

from __future__ import annotations

from ...errors import XQCompileError
from ..xpath.ast import CHILD, Step
from .ast import (
    Comparison,
    Const,
    ForBinding,
    RelSource,
    TElem,
    TSplice,
    TText,
    VarRel,
    XQuery,
)


def _resolve_lets(xq: XQuery) -> dict[str, tuple[str, tuple]]:
    """Map each let variable to its (for-variable base, relative labels),
    following alias chains; rejects cycles and unknown bases."""
    for_vars = {b.var for b in xq.bindings}
    raw = {}
    for let in xq.lets:
        if let.var in for_vars or let.var in raw:
            raise XQCompileError(f"duplicate variable ${let.var}")
        raw[let.var] = (let.base, let.rel)
    resolved: dict[str, tuple[str, tuple]] = {}

    def resolve(var: str, seen: tuple = ()) -> tuple[str, tuple]:
        if var in resolved:
            return resolved[var]
        if var in seen:
            raise XQCompileError(f"cyclic let chain through ${var}")
        base, rel = raw[var]
        if base in for_vars:
            out = (base, rel)
        elif base in raw:
            bbase, brel = resolve(base, (*seen, var))
            if brel and brel[-1] in ("#",) or (brel and brel[-1].startswith("@")):
                raise XQCompileError(
                    f"let ${var}: base ${base} ends at a text/attribute node")
            out = (bbase, (*brel, *rel))
        else:
            raise XQCompileError(f"let ${var}: unknown base variable ${base}")
        resolved[var] = out
        return out

    for var in raw:
        resolve(var)
    return resolved


def normalize(xq: XQuery) -> XQuery:
    """Fold let aliases away; returns an equivalent let-free query."""
    if not xq.lets:
        return xq
    aliases = _resolve_lets(xq)
    for_vars = {b.var for b in xq.bindings}

    def base_of(var: str, rel: tuple, where: str) -> tuple[str, tuple]:
        if var in for_vars:
            return var, rel
        if var not in aliases:
            raise XQCompileError(f"unknown variable ${var} in {where}")
        base, brel = aliases[var]
        if brel and (brel[-1] == "#" or brel[-1].startswith("@")) and rel:
            raise XQCompileError(
                f"${var} is text/attribute-valued and cannot be extended")
        return base, (*brel, *rel)

    bindings = []
    for b in xq.bindings:
        src = b.source
        if isinstance(src, RelSource) and src.var not in for_vars:
            base, brel = base_of(src.var, (), f"for ${b.var}")
            prefix = tuple(Step(CHILD, label) for label in brel)
            src = RelSource(base, (*prefix, *src.steps))
        bindings.append(ForBinding(b.var, src))

    def map_operand(o, where):
        if isinstance(o, Const):
            return o
        return VarRel(*base_of(o.var, o.rel, where))

    where = tuple(
        Comparison(map_operand(c.left, "where"), c.op,
                   map_operand(c.right, "where"))
        for c in xq.where
    )

    def map_template(t):
        if isinstance(t, TText):
            return t
        if isinstance(t, TSplice):
            return TSplice(*base_of(t.var, t.rel, "return"))
        return TElem(t.tag, tuple(map_template(c) for c in t.children))

    ret = tuple(map_template(t) for t in xq.ret)
    return XQuery(xq.root_tag, tuple(bindings), (), where, ret,
                  xq.source_text)
