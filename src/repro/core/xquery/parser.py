"""Recursive-descent parser for XQ / XQ[*,//].

Concrete grammar (see :mod:`repro.core.xquery.ast` for semantics)::

    query    := '<' NAME '>' '{' flwr '}' '</' NAME '>'  |  flwr
    flwr     := 'for' for_bind (',' for_bind)*
                ('let' let_bind (',' let_bind)*)?
                ('where' comparison ('and' comparison)*)?
                'return' titem+
    for_bind := VAR 'in' (abspath | VAR relsteps)
    let_bind := VAR ':=' VAR relpath
    abspath  := an absolute XPath of P[*,//]  -- handed verbatim to
                repro.core.xpath.parser.parse_xpath (wildcards,
                descendants and predicates all work)
    relsteps := (('/' | '//') test)*         -- test: NAME | '*' | '@' NAME
                                                     | 'text()'; no preds
    relpath  := ('/' ctest)*                 -- ctest: NAME | '@' NAME
                                                     | 'text()' (concrete)
    comparison := operand op operand         -- op: = != < <= > >=
    operand  := VAR relpath | STRING | NUMBER
    titem    := '<' NAME '>' tcontent* '</' NAME '>' | '<' NAME '/>'
              | '{' VAR relpath '}' | VAR relpath
    tcontent := titem | raw text             -- raw text is trimmed
    VAR      := '$' NAME

The absolute-path arm is what makes this the XQ[*,//] extension: ``for``
bindings reuse the existing XPath machinery wholesale.
"""

from __future__ import annotations

from ...errors import XQSyntaxError
from ..xpath.ast import CHILD, DESCENDANT, OPS, Step
from ..xpath.parser import parse_xpath
from .ast import (
    AbsSource,
    Comparison,
    Const,
    ForBinding,
    LetBinding,
    RelSource,
    TElem,
    TSplice,
    TText,
    VarRel,
    XQuery,
)

_NAME_START = set("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz_")
_NAME_CHARS = _NAME_START | set("0123456789-.:")
_KEYWORDS = ("let", "where", "return")


class _Scanner:
    def __init__(self, s: str):
        self.s = s
        self.i = 0

    def err(self, msg: str) -> XQSyntaxError:
        return XQSyntaxError(f"{msg} at offset {self.i} in {self.s!r}")

    def ws(self) -> None:
        while self.i < len(self.s) and self.s[self.i] in " \t\r\n":
            self.i += 1

    def eof(self) -> bool:
        self.ws()
        return self.i >= len(self.s)

    def peek(self, tok: str) -> bool:
        self.ws()
        return self.s.startswith(tok, self.i)

    def eat(self, tok: str) -> bool:
        if self.peek(tok):
            self.i += len(tok)
            return True
        return False

    def expect(self, tok: str) -> None:
        if not self.eat(tok):
            raise self.err(f"expected {tok!r}")

    def name(self) -> str:
        self.ws()
        i = self.i
        if i >= len(self.s) or self.s[i] not in _NAME_START:
            raise self.err("expected a name")
        j = i + 1
        while j < len(self.s) and self.s[j] in _NAME_CHARS:
            j += 1
        self.i = j
        return self.s[i:j]

    def peek_word(self, word: str) -> bool:
        """True iff ``word`` appears next as a whole word."""
        self.ws()
        j = self.i + len(word)
        return (self.s.startswith(word, self.i)
                and (j >= len(self.s) or self.s[j] not in _NAME_CHARS))

    def eat_word(self, word: str) -> bool:
        if self.peek_word(word):
            self.i += len(word)
            return True
        return False

    def expect_word(self, word: str) -> None:
        if not self.eat_word(word):
            raise self.err(f"expected {word!r}")

    def var(self) -> str:
        self.expect("$")
        return self.name()


def _scan_abspath(sc: _Scanner) -> str:
    """Cut the absolute-XPath substring of a ``for`` source: everything up
    to a top-level ',' or a top-level ``let``/``where``/``return`` keyword
    (bracket depth and string literals are tracked so predicates may
    contain anything)."""
    s, start = sc.s, sc.i
    i, depth = start, 0
    while i < len(s):
        c = s[i]
        if c in "\"'":
            end = s.find(c, i + 1)
            if end < 0:
                raise sc.err("unterminated string literal in path")
            i = end + 1
            continue
        if c == "[":
            depth += 1
        elif c == "]":
            depth -= 1
        elif depth == 0:
            if c == ",":
                break
            if c in " \t\r\n":
                j = i
                while j < len(s) and s[j] in " \t\r\n":
                    j += 1
                k = j
                while k < len(s) and s[k] in _NAME_CHARS:
                    k += 1
                if s[j:k] in _KEYWORDS:
                    break
        i += 1
    sc.i = i
    text = s[start:i].strip()
    if not text:
        raise sc.err("expected an absolute path")
    return text


def _parse_relsteps(sc: _Scanner) -> tuple:
    """``(('/' | '//') test)*`` with wildcard/descendant but no predicates
    (conditions belong in ``where``)."""
    steps: list[Step] = []
    while True:
        if sc.eat("//"):
            axis = DESCENDANT
        elif sc.eat("/"):
            axis = CHILD
        else:
            break
        if sc.eat("*"):
            test = "*"
        elif sc.eat("@"):
            test = "@" + sc.name()
        else:
            name = sc.name()
            if name == "text" and sc.eat("("):
                sc.expect(")")
                test = "#"
            else:
                test = name
        if steps and steps[-1].test == "#":
            raise sc.err("text() must be the last step")
        if steps and steps[-1].test.startswith("@") and test != "#":
            raise sc.err("an attribute step may only be followed by text()")
        steps.append(Step(axis, test))
        if sc.peek("["):
            raise sc.err(
                "predicates are not supported in relative bindings; "
                "use a where clause")
    return tuple(steps)


def _parse_relpath(sc: _Scanner) -> tuple:
    """Concrete child-axis relative path: ``('/' ctest)*`` -> label tuple."""
    rel: list[str] = []
    while sc.eat("/"):
        if sc.peek("/"):
            raise sc.err("'//' is not supported here (child axis only)")
        if sc.eat("@"):
            comp = "@" + sc.name()
        else:
            name = sc.name()
            if name == "text" and sc.eat("("):
                sc.expect(")")
                comp = "#"
            else:
                comp = name
        if rel and rel[-1] == "#":
            raise sc.err("text() must be the last component")
        if rel and rel[-1].startswith("@") and comp != "#":
            raise sc.err("an attribute component may only be followed by text()")
        rel.append(comp)
    return tuple(rel)


def _parse_source(sc: _Scanner) -> AbsSource | RelSource:
    sc.ws()
    if sc.peek("$"):
        var = sc.var()
        steps = _parse_relsteps(sc)
        if not steps:
            raise sc.err("a relative source needs at least one step")
        return RelSource(var, steps)
    if sc.peek_word("collection"):
        sc.eat_word("collection")
        sc.expect("(")
        sc.ws()
        if sc.i >= len(sc.s) or sc.s[sc.i] not in "\"'":
            raise sc.err("collection() takes a quoted name")
        name = _parse_literal(sc)
        sc.expect(")")
        if not sc.peek("/"):
            raise sc.err("collection(...) must be followed by an "
                         "absolute path")
        return AbsSource(parse_xpath(_scan_abspath(sc)), collection=name)
    if sc.peek("/"):
        return AbsSource(parse_xpath(_scan_abspath(sc)))
    raise sc.err("expected an absolute path, collection('name')/..., "
                 "or $var/...")


def _parse_literal(sc: _Scanner) -> str:
    sc.ws()
    if sc.i < len(sc.s) and sc.s[sc.i] in "\"'":
        quote = sc.s[sc.i]
        end = sc.s.find(quote, sc.i + 1)
        if end < 0:
            raise sc.err("unterminated string literal")
        value = sc.s[sc.i + 1 : end]
        sc.i = end + 1
        return value
    i = j = sc.i
    while j < len(sc.s) and (sc.s[j].isdigit() or sc.s[j] in "+-.eE"):
        j += 1
    if j == i:
        raise sc.err("expected a literal")
    sc.i = j
    return sc.s[i:j]


def _parse_operand(sc: _Scanner) -> VarRel | Const:
    sc.ws()
    if sc.peek("$"):
        var = sc.var()
        return VarRel(var, _parse_relpath(sc))
    return Const(_parse_literal(sc))


def _parse_comparison(sc: _Scanner) -> Comparison:
    left = _parse_operand(sc)
    sc.ws()
    for candidate in ("<=", ">=", "!=", "=", "<", ">"):
        if sc.eat(candidate):
            op = candidate
            break
    else:
        raise sc.err(f"expected a comparison operator (one of {OPS})")
    right = _parse_operand(sc)
    if isinstance(left, Const) and isinstance(right, Const):
        raise sc.err("a comparison needs at least one variable operand")
    return Comparison(left, op, right)


def _parse_template_item(sc: _Scanner):
    sc.ws()
    if sc.eat("{"):
        var = sc.var()
        rel = _parse_relpath(sc)
        sc.expect("}")
        return TSplice(var, rel)
    if sc.peek("$"):
        var = sc.var()
        return TSplice(var, _parse_relpath(sc))
    if sc.peek("<"):
        return _parse_constructor(sc)
    raise sc.err("expected '<tag>', '{$var...}' or '$var...' in template")


def _parse_constructor(sc: _Scanner) -> TElem:
    sc.expect("<")
    tag = sc.name()
    if sc.eat("/>"):
        return TElem(tag, ())
    sc.expect(">")
    children: list = []
    while True:
        if sc.eat("</"):
            end = sc.name()
            if end != tag:
                raise sc.err(f"mismatched end tag </{end}> for <{tag}>")
            sc.expect(">")
            return TElem(tag, tuple(children))
        if sc.peek("<"):
            children.append(_parse_constructor(sc))
        elif sc.eat("{"):
            var = sc.var()
            rel = _parse_relpath(sc)
            sc.expect("}")
            children.append(TSplice(var, rel))
        else:
            # raw text up to the next markup character, trimmed
            i = sc.i
            while i < len(sc.s) and sc.s[i] not in "<{":
                i += 1
            if i == sc.i:
                raise sc.err("unterminated element constructor")
            text = sc.s[sc.i : i].strip()
            sc.i = i
            if text:
                children.append(TText(text))


def _parse_flwr(sc: _Scanner, root_tag: str, source_text: str) -> XQuery:
    sc.expect_word("for")
    bindings: list[ForBinding] = []
    while True:
        var = sc.var()
        sc.expect_word("in")
        bindings.append(ForBinding(var, _parse_source(sc)))
        if not sc.eat(","):
            break
    lets: list[LetBinding] = []
    if sc.eat_word("let"):
        while True:
            var = sc.var()
            sc.expect(":=")
            base = sc.var()
            rel = _parse_relpath(sc)
            if not rel:
                raise sc.err("a let binding needs a non-empty relative path")
            lets.append(LetBinding(var, base, rel))
            if not sc.eat(","):
                break
    where: list[Comparison] = []
    if sc.eat_word("where"):
        while True:
            where.append(_parse_comparison(sc))
            if not sc.eat_word("and"):
                break
    sc.expect_word("return")
    ret: list = [_parse_template_item(sc)]
    while True:
        sc.ws()
        if sc.i < len(sc.s) and sc.s[sc.i] in "<{$" and not sc.peek("</"):
            ret.append(_parse_template_item(sc))
        else:
            break
    return XQuery(root_tag, tuple(bindings), tuple(lets), tuple(where),
                  tuple(ret), source_text)


DEFAULT_ROOT_TAG = "result"


def parse_xq(s: str) -> XQuery:
    """Parse an XQ query.  A bare FLWR expression is implicitly wrapped in
    a ``<result>`` element so the output is always a single document."""
    sc = _Scanner(s)
    sc.ws()
    if sc.peek("<"):
        sc.expect("<")
        root_tag = sc.name()
        sc.expect(">")
        sc.expect("{")
        xq = _parse_flwr(sc, root_tag, s)
        sc.expect("}")
        sc.expect("</")
        end = sc.name()
        if end != root_tag:
            raise sc.err(f"mismatched end tag </{end}> for <{root_tag}>")
        sc.expect(">")
    else:
        xq = _parse_flwr(sc, DEFAULT_ROOT_TAG, s)
    if not sc.eof():
        raise sc.err("unexpected trailing input")
    return xq
