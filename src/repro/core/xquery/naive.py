"""Naive XQ reference evaluator: nested loops over the *decompressed* tree.

This is the §3.2 baseline generalized to FLWR: reconstruct the document,
then evaluate the query node at a time — ``for`` clauses become nested
Python loops in document order, ``where`` comparisons are existential over
the text values reachable by their operand paths, and the return template
is instantiated once per surviving binding tuple.  Semantics are kept
bit-identical to the graph-reduction engine so the cross-evaluator tests
can compare serialized results byte for byte on arbitrary documents.
"""

from __future__ import annotations

from ...errors import XQCompileError
from ...xmldata.model import (
    Attr,
    Element,
    Node,
    Text,
    node_label,
    preorder,
    xpath_children,
)
from ..xpath.ast import CHILD
from ..xpath.tree_eval import _compare, evaluate_tree
from .ast import AbsSource, Const, TElem, TSplice, TText, VarRel, XQuery
from .rewrite import normalize


def _match(test: str, label: str) -> bool:
    if test == "*":
        return label != "#" and not label.startswith("@")
    return test == label


def _rel_step_nodes(nodes: list[Node], step, order: dict[int, int]) -> list[Node]:
    seen: set[int] = set()
    out: list[Node] = []
    for n in nodes:
        if step.axis == CHILD:
            candidates = xpath_children(n)
        else:
            candidates = [d for c in xpath_children(n) for d in preorder(c)]
        for c in candidates:
            if _match(step.test, node_label(c)) and id(c) not in seen:
                seen.add(id(c))
                out.append(c)
    out.sort(key=lambda n: order[id(n)])
    return out


def _concrete_nodes(n: Node, rel: tuple) -> list[Node]:
    """Nodes at a concrete child-label path under ``n``, document order."""
    cur = [n]
    for label in rel:
        cur = [c for x in cur for c in xpath_children(x)
               if node_label(c) == label]
        if not cur:
            break
    return cur


def _operand_texts(env: dict[str, Node], operand: VarRel) -> list[str]:
    n = env[operand.var]
    rel = operand.rel
    if not rel and isinstance(n, Text):
        return [n.value]
    if not rel or rel[-1] != "#":
        rel = (*rel, "#")
    return [t.value for t in _concrete_nodes(n, rel) if isinstance(t, Text)]


def _holds(env: dict[str, Node], comp) -> bool:
    if isinstance(comp.left, Const):
        lefts = [comp.left.value]
    else:
        lefts = _operand_texts(env, comp.left)
    if isinstance(comp.right, Const):
        rights = [comp.right.value]
    else:
        rights = _operand_texts(env, comp.right)
    return any(_compare(a, comp.op, b) for a in lefts for b in rights)


def _instantiate(item, env: dict[str, Node], out_parent: Element) -> None:
    if isinstance(item, TText):
        out_parent.append(Text(item.value))
    elif isinstance(item, TElem):
        elem = Element(item.tag)
        out_parent.append(elem)
        for child in item.children:
            _instantiate(child, env, elem)
    else:
        assert isinstance(item, TSplice)
        for n in _concrete_nodes(env[item.var], item.rel):
            if isinstance(n, Text):
                out_parent.append(Text(n.value))
            elif isinstance(n, Attr):
                out_parent.attrs[n.name] = n.value
            else:
                out_parent.append(n)  # whole subtree, shared read-only


def evaluate_xq_tree(root: Element, xq: XQuery) -> Element:
    """Evaluate a (normalized or not) XQ query over a document tree."""
    xq = normalize(xq)
    order = {id(n): i for i, n in enumerate(preorder(root))}
    result = Element(xq.root_tag)
    bound: set[str] = set()
    for b in xq.bindings:
        if b.var in bound:
            raise XQCompileError(f"duplicate variable ${b.var}")
        if not isinstance(b.source, AbsSource) and b.source.var not in bound:
            raise XQCompileError(
                f"for ${b.var}: unknown base variable ${b.source.var}")
        bound.add(b.var)

    def loop(i: int, env: dict[str, Node]) -> None:
        if i == len(xq.bindings):
            if all(_holds(env, c) for c in xq.where):
                for item in xq.ret:
                    _instantiate(item, env, result)
            return
        binding = xq.bindings[i]
        src = binding.source
        if isinstance(src, AbsSource):
            nodes = evaluate_tree(root, src.path)
        else:
            nodes = [env[src.var]]
            for step in src.steps:
                nodes = _rel_step_nodes(nodes, step, order)
                if not nodes:
                    break
        for n in nodes:
            env[binding.var] = n
            loop(i + 1, env)
        env.pop(binding.var, None)

    loop(0, {})
    return result
