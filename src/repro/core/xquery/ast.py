"""AST for the XQ fragment (paper §3.1) and its XQ[*,//] extension.

Shape (concrete grammar in :mod:`repro.core.xquery.parser`)::

    query  := '<' tag '>' '{' flwr '}' '</' tag '>'  |  flwr
    flwr   := 'for' $v 'in' source (',' $v 'in' source)*
              ('let' $v ':=' $y '/' relpath (',' ...)*)?
              ('where' comparison ('and' comparison)*)?
              'return' template

A ``for`` source is either an *absolute* XPath of the existing fragment
P[*,//] (reusing :mod:`repro.core.xpath` wholesale — wildcards,
descendants and predicates included) or a *relative* path ``$y/steps``
where steps may use the child and descendant axes and wildcards.  ``let``
bindings are concrete child-path aliases (the paper's let clauses bind
subsequences of a variable; we realize them by rewriting, see
``rewrite.normalize``).  ``where`` is a conjunction of comparisons between
text-valued variable paths and constants (selections) or between two
variable paths (joins); the paper's formal fragment has ``=`` only — the
other comparators are the documented DESIGN.md extension.  The return
template is a forest of element constructors, literal text, and
``{$v/relpath}`` splices that copy whole subtrees (or text / attribute
values) of the bound occurrence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..xpath.ast import OPS, Path

__all__ = [
    "OPS", "AbsSource", "RelSource", "ForBinding", "LetBinding",
    "Const", "VarRel", "Comparison", "TElem", "TText", "TSplice", "XQuery",
]


def _fmt_rel(var: str, rel: tuple) -> str:
    parts = [f"${var}"]
    parts.extend("text()" if c == "#" else c for c in rel)
    return "/".join(parts)


@dataclass(frozen=True)
class AbsSource:
    """A ``for``/``let`` source that is an absolute XPath (full P[*,//]).

    ``collection`` names the repository collection the path ranges over
    (``collection("name")/...``); ``None`` means the context document."""

    path: Path
    collection: str | None = None

    def __str__(self) -> str:
        if self.collection is not None:
            return f"collection({self.collection!r}){self.path}"
        return str(self.path)


@dataclass(frozen=True)
class RelSource:
    """A source relative to another variable: ``$var/steps``.

    ``steps`` are :class:`~repro.core.xpath.ast.Step` objects restricted to
    the child/descendant axes with name, ``*``, ``@name`` or ``text()``
    tests and no predicates (conditions belong in ``where``).
    """

    var: str
    steps: tuple  # tuple[Step, ...]

    def __str__(self) -> str:
        return f"${self.var}" + "".join(str(s) for s in self.steps)


@dataclass(frozen=True)
class ForBinding:
    var: str
    source: AbsSource | RelSource

    def __str__(self) -> str:
        return f"${self.var} in {self.source}"


@dataclass(frozen=True)
class LetBinding:
    """``let $var := $base/rel`` — a concrete child-path alias."""

    var: str
    base: str
    rel: tuple  # tuple[str, ...] concrete labels ('#'/'@name' at end only)

    def __str__(self) -> str:
        return f"${self.var} := {_fmt_rel(self.base, self.rel)}"


@dataclass(frozen=True)
class Const:
    value: str

    def __str__(self) -> str:
        return f"'{self.value}'"


@dataclass(frozen=True)
class VarRel:
    """A text-valued operand ``$var/rel`` in a comparison (rel concrete)."""

    var: str
    rel: tuple  # tuple[str, ...]

    def __str__(self) -> str:
        return _fmt_rel(self.var, self.rel)


@dataclass(frozen=True)
class Comparison:
    left: VarRel | Const
    op: str  # one of OPS
    right: VarRel | Const

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class TElem:
    """Element constructor ``<tag>children</tag>`` in a return template."""

    tag: str
    children: tuple = ()  # of TElem | TText | TSplice

    def __str__(self) -> str:
        inner = "".join(str(c) for c in self.children)
        return f"<{self.tag}>{inner}</{self.tag}>"


@dataclass(frozen=True)
class TText:
    """Literal text in a return template."""

    value: str

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class TSplice:
    """``{$var/rel}`` — splice the subtrees (or text/attribute values) at a
    concrete child path of the bound occurrence into the output."""

    var: str
    rel: tuple = ()  # tuple[str, ...] concrete labels; may end '#'/'@name'

    def __str__(self) -> str:
        return "{" + _fmt_rel(self.var, self.rel) + "}"


@dataclass(frozen=True)
class XQuery:
    root_tag: str
    bindings: tuple = ()  # tuple[ForBinding, ...] in declaration order
    lets: tuple = ()      # tuple[LetBinding, ...]
    where: tuple = ()     # tuple[Comparison, ...] (conjunction)
    ret: tuple = ()       # template forest: tuple[TElem | TText | TSplice]
    source_text: str | None = field(default=None, compare=False)

    def __str__(self) -> str:
        parts = ["for " + ", ".join(str(b) for b in self.bindings)]
        if self.lets:
            parts.append("let " + ", ".join(str(b) for b in self.lets))
        if self.where:
            parts.append("where " + " and ".join(str(c) for c in self.where))
        parts.append("return " + "".join(str(t) for t in self.ret))
        flwr = " ".join(parts)
        return f"<{self.root_tag}>{{ {flwr} }}</{self.root_tag}>"
