"""XQ — the paper's FLWR fragment (§3.1, §3.3): AST, parser, rewrites and
the naive decompress-and-evaluate reference evaluator."""

from .ast import (
    AbsSource,
    Comparison,
    Const,
    ForBinding,
    LetBinding,
    RelSource,
    TElem,
    TSplice,
    TText,
    VarRel,
    XQuery,
)
from .naive import evaluate_xq_tree
from .parser import parse_xq
from .rewrite import normalize

__all__ = [
    "AbsSource",
    "Comparison",
    "Const",
    "ForBinding",
    "LetBinding",
    "RelSource",
    "TElem",
    "TSplice",
    "TText",
    "VarRel",
    "XQuery",
    "evaluate_xq_tree",
    "parse_xq",
    "normalize",
]
