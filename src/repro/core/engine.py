"""Top-level query engine: dispatch between the vectorized evaluator and
the naive decompress-evaluate baseline, enforcing the paper's invariants.

``mode="vx"`` (the default) evaluates directly over (skeleton, vectors):

* the whole evaluation runs inside :func:`forbid_decompression`, so any
  skeleton decompression raises — "querying without decompression" is
  machine-checked on every query;
* after evaluation the engine asserts every touched data vector was
  scanned at most once ("each data vector is scanned at most once").

``mode="naive"`` is the baseline the paper argues against: reconstruct the
full document tree (linear in |T|, counted by the decompression hook), then
walk it node at a time.
"""

from __future__ import annotations

from ..errors import EngineInvariantError
from .reconstruct import forbid_decompression, reconstruct
from .vdoc import VectorizedDocument
from .xpath.ast import Path
from .xpath.parser import parse_xpath
from .xpath.tree_eval import canonical_item, evaluate_tree, node_path
from .xpath.vx_eval import VXResult, evaluate_vx

MODES = ("vx", "naive")


class TreeResult:
    """Result of the naive evaluator: actual nodes of the decompressed tree,
    exposing the same reporting surface as :class:`VXResult`."""

    def __init__(self, tree, nodes):
        self.tree = tree
        self.nodes = nodes

    def count(self) -> int:
        return len(self.nodes)

    def text_values(self) -> list[str]:
        from ..xmldata.model import Text

        return [n.value for n in self.nodes if isinstance(n, Text)]

    def canonical(self) -> list[tuple]:
        """Canonical items grouped by concrete path (sorted), document order
        within a group — the same ordering contract as ``VXResult``."""
        paths = node_path(self.tree, {id(n) for n in self.nodes})
        keyed = sorted(
            range(len(self.nodes)),
            key=lambda i: (paths[id(self.nodes[i])], i),
        )
        return [canonical_item(self.nodes[i]) for i in keyed]


def eval_query(vdoc: VectorizedDocument, query: str | Path, mode: str = "vx"):
    """Evaluate ``query`` (an XPath string or parsed :class:`Path`)."""
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; expected one of {MODES}")
    path = query if isinstance(query, Path) else parse_xpath(query)

    if mode == "naive":
        tree = reconstruct(vdoc.store, vdoc.root, vdoc.vectors)
        return TreeResult(tree, evaluate_tree(tree, path))

    vdoc.reset_scan_counts()
    with forbid_decompression():
        result: VXResult = evaluate_vx(vdoc, path)
    over = [p for p, v in vdoc.vectors.items() if v.scan_count > 1]
    if over:
        raise EngineInvariantError(
            "vectors scanned more than once in one query: "
            + ", ".join("/".join(p) for p in over)
        )
    return result
