"""Top-level query engine: dispatch between the vectorized evaluator and
the naive decompress-evaluate baseline, enforcing the paper's invariants.

``mode="vx"`` (the default) evaluates directly over (skeleton, vectors):

* the whole evaluation runs inside :func:`forbid_decompression`, so any
  skeleton decompression raises — "querying without decompression" is
  machine-checked on every query;
* after evaluation the engine asserts every touched data vector was
  scanned at most once ("each data vector is scanned at most once").

``mode="naive"`` is the baseline the paper argues against: reconstruct the
full document tree (linear in |T|, counted by the decompression hook), then
walk it node at a time.
"""

from __future__ import annotations

from ..errors import EngineInvariantError
from ..xmldata.serializer import serialize
from .builder import build_result
from .planner import plan_query
from .qgraph import compile_query
from .reconstruct import forbid_decompression, reconstruct
from .reduction import reduce_query
from .vdoc import VectorizedDocument
from .xpath.ast import Path
from .xpath.parser import parse_xpath
from .xpath.tree_eval import canonical_item, evaluate_tree
from .xpath.vx_eval import VectorCache, VXResult, evaluate_vx
from .xquery.ast import XQuery
from .xquery.naive import evaluate_xq_tree
from .xquery.parser import parse_xq

MODES = ("vx", "naive")


def _check_no_pins(vdoc: VectorizedDocument) -> None:
    """Zero leaked buffer-pool pins — asserted even when a query fails,
    so corrupt on-disk data surfaces as a StorageError with the pool
    intact and reusable, not as a poisoned pool."""
    pool = getattr(vdoc, "pool", None)
    if pool is not None:
        pinned = pool.pinned_total()
        if pinned:
            raise EngineInvariantError(
                f"{pinned} buffer-pool page pin(s) leaked by the query"
            )


def _check_scan_once(vdoc: VectorizedDocument) -> None:
    over = [p for p, v in vdoc.vectors.items() if v.scan_count > 1]
    if over:
        raise EngineInvariantError(
            "vectors scanned more than once in one query: "
            + ", ".join("/".join(p) for p in over)
        )
    # Disk-backed documents: the in-memory counter is additionally checked
    # against *physical* I/O — within the query window no vector may read
    # more pages than one full pass over its on-disk chain.
    over_io = [
        p for p, v in vdoc.vectors.items()
        if v.pages_read_in_window() > v.n_pages
    ]
    if over_io:
        raise EngineInvariantError(
            "vectors read more pages than one full chain pass: "
            + ", ".join("/".join(p) for p in over_io)
        )
    _check_no_pins(vdoc)


class TreeResult:
    """Result of the naive evaluator: actual nodes of the decompressed tree,
    exposing the same reporting surface as :class:`VXResult`."""

    def __init__(self, tree, nodes):
        self.tree = tree
        self.nodes = nodes

    def count(self) -> int:
        return len(self.nodes)

    def text_values(self) -> list[str]:
        from ..xmldata.model import Text

        return [n.value for n in self.nodes if isinstance(n, Text)]

    def canonical(self) -> list[tuple]:
        """Canonical items in document order — the same ordering contract as
        ``VXResult`` (which interleaves concrete paths by preorder rank)."""
        return [canonical_item(n) for n in self.nodes]


def eval_query(vdoc: VectorizedDocument, query: str | Path, mode: str = "vx"):
    """Evaluate ``query`` (an XPath string or parsed :class:`Path`)."""
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; expected one of {MODES}")
    path = query if isinstance(query, Path) else parse_xpath(query)

    if mode == "naive":
        tree = reconstruct(vdoc.store, vdoc.root, vdoc.vectors)
        return TreeResult(tree, evaluate_tree(tree, path))

    vdoc.reset_scan_counts()
    try:
        with forbid_decompression():
            result: VXResult = evaluate_vx(vdoc, path)
    except BaseException:
        _check_no_pins(vdoc)  # a failed query must not leak pins either
        raise
    _check_scan_once(vdoc)
    return result


class XQTreeResult:
    """Naive XQ result: a constructed document tree."""

    def __init__(self, tree):
        self.tree = tree

    def to_xml(self) -> str:
        return serialize(self.tree)


class XQVXResult:
    """Vectorized XQ result: a result VectorizedDocument (sharing the
    input's node store), plus the plan and tuple table for inspection."""

    def __init__(self, out, plan, table):
        self.vdoc = out
        self.plan = plan
        self.table = table
        self.n_tuples = table.n_rows

    def to_xml(self) -> str:
        # decompresses the (typically small) *result*, outside the query
        return self.vdoc.to_xml()


def eval_xq(vdoc: VectorizedDocument, query: str | XQuery, mode: str = "vx"):
    """Evaluate an XQ query (string or parsed :class:`XQuery`).

    ``vx`` compiles to (Gq, Gr), plans, reduces over extended vectors and
    constructs the result — all inside :func:`forbid_decompression` and
    under the scan-at-most-once assertion.  ``naive`` reconstructs the
    tree and runs the nested-loop reference evaluator.
    """
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; expected one of {MODES}")
    xq = query if isinstance(query, XQuery) else parse_xq(query)
    gq, gr = compile_query(xq)

    if mode == "naive":
        tree = reconstruct(vdoc.store, vdoc.root, vdoc.vectors)
        out = evaluate_xq_tree(tree, xq)
        return XQTreeResult(out)

    vdoc.reset_scan_counts()
    try:
        with forbid_decompression():
            plan = plan_query(gq, vdoc)
            cache = VectorCache(vdoc.vectors)
            table = reduce_query(vdoc, gq, plan, cache)
            out = build_result(vdoc, gr, table)
    except BaseException:
        _check_no_pins(vdoc)  # a failed query must not leak pins either
        raise
    _check_scan_once(vdoc)
    return XQVXResult(out, plan, table)
