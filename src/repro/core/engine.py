"""Top-level query engine: dispatch between the vectorized evaluator and
the naive decompress-evaluate baseline, enforcing the paper's invariants.

``mode="vx"`` (the default) evaluates directly over (skeleton, vectors)
inside an :class:`~repro.core.context.EvalContext` guard:

* the whole evaluation runs inside :func:`forbid_decompression`, so any
  skeleton decompression raises — "querying without decompression" is
  machine-checked on every query;
* after evaluation the context asserts every touched data vector was
  scanned at most once ("each data vector is scanned at most once"),
  logically and against physical page I/O, with zero leaked pins
  pool-wide;
* XQ runs the reduction plan *batched* by default — one plan execution
  over the whole concrete-path combo table — and the context additionally
  asserts at most one full-column sweep per plan operation per vector.
  ``batched=False`` selects the per-combo baseline executor (benchmarks
  only; the sweep assertion is disarmed because the baseline violates it
  by construction).

``mode="naive"`` is the baseline the paper argues against: reconstruct the
full document tree (linear in |T|, counted by the decompression hook), then
walk it node at a time.
"""

from __future__ import annotations

from ..xmldata.serializer import serialize
from .builder import build_result
from .context import EvalContext
from .planner import plan_query
from .qgraph import compile_query
from .reconstruct import reconstruct
from .reduction import reduce_query
from .vdoc import VectorizedDocument
from .xpath.ast import Path
from .xpath.parser import parse_xpath
from .xpath.tree_eval import canonical_item, evaluate_tree
from .xpath.vx_eval import VXResult, evaluate_vx
from .xquery.ast import XQuery
from .xquery.naive import evaluate_xq_tree
from .xquery.parser import parse_xq

MODES = ("vx", "naive")


class TreeResult:
    """Result of the naive evaluator: actual nodes of the decompressed tree,
    exposing the same reporting surface as :class:`VXResult`."""

    def __init__(self, tree, nodes):
        self.tree = tree
        self.nodes = nodes

    def count(self) -> int:
        return len(self.nodes)

    def text_values(self) -> list[str]:
        from ..xmldata.model import Text

        return [n.value for n in self.nodes if isinstance(n, Text)]

    def canonical(self) -> list[tuple]:
        """Canonical items in document order — the same ordering contract as
        ``VXResult`` (which interleaves concrete paths by preorder rank)."""
        return [canonical_item(n) for n in self.nodes]


def eval_query(vdoc: VectorizedDocument, query: str | Path, mode: str = "vx",
               ctx: EvalContext | None = None, use_codecs: bool = True):
    """Evaluate ``query`` (an XPath string or parsed :class:`Path`).

    ``use_codecs=False`` (the ``--no-codec-eval`` escape hatch) forbids
    code-space predicate evaluation over dictionary-coded vectors —
    every predicate then runs over the decoded string column, with
    byte-identical results."""
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; expected one of {MODES}")
    path = query if isinstance(query, Path) else parse_xpath(query)

    if mode == "naive":
        tree = reconstruct(vdoc.store, vdoc.root, vdoc.vectors)
        return TreeResult(tree, evaluate_tree(tree, path))

    if ctx is None:
        ctx = EvalContext.for_doc(vdoc)
    ctx.codec_eval = use_codecs
    with ctx.guard(vdoc):
        result: VXResult = evaluate_vx(vdoc, path, ctx)
    return result


class XQTreeResult:
    """Naive XQ result: a constructed document tree."""

    def __init__(self, tree):
        self.tree = tree

    def to_xml(self) -> str:
        return serialize(self.tree)


class XQVXResult:
    """Vectorized XQ result: a result VectorizedDocument (sharing the
    input's node store), plus the plan and tuple table for inspection."""

    def __init__(self, out, plan, table):
        self.vdoc = out
        self.plan = plan
        self.table = table
        self.n_tuples = table.n_rows

    def to_xml(self) -> str:
        # decompresses the (typically small) *result*, outside the query
        return self.vdoc.to_xml()

    def fragment(self) -> str:
        """The serialized children of the result root, concatenated —
        the root-tag-free payload.  Because serialization of an element
        is exactly ``<root>`` + its children's serializations + the end
        tag, fragments can be spliced under any shared root
        byte-identically to serializing the assembled tree; the
        repository result cache stores member results in this form."""
        tree = self.vdoc.to_tree()
        return "".join(serialize(kid) for kid in tree.children)


def eval_xq(vdoc: VectorizedDocument, query: str | XQuery, mode: str = "vx",
            batched: bool = True, ctx: EvalContext | None = None,
            use_indexes: bool = True, use_codecs: bool = True):
    """Evaluate an XQ query (string or parsed :class:`XQuery`).

    ``vx`` compiles to (Gq, Gr), plans, reduces over extended vectors and
    constructs the result — all inside the context guard (no
    decompression, scan-at-most-once, zero leaked pins; batched mode adds
    the one-sweep-per-plan-operation assertion).  ``naive`` reconstructs
    the tree and runs the nested-loop reference evaluator.

    ``use_indexes=False`` forbids index probes (the planner prices every
    op as a scan) — the measured baseline of the indexed benchmark regime
    and the reference side of the indexed-vs-scan identity tests.
    ``use_codecs=False`` likewise forbids code-space evaluation over
    dictionary-coded vectors (the ``--no-codec-eval`` escape hatch);
    results are byte-identical with any combination.
    """
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; expected one of {MODES}")
    xq = query if isinstance(query, XQuery) else parse_xq(query)
    gq, gr = compile_query(xq)

    if mode == "naive":
        tree = reconstruct(vdoc.store, vdoc.root, vdoc.vectors)
        out = evaluate_xq_tree(tree, xq)
        return XQTreeResult(out)

    if ctx is None:
        ctx = EvalContext.for_doc(vdoc, strict_passes=batched)
    else:
        ctx.strict_passes = batched
    ctx.codec_eval = use_codecs
    with ctx.guard(vdoc):
        plan = plan_query(gq, vdoc, use_indexes=use_indexes,
                          use_codecs=use_codecs)
        table = reduce_query(vdoc, gq, plan, ctx, batched=batched)
        out = build_result(vdoc, gr, table, ctx)
    return XQVXResult(out, plan, table)
