"""Vectorized document container: (skeleton, root, vectors) + statistics."""

from __future__ import annotations

import threading

from ..xmldata.model import Element
from ..xmldata.parser import iterparse
from ..xmldata.serializer import serialize
from .reconstruct import reconstruct
from .skeleton import NodeStore
from .vectorize import vectorize_events, vectorize_tree
from .vectors import Vector


class VectorizedDocument:
    """An XML document in vectorized form: compressed skeleton + data
    vectors.  This is the unit the query engine operates on."""

    #: buffer pool backing the vectors; None for memory-resident documents
    #: (``repro.storage.DiskVectorizedDocument`` overrides it per instance).
    pool = None

    def __init__(self, store: NodeStore, root: int, vectors: dict[tuple, Vector]):
        self.store = store
        self.root = root
        self.vectors = vectors
        self._catalog = None
        self._catalog_lock = threading.Lock()
        #: vector path -> value-index handle (anything with ``.distinct``
        #: and ``.get() -> ValueIndex``); in-memory docs fill it via
        #: :meth:`build_indexes`, disk docs from the file catalog.
        self._vindexes: dict[tuple, object] = {}

    # -- construction -----------------------------------------------------

    @classmethod
    def from_xml(cls, text: str) -> "VectorizedDocument":
        return cls(*vectorize_events(iterparse(text)))

    @classmethod
    def from_tree(cls, tree: Element) -> "VectorizedDocument":
        return cls(*vectorize_tree(tree))

    @classmethod
    def from_events(cls, events) -> "VectorizedDocument":
        return cls(*vectorize_events(events))

    # -- on-disk format (repro.storage) ------------------------------------

    def save(self, path: str, page_size: int | None = None,
             index_paths=None, fmt: int | None = None) -> dict:
        """Write the document to ``path`` in the paged on-disk format
        (slotted pages; one heap-file chain per vector).  Returns a summary
        dict (pages, bytes, vectors).  ``index_paths`` — ``"all"`` or an
        iterable of vector paths — additionally persists value-index
        segments for those vectors (format v3+).  ``fmt=3`` writes the
        uncompressed legacy layout instead of codec-compressed v4."""
        from ..storage import vdocfile

        kwargs = {} if page_size is None else {"page_size": page_size}
        if fmt is not None:
            kwargs["fmt"] = fmt
        return vdocfile.save_vdoc(self, path, index_paths=index_paths,
                                  **kwargs)

    @classmethod
    def open(cls, path: str, pool_pages: int | None = None):
        """Open a saved vdoc disk-backed: skeleton + catalog resident,
        vectors lazy through a buffer pool of ``pool_pages`` frames
        (``None`` → unbounded).  Returns a
        :class:`repro.storage.DiskVectorizedDocument`."""
        from ..storage import vdocfile

        return vdocfile.open_vdoc(path, pool_pages=pool_pages)

    # -- decompression (counted; never used by the vectorized evaluator) --

    def to_tree(self) -> Element:
        return reconstruct(self.store, self.root, self.vectors)

    def to_xml(self) -> str:
        return serialize(self.to_tree())

    # -- query support ----------------------------------------------------

    @property
    def catalog(self):
        """Lazily built run-length occurrence indexes (position algebra).
        Built at most once even under concurrent first access (the build
        is pure, but two racing builds would waste work and publish
        distinct memo dicts)."""
        if self._catalog is None:
            with self._catalog_lock:
                if self._catalog is None:
                    from .paths import PathsCatalog

                    self._catalog = PathsCatalog(self.store, self.root)
        return self._catalog

    def io_units(self) -> list:
        """Everything the per-context I/O invariants cover (``path``,
        cumulative ``pages_read``, ``n_pages``): the data vectors, plus —
        for disk-backed documents — the persistent index segments."""
        return list(self.vectors.values())

    def codec_of(self, path) -> str | None:
        """Cataloged storage-codec name of one vector, or ``None`` —
        in-memory vectors are not encoded, so there is nothing for the
        planner's code-space access path to exploit here.  Disk-backed
        documents answer from the catalog with zero page I/O."""
        return None

    # -- value indexes -----------------------------------------------------

    def vindex(self, path: tuple):
        """The :class:`~repro.index.ValueIndex` of one text-path vector,
        or ``None`` (disk-backed documents materialize lazily here)."""
        handle = self._vindexes.get(path)
        return None if handle is None else handle.get()

    def vindex_stats(self, path: tuple) -> dict | None:
        """Planner-facing statistics of one vector's value index — no
        page I/O, ``None`` when the vector has no index."""
        handle = self._vindexes.get(path)
        return None if handle is None else {"distinct": handle.distinct}

    def build_indexes(self, paths=None) -> list[tuple]:
        """Build in-memory value indexes for ``paths`` (default: every
        vector).  Persistent indexes come from
        ``save(..., index_paths=...)`` instead; this is for memory-resident
        documents and tests.  Returns the indexed paths."""
        from ..index import build_value_index

        built = []
        for p, vec in sorted(self.vectors.items()):
            if paths is None or p in paths:
                # _col(), not scan(): index builds are not query scans and
                # must not be charged to any active evaluation context
                self._vindexes[p] = build_value_index(p, vec._col())
                built.append(p)
        return built

    # -- statistics -------------------------------------------------------

    def stats(self) -> dict:
        store = self.store
        total_values = sum(len(v) for v in self.vectors.values())
        return {
            "document_nodes": store.node_count(self.root),
            "skeleton_nodes": len(store.reachable(self.root)),
            "skeleton_edges": store.edge_count(self.root),
            "vectors": len(self.vectors),
            "values": total_values,
        }
