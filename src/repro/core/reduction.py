"""Graph reduction over extended vectors (paper §4.2) — the XQ hot path.

The query graph ``Gq`` is evaluated collection-at-a-time: the state is a
*tuple table* — one int64 occurrence-ordinal column per instantiated
variable, all of equal length; a row is one candidate binding tuple.  The
planner's operations reduce ``Gq`` edge by edge:

* **instantiate** (tree edge) — root variables come from one vectorized
  XPath evaluation; relative variables are a positional join:
  ``extension_ranges`` + prefix-sum materialization, with the other
  columns replicated by ``np.repeat``;
* **select** (constant edge) — one vectorized comparison over the text
  vector plus a prefix-sum existential per row;
* **join** (equality edge) — existential set comparison per row, entirely
  columnar (value codes from ``np.unique`` + key intersection for ``=`` /
  ``!=``; per-row min/max aggregation for the ordering operators).

Variables range over *concrete* label paths, so a query with wildcard or
descendant bindings is a union over concrete-path *combos* — one per
assignment of variables to dataguide paths, exactly the paper's expansion
of ``//`` against the skeleton.  The default executor is **batched**: the
plan runs *once* over the union table, with a per-row combo-id column
(``cid``) and one concrete path per (variable, combo).  Each operation
partitions its rows by the distinct concrete paths involved — not by
combo — so every full-column kernel (predicate mask, prefix sum) runs at
most once per plan operation per vector no matter how many combos the
dataguide yields; the :class:`~repro.core.context.EvalContext` counts
those sweeps and the engine asserts the bound.  The pre-existing
combo-at-a-time executor is kept as ``batched=False`` — it re-sweeps per
combo and exists as the measured baseline of the batched benchmark
regime.

Each touched vector is loaded through the context's per-document cache
(scanned at most once for the whole query) and the skeleton is never
decompressed.  The final cross-combo ordering uses the catalog's global
preorder ranks: sorting rows by the rank of each variable (outermost
first) reproduces the nested-loop document order of the naive evaluator
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..index import merge_codings
from ..index import select_keep as vindex_select_keep
from .context import EvalContext
from .paths import ranges_to_ordinals
from .planner import Plan
from .qgraph import ConstEdge, EqEdge, QueryGraph
from .xpath.vx_eval import _alignments, evaluate_vx, pred_mask

_EMPTY = np.empty(0, dtype=np.int64)


@dataclass
class ComboRows:
    """Surviving rows of one variable→concrete-path assignment."""

    var_paths: dict[str, tuple]      # variable -> concrete label path
    cols: dict[str, np.ndarray]      # variable -> ordinal column
    rows_global: np.ndarray          # per-row index into the global order

    def __len__(self) -> int:
        return len(self.rows_global)


@dataclass
class ReducedTable:
    """Union of all combination tables, globally ordered."""

    variables: list[str]
    combos: list[ComboRows]
    n_rows: int


def _enumerate_combos(gq: QueryGraph, vdoc, ctx: EvalContext,
                      plan: Plan | None = None) -> list[dict]:
    """All assignments of variables to concrete dataguide paths.

    Root variables carry their (already predicate-filtered) ordinal sets
    from a single vectorized XPath evaluation per source; relative
    variables only fix a path here — their ordinals come from positional
    expansion during reduction.  The planner's precomputed candidate paths
    (``plan.var_paths``) narrow the dataguide scan for relative variables.
    """
    catalog = vdoc.catalog
    guide = catalog.dataguide()
    cand = plan.var_paths if plan is not None else {}
    root_groups: dict[str, list[tuple]] = {}
    for var in gq.variables:
        edge = gq.tree_edges[var]
        if edge.parent is None:
            root_groups[var] = evaluate_vx(vdoc, edge.abs_path, ctx).groups

    combos: list[dict] = []

    def rec(i: int, assign: dict) -> None:
        if i == len(gq.variables):
            ctx.checkpoint()   # combo enumeration can be combinatorial
            combos.append(dict(assign))
            return
        var = gq.variables[i]
        edge = gq.tree_edges[var]
        if edge.parent is None:
            for cpath, ids in root_groups[var]:
                assign[var] = (cpath, ids)
                rec(i + 1, assign)
        else:
            base = assign[edge.parent][0]
            k = len(base)
            for g in cand.get(var, guide):
                if len(g) > k and g[:k] == base \
                        and _alignments(edge.steps, g[k:]):
                    assign[var] = (g, None)
                    rec(i + 1, assign)
        assign.pop(var, None)

    rec(0, {})
    return combos


def _combo_groups(cid: np.ndarray, assigns: list[dict], key):
    """Partition row indices by ``key(assign)`` of their combo.

    Yields ``(rows, representative assignment)`` per distinct key with at
    least one surviving row — the batched executor's unit of kernel work
    (distinct concrete paths, *not* combos)."""
    by: dict = {}
    for ci, a in enumerate(assigns):
        by.setdefault(key(a), []).append(ci)
    gid = np.empty(len(assigns), dtype=np.int64)
    reps = []
    for g, cis in enumerate(by.values()):
        gid[cis] = g
        reps.append(assigns[cis[0]])
    row_g = gid[cid] if len(cid) else np.empty(0, dtype=np.int64)
    for g, rep in enumerate(reps):
        rows = np.flatnonzero(row_g == g)
        if len(rows):
            yield rows, rep


def _existential_keep(mask: np.ndarray, starts: np.ndarray,
                      lengths: np.ndarray) -> np.ndarray:
    """Per-row ∃: does any ordinal in ``[start, start+length)`` satisfy
    ``mask``?  One prefix sum, no per-row loop."""
    cum = np.concatenate(([0], np.cumsum(mask, dtype=np.int64)))
    return cum[starts + lengths] > cum[starts]


class _SideResolver:
    """Shared operand resolution for both executors."""

    def __init__(self, vdoc, ctx: EvalContext):
        self.vdoc = vdoc
        self.catalog = vdoc.catalog
        self.ctx = ctx
        self.cache = ctx.cache(vdoc)

    def _side(self, cpath: tuple, col: np.ndarray, rel: tuple):
        """Resolve one comparison operand to per-row contiguous ranges in
        the ordinal space of a text path: ``(qpath, starts, lengths)``.
        ``None`` means no such text exists anywhere (∃ fails for all rows).
        A variable bound directly to a text node compares its own value
        (identity ranges)."""
        if cpath[-1] == "#":
            if rel == ("#",):
                return cpath, col, np.ones(len(col), dtype=np.int64)
            return None
        qpath = (*cpath, *rel)
        if self.catalog.index(qpath) is None:
            return None
        starts, lengths = self.catalog.extension_ranges(cpath, col, rel)
        return qpath, starts, lengths

    def _vindex(self, qpath: tuple, access: str):
        """The value index to probe for ``qpath`` under the plan's chosen
        access path — ``None`` means execute as a scan (also the runtime
        degradation when a planned index is missing)."""
        if access != "index":
            return None
        return self.vdoc.vindex(qpath)

    def _index_join_codes(self, parts1, parts2, access: str):
        """Row ids + *shared-space* value codes for both join sides via
        the per-path indexes: local row codes remapped through one
        dictionary merge — all row-proportional work is integer work.
        ``None`` means scan (chosen by the plan, or an index is missing)."""
        if access != "index":
            return None
        idx: dict = {}
        for _, q, _ in (*parts1, *parts2):
            if q not in idx:
                vi = self.vdoc.vindex(q)
                if vi is None:
                    return None
                idx[q] = vi
        qlist = list(idx)
        remaps, m = merge_codings([idx[q] for q in qlist])
        remap = dict(zip(qlist, remaps))

        def side(parts):
            rs = [p[0] for p in parts]
            gs = [remap[q][idx[q].row_codes()[o]] for _, q, o in parts]
            return (np.concatenate(rs) if rs else _EMPTY,
                    np.concatenate(gs) if gs else _EMPTY)

        r1, g1 = side(parts1)
        r2, g2 = side(parts2)
        return r1, g1, r2, g2, max(m, 1)


class _BatchReducer(_SideResolver):
    """One plan execution over the whole combo table.

    Rows carry a combo id; every operation groups rows by the distinct
    concrete path(s) it touches.  Full-column sweeps (mask + prefix sum)
    are keyed by (plan operation, vector path) and cached, so each data
    vector is swept at most once per plan operation across all combos —
    the invariant ``EvalContext.check_passes`` asserts."""

    def __init__(self, vdoc, ctx: EvalContext):
        super().__init__(vdoc, ctx)
        self._cums: dict[tuple, np.ndarray] = {}

    def _cum_mask(self, op_idx: int, qpath: tuple, op: str,
                  value: str) -> np.ndarray:
        key = (qpath, op, value)
        cum = self._cums.get(key)
        if cum is None:
            self.ctx.note_pass(self.vdoc, (op_idx, qpath))
            mask = pred_mask(self.cache, qpath, op, value)
            cum = np.concatenate(([0], np.cumsum(mask, dtype=np.int64)))
            self._cums[key] = cum
        return cum

    # -- operations --------------------------------------------------------

    def _instantiate(self, edge, assigns, cid, cols):
        v = edge.var
        if edge.parent is None:
            ids_list = [np.asarray(a[v][1], dtype=np.int64) for a in assigns]
            counts = np.array([len(x) for x in ids_list], dtype=np.int64)
            flat = (np.concatenate(ids_list) if ids_list
                    else np.empty(0, dtype=np.int64))
            offs = np.concatenate(
                (np.zeros(1, dtype=np.int64), np.cumsum(counts)))
            m = counts[cid]
            cols = {u: np.repeat(c, m) for u, c in cols.items()}
            cols[v] = flat[ranges_to_ordinals(offs[cid], m)]
            return np.repeat(cid, m), cols
        # relative binding: positional join, grouped by the distinct
        # (parent path, own path) pairs — not by combo
        p = edge.parent
        n = len(cid)
        starts_all = np.zeros(n, dtype=np.int64)
        lengths_all = np.zeros(n, dtype=np.int64)
        for rows, a in _combo_groups(cid, assigns,
                                     key=lambda a: (a[p][0], a[v][0])):
            pcp = a[p][0]
            rel = a[v][0][len(pcp):]
            starts, lengths = self.catalog.extension_ranges(
                pcp, cols[p][rows], rel)
            starts_all[rows] = starts
            lengths_all[rows] = lengths
        cols = {u: np.repeat(c, lengths_all) for u, c in cols.items()}
        cols[v] = ranges_to_ordinals(starts_all, lengths_all)
        return np.repeat(cid, lengths_all), cols

    def _select(self, op_idx, sel: ConstEdge, assigns, cid, cols,
                access: str = "scan"):
        keep = np.zeros(len(cid), dtype=bool)
        for rows, a in _combo_groups(cid, assigns,
                                     key=lambda a: a[sel.var][0]):
            side = self._side(a[sel.var][0], cols[sel.var][rows], sel.rel)
            if side is None:
                continue
            qpath, starts, lengths = side
            vi = self._vindex(qpath, access)
            if vi is not None:
                # IndexProbe: sorted matching rows from the index, two
                # searchsorted calls per row group — no column sweep
                keep[rows] = vindex_select_keep(vi, sel.op, sel.value,
                                                starts, lengths)
                continue
            cum = self._cum_mask(op_idx, qpath, sel.op, sel.value)
            keep[rows] = cum[starts + lengths] > cum[starts]
        return keep

    def _join_sides(self, join: EqEdge, assigns, cid, cols):
        """Resolve both operands over all rows: per side, the per-row
        extension lengths plus ``(expanded row ids, qpath, ordinals)``
        parts, one per distinct concrete path."""
        n = len(cid)
        sides = []
        for var, rel in ((join.var1, join.rel1), (join.var2, join.rel2)):
            lengths_all = np.zeros(n, dtype=np.int64)
            parts = []
            for rows, a in _combo_groups(cid, assigns,
                                         key=lambda a, var=var: a[var][0]):
                side = self._side(a[var][0], cols[var][rows], rel)
                if side is None:
                    continue
                qpath, s, ln = side
                lengths_all[rows] = ln
                parts.append((np.repeat(rows, ln), qpath,
                              ranges_to_ordinals(s, ln)))
            sides.append((lengths_all, parts))
        return sides

    def _join(self, op_idx, join: EqEdge, assigns, cid, cols,
              access: str = "scan"):
        n = len(cid)
        (l1, parts1), (l2, parts2) = self._join_sides(join, assigns,
                                                      cid, cols)
        op = join.op
        if op in ("=", "!="):
            coded = self._index_join_codes(parts1, parts2, access)
            if coded is not None:
                r1, g1, r2, g2, m = coded
            else:
                # gather both sides (row-proportional work), then ONE
                # global value coding + key intersection across every
                # combo at once
                r1 = (np.concatenate([p[0] for p in parts1])
                      if parts1 else np.empty(0, dtype=np.int64))
                r2 = (np.concatenate([p[0] for p in parts2])
                      if parts2 else np.empty(0, dtype=np.int64))
                v1 = (np.concatenate([self.cache.column(q)[o]
                                      for _, q, o in parts1])
                      if parts1 else np.empty(0, dtype=np.str_))
                v2 = (np.concatenate([self.cache.column(q)[o]
                                      for _, q, o in parts2])
                      if parts2 else np.empty(0, dtype=np.str_))
                uniq, codes = np.unique(np.concatenate([v1, v2]),
                                        return_inverse=True)
                m = max(len(uniq), 1)
                g1, g2 = codes[: len(v1)], codes[len(v1):]
            k1 = r1 * m + g1
            k2 = r2 * m + g2
            if op == "=":
                keep = np.zeros(n, dtype=bool)
                keep[np.intersect1d(k1, k2) // m] = True
                return keep
            # ∃ a≠b  ⟺  both sides non-empty and the union holds ≥2 values
            distinct = np.bincount(
                np.unique(np.concatenate([k1, k2])) // m, minlength=n)
            return (l1 > 0) & (l2 > 0) & (distinct >= 2)

        # ordering operators: existential reduces to min/max of the numeric
        # values per row (fmin/fmax skip NaN = non-numeric text), aggregated
        # globally across all combos in one accumulator pair
        lo1 = op in ("<", "<=")
        a1 = np.full(n, np.inf if lo1 else -np.inf)
        a2 = np.full(n, -np.inf if lo1 else np.inf)
        num1 = np.zeros(n, dtype=bool)
        num2 = np.zeros(n, dtype=bool)
        for r, q, o in parts1:
            v = self.cache.floats(q)[o]
            (np.fmin if lo1 else np.fmax).at(a1, r, v)
            num1 |= np.bincount(r[~np.isnan(v)], minlength=n) > 0
        for r, q, o in parts2:
            v = self.cache.floats(q)[o]
            (np.fmax if lo1 else np.fmin).at(a2, r, v)
            num2 |= np.bincount(r[~np.isnan(v)], minlength=n) > 0
        if op == "<":
            keep = a1 < a2
        elif op == "<=":
            keep = a1 <= a2
        elif op == ">":
            keep = a1 > a2
        else:
            keep = a1 >= a2
        return keep & num1 & num2

    # -- the one plan execution --------------------------------------------

    def run(self, plan: Plan, gq: QueryGraph, assigns: list[dict]):
        cid = np.arange(len(assigns), dtype=np.int64)
        cols: dict[str, np.ndarray] = {}
        for op_idx, op in enumerate(plan.ops):
            if len(cid) == 0:
                break
            self.ctx.checkpoint()   # cancellation point between plan ops
            edge = op.payload
            if op.kind == "instantiate":
                cid, cols = self._instantiate(edge, assigns, cid, cols)
            else:
                if op.kind == "select":
                    keep = self._select(op_idx, edge, assigns, cid, cols,
                                        op.access)
                else:
                    keep = self._join(op_idx, edge, assigns, cid, cols,
                                      op.access)
                cid = cid[keep]
                cols = {v: c[keep] for v, c in cols.items()}
        return cid, cols


class _ComboReducer(_SideResolver):
    """The pre-batching executor: re-run the plan once per combo.

    Kept as the measured baseline — its full-column prefix sums repeat per
    combo (the pass counters show > 1 sweep per operation), which is the
    regression batching removes; the engine only arms the strict pass
    assertion in batched mode."""

    def __init__(self, vdoc, ctx: EvalContext):
        super().__init__(vdoc, ctx)
        self._masks: dict[tuple, np.ndarray] = {}

    def _mask(self, qpath: tuple, op: str, value: str) -> np.ndarray:
        key = (qpath, op, value)
        m = self._masks.get(key)
        if m is None:
            m = pred_mask(self.cache, qpath, op, value)
            self._masks[key] = m
        return m

    def select_keep(self, op_idx: int, sel: ConstEdge, cpath: tuple,
                    col: np.ndarray,
                    access: str = "scan") -> np.ndarray:
        side = self._side(cpath, col, sel.rel)
        if side is None:
            return np.zeros(len(col), dtype=bool)
        qpath, starts, lengths = side
        vi = self._vindex(qpath, access)
        if vi is not None:
            return vindex_select_keep(vi, sel.op, sel.value, starts,
                                      lengths)
        # one full prefix-sum sweep *per combo* — the cost being benchmarked
        self.ctx.note_pass(self.vdoc, (op_idx, qpath))
        return _existential_keep(self._mask(qpath, sel.op, sel.value),
                                 starts, lengths)

    def join_keep(self, join: EqEdge, n: int, side1, side2,
                  access: str = "scan") -> np.ndarray:
        if side1 is None or side2 is None:
            return np.zeros(n, dtype=bool)
        q1, s1, l1 = side1
        q2, s2, l2 = side2
        cache = self.cache
        op = join.op
        if op in ("=", "!="):
            parts1 = [(np.repeat(np.arange(n, dtype=np.int64), l1), q1,
                       ranges_to_ordinals(s1, l1))]
            parts2 = [(np.repeat(np.arange(n, dtype=np.int64), l2), q2,
                       ranges_to_ordinals(s2, l2))]
            coded = self._index_join_codes(parts1, parts2, access)
            if coded is not None:
                r1, g1, r2, g2, m = coded
                k1 = r1 * m + g1
                k2 = r2 * m + g2
                if op == "=":
                    keep = np.zeros(n, dtype=bool)
                    keep[np.intersect1d(k1, k2) // m] = True
                    return keep
                distinct = np.bincount(
                    np.unique(np.concatenate([k1, k2])) // m, minlength=n)
                return (l1 > 0) & (l2 > 0) & (distinct >= 2)
            c1, c2 = cache.column(q1), cache.column(q2)
            if np.all(l1 == 1) and np.all(l2 == 1):
                # singleton sets on both sides: direct elementwise compare
                return c1[s1] == c2[s2] if op == "=" else c1[s1] != c2[s2]
            o1, o2 = ranges_to_ordinals(s1, l1), ranges_to_ordinals(s2, l2)
            r1 = np.repeat(np.arange(n, dtype=np.int64), l1)
            r2 = np.repeat(np.arange(n, dtype=np.int64), l2)
            v1, v2 = c1[o1], c2[o2]
            uniq, codes = np.unique(np.concatenate([v1, v2]),
                                    return_inverse=True)
            m = max(len(uniq), 1)
            k1 = r1 * m + codes[: len(v1)]
            k2 = r2 * m + codes[len(v1):]
            if op == "=":
                keep = np.zeros(n, dtype=bool)
                keep[np.intersect1d(k1, k2) // m] = True
                return keep
            # ∃ a≠b  ⟺  both sides non-empty and the union holds ≥2 values
            distinct = np.bincount(
                np.unique(np.concatenate([k1, k2])) // m, minlength=n)
            return (l1 > 0) & (l2 > 0) & (distinct >= 2)

        # ordering operators: existential reduces to min/max of the numeric
        # values per row (fmin/fmax skip NaN = non-numeric text)
        f1, f2 = cache.floats(q1), cache.floats(q2)
        o1, o2 = ranges_to_ordinals(s1, l1), ranges_to_ordinals(s2, l2)
        r1 = np.repeat(np.arange(n, dtype=np.int64), l1)
        r2 = np.repeat(np.arange(n, dtype=np.int64), l2)
        v1, v2 = f1[o1], f2[o2]
        num1 = np.bincount(r1[~np.isnan(v1)], minlength=n) > 0
        num2 = np.bincount(r2[~np.isnan(v2)], minlength=n) > 0
        if op in ("<", "<="):
            a1 = np.full(n, np.inf)
            np.fmin.at(a1, r1, v1)       # min over side 1
            a2 = np.full(n, -np.inf)
            np.fmax.at(a2, r2, v2)       # max over side 2
            keep = a1 < a2 if op == "<" else a1 <= a2
        else:
            a1 = np.full(n, -np.inf)
            np.fmax.at(a1, r1, v1)       # max over side 1
            a2 = np.full(n, np.inf)
            np.fmin.at(a2, r2, v2)       # min over side 2
            keep = a1 > a2 if op == ">" else a1 >= a2
        return keep & num1 & num2

    def run_combo(self, plan: Plan, gq: QueryGraph, assign: dict):
        catalog = self.catalog
        cols: dict[str, np.ndarray] = {}
        n = 1
        for op_idx, op in enumerate(plan.ops):
            if n == 0:
                return None
            self.ctx.checkpoint()   # per combo *and* per op: the baseline
            edge = op.payload       # executor's loops nest both ways
            if op.kind == "instantiate":
                cpath, ids = assign[edge.var]
                if edge.parent is None:
                    m = len(ids)
                    cols = {v: np.repeat(c, m) for v, c in cols.items()}
                    cols[edge.var] = np.tile(ids, n)
                    n *= m
                else:
                    pcp = assign[edge.parent][0]
                    starts, lengths = catalog.extension_ranges(
                        pcp, cols[edge.parent], cpath[len(pcp):])
                    cols = {v: np.repeat(c, lengths)
                            for v, c in cols.items()}
                    cols[edge.var] = ranges_to_ordinals(starts, lengths)
                    n = len(cols[edge.var])
            elif op.kind == "select":
                keep = self.select_keep(op_idx, edge, assign[edge.var][0],
                                        cols[edge.var], op.access)
                cols = {v: c[keep] for v, c in cols.items()}
                n = len(cols[edge.var])
            else:
                side1 = self._side(assign[edge.var1][0], cols[edge.var1],
                                   edge.rel1)
                side2 = self._side(assign[edge.var2][0], cols[edge.var2],
                                   edge.rel2)
                keep = self.join_keep(edge, n, side1, side2, op.access)
                cols = {v: c[keep] for v, c in cols.items()}
                n = len(cols[edge.var1])
        if n == 0:
            return None
        return {v: assign[v][0] for v in gq.variables}, cols, n


def _order_table(vdoc, gq: QueryGraph,
                 raw: list[tuple]) -> ReducedTable:
    """Global nested-loop document order across combinations: lexicographic
    by the preorder rank of each variable's binding, outermost variable
    first.  Ranks are unique per node, so the order is total."""
    catalog = vdoc.catalog
    total = sum(n for _, _, n in raw)
    combos: list[ComboRows] = []
    if total:
        keys = [
            np.concatenate([catalog.order_keys(var_paths[v])[cols[v]]
                            for var_paths, cols, _ in raw])
            for v in gq.variables
        ]
        order = np.lexsort(tuple(reversed(keys)))
        inv = np.empty(total, dtype=np.int64)
        inv[order] = np.arange(total, dtype=np.int64)
        off = 0
        for var_paths, cols, n in raw:
            combos.append(ComboRows(var_paths, cols, inv[off:off + n]))
            off += n
    return ReducedTable(list(gq.variables), combos, total)


def reduce_query(vdoc, gq: QueryGraph, plan: Plan,
                 ctx: EvalContext | None = None,
                 batched: bool = True) -> ReducedTable:
    """Reduce ``Gq`` to its binding-tuple table, globally ordered."""
    if ctx is None:
        ctx = EvalContext.for_doc(vdoc, strict_passes=batched)
    assigns = _enumerate_combos(gq, vdoc, ctx, plan)

    if batched:
        cid, cols = _BatchReducer(vdoc, ctx).run(plan, gq, assigns)
        raw = []
        for ci in range(len(assigns)):
            ctx.checkpoint()
            rows = np.flatnonzero(cid == ci)
            if len(rows) == 0:
                continue
            a = assigns[ci]
            raw.append(({v: a[v][0] for v in gq.variables},
                        {v: cols[v][rows] for v in gq.variables},
                        len(rows)))
        return _order_table(vdoc, gq, raw)

    reducer = _ComboReducer(vdoc, ctx)
    raw = []
    for assign in assigns:
        combo = reducer.run_combo(plan, gq, assign)
        if combo is not None:
            raw.append(combo)
    return _order_table(vdoc, gq, raw)
