"""Graph reduction over extended vectors (paper §4.2) — the XQ hot path.

The query graph ``Gq`` is evaluated collection-at-a-time: the state is a
*tuple table* — one int64 occurrence-ordinal column per instantiated
variable, all of equal length; a row is one candidate binding tuple.  The
planner's operations reduce ``Gq`` edge by edge:

* **instantiate** (tree edge) — root variables come from one vectorized
  XPath evaluation (shared :class:`VectorCache`); relative variables are a
  positional join: ``extension_ranges`` + prefix-sum materialization, with
  the other columns replicated by ``np.repeat``;
* **select** (constant edge) — one vectorized comparison over the text
  vector plus a prefix-sum existential per row;
* **join** (equality edge) — existential set comparison per row, entirely
  columnar (value codes from ``np.unique`` + key intersection for ``=`` /
  ``!=``; per-row min/max aggregation for the ordering operators).

Variables range over *concrete* label paths, so a query over wildcard or
descendant bindings is a small union of per-combination reductions — one
per assignment of variables to dataguide paths, exactly the paper's
expansion of ``//`` against the skeleton.  Each touched vector is loaded
through the shared cache (scanned at most once for the whole query) and
the skeleton is never decompressed.

The final cross-combination ordering uses the catalog's global preorder
ranks: sorting rows by the rank of each variable (outermost first)
reproduces the nested-loop document order of the naive evaluator exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .paths import ranges_to_ordinals
from .planner import Plan
from .qgraph import ConstEdge, EqEdge, QueryGraph
from .xpath.vx_eval import VectorCache, _alignments, evaluate_vx, pred_mask


@dataclass
class ComboRows:
    """Surviving rows of one variable→concrete-path assignment."""

    var_paths: dict[str, tuple]      # variable -> concrete label path
    cols: dict[str, np.ndarray]      # variable -> ordinal column
    rows_global: np.ndarray          # per-row index into the global order

    def __len__(self) -> int:
        return len(self.rows_global)


@dataclass
class ReducedTable:
    """Union of all combination tables, globally ordered."""

    variables: list[str]
    combos: list[ComboRows]
    n_rows: int


def _enumerate_combos(gq: QueryGraph, vdoc, cache: VectorCache) -> list[dict]:
    """All assignments of variables to concrete dataguide paths.

    Root variables carry their (already predicate-filtered) ordinal sets
    from a single vectorized XPath evaluation per source; relative
    variables only fix a path here — their ordinals come from positional
    expansion during reduction.
    """
    catalog = vdoc.catalog
    guide = catalog.dataguide()
    root_groups: dict[str, list[tuple]] = {}
    for var in gq.variables:
        edge = gq.tree_edges[var]
        if edge.parent is None:
            root_groups[var] = evaluate_vx(vdoc, edge.abs_path, cache).groups

    combos: list[dict] = []

    def rec(i: int, assign: dict) -> None:
        if i == len(gq.variables):
            combos.append(dict(assign))
            return
        var = gq.variables[i]
        edge = gq.tree_edges[var]
        if edge.parent is None:
            for cpath, ids in root_groups[var]:
                assign[var] = (cpath, ids)
                rec(i + 1, assign)
        else:
            base = assign[edge.parent][0]
            k = len(base)
            for g in guide:
                if len(g) > k and g[:k] == base \
                        and _alignments(edge.steps, g[k:]):
                    assign[var] = (g, None)
                    rec(i + 1, assign)
        assign.pop(var, None)

    rec(0, {})
    return combos


def _existential_keep(mask: np.ndarray, starts: np.ndarray,
                      lengths: np.ndarray) -> np.ndarray:
    """Per-row ∃: does any ordinal in ``[start, start+length)`` satisfy
    ``mask``?  One prefix sum, no per-row loop."""
    cum = np.concatenate(([0], np.cumsum(mask, dtype=np.int64)))
    return cum[starts + lengths] > cum[starts]


class _Reducer:
    def __init__(self, vdoc, cache: VectorCache):
        self.vdoc = vdoc
        self.catalog = vdoc.catalog
        self.cache = cache
        self._masks: dict[tuple, np.ndarray] = {}

    # -- operand resolution ------------------------------------------------

    def _side(self, cpath: tuple, col: np.ndarray, rel: tuple):
        """Resolve one comparison operand to per-row contiguous ranges in
        the ordinal space of a text path: ``(qpath, starts, lengths)``.
        ``None`` means no such text exists anywhere (∃ fails for all rows).
        A variable bound directly to a text node compares its own value
        (identity ranges)."""
        if cpath[-1] == "#":
            if rel == ("#",):
                return cpath, col, np.ones(len(col), dtype=np.int64)
            return None
        qpath = (*cpath, *rel)
        if self.catalog.index(qpath) is None:
            return None
        starts, lengths = self.catalog.extension_ranges(cpath, col, rel)
        return qpath, starts, lengths

    def _mask(self, qpath: tuple, op: str, value: str) -> np.ndarray:
        key = (qpath, op, value)
        m = self._masks.get(key)
        if m is None:
            m = pred_mask(self.cache, qpath, op, value)
            self._masks[key] = m
        return m

    # -- operations --------------------------------------------------------

    def select_keep(self, sel: ConstEdge, cpath: tuple,
                    col: np.ndarray) -> np.ndarray:
        side = self._side(cpath, col, sel.rel)
        if side is None:
            return np.zeros(len(col), dtype=bool)
        qpath, starts, lengths = side
        return _existential_keep(self._mask(qpath, sel.op, sel.value),
                                 starts, lengths)

    def join_keep(self, join: EqEdge, n: int, side1, side2) -> np.ndarray:
        if side1 is None or side2 is None:
            return np.zeros(n, dtype=bool)
        q1, s1, l1 = side1
        q2, s2, l2 = side2
        cache = self.cache
        op = join.op
        if op in ("=", "!="):
            c1, c2 = cache.column(q1), cache.column(q2)
            if np.all(l1 == 1) and np.all(l2 == 1):
                # singleton sets on both sides: direct elementwise compare
                return c1[s1] == c2[s2] if op == "=" else c1[s1] != c2[s2]
            o1, o2 = ranges_to_ordinals(s1, l1), ranges_to_ordinals(s2, l2)
            r1 = np.repeat(np.arange(n, dtype=np.int64), l1)
            r2 = np.repeat(np.arange(n, dtype=np.int64), l2)
            v1, v2 = c1[o1], c2[o2]
            uniq, codes = np.unique(np.concatenate([v1, v2]),
                                    return_inverse=True)
            m = max(len(uniq), 1)
            k1 = r1 * m + codes[: len(v1)]
            k2 = r2 * m + codes[len(v1):]
            if op == "=":
                keep = np.zeros(n, dtype=bool)
                keep[np.intersect1d(k1, k2) // m] = True
                return keep
            # ∃ a≠b  ⟺  both sides non-empty and the union holds ≥2 values
            distinct = np.bincount(
                np.unique(np.concatenate([k1, k2])) // m, minlength=n)
            return (l1 > 0) & (l2 > 0) & (distinct >= 2)

        # ordering operators: existential reduces to min/max of the numeric
        # values per row (fmin/fmax skip NaN = non-numeric text)
        f1, f2 = cache.floats(q1), cache.floats(q2)
        o1, o2 = ranges_to_ordinals(s1, l1), ranges_to_ordinals(s2, l2)
        r1 = np.repeat(np.arange(n, dtype=np.int64), l1)
        r2 = np.repeat(np.arange(n, dtype=np.int64), l2)
        v1, v2 = f1[o1], f2[o2]
        num1 = np.bincount(r1[~np.isnan(v1)], minlength=n) > 0
        num2 = np.bincount(r2[~np.isnan(v2)], minlength=n) > 0
        if op in ("<", "<="):
            a1 = np.full(n, np.inf)
            np.fmin.at(a1, r1, v1)       # min over side 1
            a2 = np.full(n, -np.inf)
            np.fmax.at(a2, r2, v2)       # max over side 2
            keep = a1 < a2 if op == "<" else a1 <= a2
        else:
            a1 = np.full(n, -np.inf)
            np.fmax.at(a1, r1, v1)       # max over side 1
            a2 = np.full(n, np.inf)
            np.fmin.at(a2, r2, v2)       # min over side 2
            keep = a1 > a2 if op == ">" else a1 >= a2
        return keep & num1 & num2

    # -- one combination ---------------------------------------------------

    def run_combo(self, plan: Plan, gq: QueryGraph, assign: dict):
        catalog = self.catalog
        cols: dict[str, np.ndarray] = {}
        n = 1
        for op in plan.ops:
            if n == 0:
                return None
            edge = op.payload
            if op.kind == "instantiate":
                cpath, ids = assign[edge.var]
                if edge.parent is None:
                    m = len(ids)
                    cols = {v: np.repeat(c, m) for v, c in cols.items()}
                    cols[edge.var] = np.tile(ids, n)
                    n *= m
                else:
                    pcp = assign[edge.parent][0]
                    starts, lengths = catalog.extension_ranges(
                        pcp, cols[edge.parent], cpath[len(pcp):])
                    cols = {v: np.repeat(c, lengths)
                            for v, c in cols.items()}
                    cols[edge.var] = ranges_to_ordinals(starts, lengths)
                    n = len(cols[edge.var])
            elif op.kind == "select":
                keep = self.select_keep(edge, assign[edge.var][0],
                                        cols[edge.var])
                cols = {v: c[keep] for v, c in cols.items()}
                n = len(cols[edge.var])
            else:
                side1 = self._side(assign[edge.var1][0], cols[edge.var1],
                                   edge.rel1)
                side2 = self._side(assign[edge.var2][0], cols[edge.var2],
                                   edge.rel2)
                keep = self.join_keep(edge, n, side1, side2)
                cols = {v: c[keep] for v, c in cols.items()}
                n = len(cols[edge.var1])
        if n == 0:
            return None
        return {v: assign[v][0] for v in gq.variables}, cols, n


def reduce_query(vdoc, gq: QueryGraph, plan: Plan,
                 cache: VectorCache) -> ReducedTable:
    """Reduce ``Gq`` to its binding-tuple table, globally ordered."""
    reducer = _Reducer(vdoc, cache)
    raw = []
    for assign in _enumerate_combos(gq, vdoc, cache):
        combo = reducer.run_combo(plan, gq, assign)
        if combo is not None:
            raw.append(combo)

    # Global nested-loop document order across combinations: lexicographic
    # by the preorder rank of each variable's binding, outermost variable
    # first.  Ranks are unique per node, so the order is total.
    catalog = vdoc.catalog
    total = sum(n for _, _, n in raw)
    combos: list[ComboRows] = []
    if total:
        keys = [
            np.concatenate([catalog.order_keys(var_paths[v])[cols[v]]
                            for var_paths, cols, _ in raw])
            for v in gq.variables
        ]
        order = np.lexsort(tuple(reversed(keys)))
        inv = np.empty(total, dtype=np.int64)
        inv[order] = np.arange(total, dtype=np.int64)
        off = 0
        for var_paths, cols, n in raw:
            combos.append(ComboRows(var_paths, cols, inv[off:off + n]))
            off += n
    return ReducedTable(list(gq.variables), combos, total)
