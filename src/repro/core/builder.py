"""Result construction (paper §4.3): instantiate ``Gr`` into a vectorized
result *without decompressing* either document.

The output document shares the input's :class:`NodeStore`: splicing a
source subtree into the result is a single id reuse — the run-length index
maps each spliced occurrence ordinal back to its skeleton node
(``run_nodes[run_of(ord)]``), uniformly for elements, attributes and text.
Fresh template elements are interned per row bottom-up, so identical rows
collapse immediately — result compression happens *stepwise during
construction* (hash-consing), never as a separate pass over a materialized
tree.

Output data vectors are assembled columnar: for each spliced path, the
text paths below it are enumerated on the dataguide, their value ranges
located with the position algebra, and copied with bulk positional
gathers; a final lexicographic sort by (global row, template leaf,
source sequence) puts every output vector in output-document order.
"""

from __future__ import annotations

import numpy as np

from .paths import ranges_to_ordinals
from .qgraph import ResultSkeleton
from .reduction import ReducedTable
from .vdoc import VectorizedDocument
from .vectors import Vector
from .xquery.ast import TElem, TSplice, TText


def _template_leaves(gr: ResultSkeleton) -> list[tuple]:
    """Text/splice leaves in template preorder, each with the label path of
    its enclosing output element (starting at the result root)."""
    leaves: list[tuple] = []

    def walk(item, opath: tuple) -> None:
        if isinstance(item, TText):
            leaves.append(("text", item, opath))
        elif isinstance(item, TSplice):
            leaves.append(("splice", item, opath))
        else:
            assert isinstance(item, TElem)
            for c in item.children:
                walk(c, (*opath, item.tag))

    for item in gr.items:
        walk(item, (gr.root_tag,))
    return leaves


def build_result(vdoc, gr: ResultSkeleton, table: ReducedTable,
                 ctx=None) -> VectorizedDocument:
    """Instantiate the result skeleton once per binding tuple.

    ``ctx`` (an :class:`~repro.core.context.EvalContext`) shares the
    query's per-document vector cache, so value copies here and scans in
    the reduction count against the same scan-once budget."""
    store = vdoc.store
    catalog = vdoc.catalog
    cache = ctx.cache(vdoc) if ctx is not None else None
    guide = catalog.dataguide()
    leaves = _template_leaves(gr)
    n_rows = table.n_rows

    # per-global-row lists of top-level result node ids
    row_children: list[list[int]] = [[] for _ in range(n_rows)]
    # output vector parts: path -> [(values, global rows, leaf idx, seq)]
    acc: dict[tuple, list] = {}
    # text paths below a spliced path, computed once per distinct path —
    # the dataguide scan must not repeat per combo
    rels_of: dict[tuple, list[tuple]] = {}

    def text_rels(scp: tuple) -> list[tuple]:
        rels = rels_of.get(scp)
        if rels is None:
            if scp[-1] == "#":
                rels = [()]
            else:
                k = len(scp)
                rels = sorted(g[k:] for g in guide
                              if len(g) > k and g[:k] == scp
                              and g[-1] == "#")
            rels_of[scp] = rels
        return rels

    combos = [c for c in table.combos if len(c)]

    # resolve each splice leaf to (node ids sorted by global row, per-row
    # offsets), processing combos GROUPED BY CONCRETE PATH — one position-
    # algebra call per distinct path, not one per combo, mirroring the
    # batched reduction (global row ids are disjoint across combos, so
    # per-group results scatter straight into global arrays)
    splices: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    for li, (kind, item, opath) in enumerate(leaves):
        if ctx is not None:
            ctx.checkpoint()   # per template leaf: each one may gather
        if kind == "text":     # value ranges for every combo group
            acc.setdefault((*opath, "#"), []).append((
                np.full(n_rows, item.value),
                np.arange(n_rows, dtype=np.int64),
                np.zeros(n_rows, dtype=np.int64) + li,
                np.zeros(n_rows, dtype=np.int64)))
            continue
        groups: dict[tuple, list] = {}
        for combo in combos:
            groups.setdefault(combo.var_paths[item.var], []).append(combo)
        ids_parts: list[np.ndarray] = []
        rows_parts: list[np.ndarray] = []
        lengths_row = np.zeros(n_rows, dtype=np.int64)
        for cp, group in groups.items():
            cols_g = np.concatenate([c.cols[item.var] for c in group])
            rowsg = np.concatenate([c.rows_global for c in group])
            if item.rel:
                scp = (*cp, *item.rel)
                if cp[-1] == "#" or catalog.index(scp) is None:
                    continue
                starts, lengths = catalog.extension_ranges(
                    cp, cols_g, item.rel)
                ords = ranges_to_ordinals(starts, lengths)
            else:
                scp = cp
                ords = cols_g
                lengths = np.ones(len(cols_g), dtype=np.int64)
            pidx = catalog.index(scp)
            node_ids = pidx.run_nodes[pidx.run_of(ords)]
            ids_parts.append(node_ids)
            rows_parts.append(np.repeat(rowsg, lengths))
            lengths_row[rowsg] = lengths

            # copy every text path below the spliced nodes into the output
            row_of_ord = np.repeat(
                np.arange(len(cols_g), dtype=np.int64), lengths)
            for rt in text_rels(scp):
                st, lt = catalog.extension_ranges(scp, ords, rt)
                ot = ranges_to_ordinals(st, lt)
                if len(ot) == 0:
                    continue
                if cache is not None:
                    vals = cache.column((*scp, *rt))[ot]
                else:
                    vals = vdoc.vectors[(*scp, *rt)].gather(ot)
                acc.setdefault((*opath, scp[-1], *rt), []).append((
                    vals, rowsg[np.repeat(row_of_ord, lt)],
                    np.zeros(len(ot), dtype=np.int64) + li,
                    np.arange(len(ot), dtype=np.int64)))

        if ids_parts:
            ids_all = np.concatenate(ids_parts)
            rows_all = np.concatenate(rows_parts)
            # stable by-row sort keeps each row's ids in document order
            # (every row's ids come from exactly one group)
            ids_all = ids_all[np.argsort(rows_all, kind="stable")]
        else:
            ids_all = np.empty(0, dtype=np.int64)
        offsets = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(lengths_row)))
        splices[li] = (ids_all, offsets)

    # assemble the skeleton bottom-up, one row at a time: fresh template
    # elements are interned immediately — stepwise compression
    def instantiate(item, r: int, counter: list[int]) -> list[int]:
        if isinstance(item, TText):
            counter[0] += 1
            return [store.text_id]
        if isinstance(item, TSplice):
            li = counter[0]
            counter[0] += 1
            ids, offs = splices[li]
            return [int(x) for x in ids[offs[r]:offs[r + 1]]]
        kids = [cid for c in item.children
                for cid in instantiate(c, r, counter)]
        return [store.intern_list(item.tag, kids)]

    for r in range(n_rows):
        if ctx is not None and not r % 64:
            ctx.checkpoint()   # row assembly is the builder's long loop
        counter = [0]
        row_children[r] = [cid for item in gr.items
                           for cid in instantiate(item, r, counter)]

    root_id = store.intern_list(
        gr.root_tag, [cid for kids in row_children for cid in kids])

    out_vectors: dict[tuple, Vector] = {}
    for path, parts in acc.items():
        vals = np.concatenate([p[0] for p in parts])
        rows = np.concatenate([p[1] for p in parts])
        items = np.concatenate([p[2] for p in parts])
        seqs = np.concatenate([p[3] for p in parts])
        # output-document order: by result row, then template leaf (their
        # preorder is the constructed document order), then source sequence
        order = np.lexsort((seqs, items, rows))
        out_vectors[path] = Vector(path, vals[order])
    return VectorizedDocument(store, root_id, out_vectors)
