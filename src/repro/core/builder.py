"""Result construction (paper §4.3): instantiate ``Gr`` into a vectorized
result *without decompressing* either document.

The output document shares the input's :class:`NodeStore`: splicing a
source subtree into the result is a single id reuse — the run-length index
maps each spliced occurrence ordinal back to its skeleton node
(``run_nodes[run_of(ord)]``), uniformly for elements, attributes and text.
Fresh template elements are interned per row bottom-up, so identical rows
collapse immediately — result compression happens *stepwise during
construction* (hash-consing), never as a separate pass over a materialized
tree.

Output data vectors are assembled columnar: for each spliced path, the
text paths below it are enumerated on the dataguide, their value ranges
located with the position algebra, and copied with bulk positional
gathers; a final lexicographic sort by (global row, template leaf,
source sequence) puts every output vector in output-document order.
"""

from __future__ import annotations

import numpy as np

from .paths import ranges_to_ordinals
from .qgraph import ResultSkeleton
from .reduction import ReducedTable
from .vdoc import VectorizedDocument
from .vectors import Vector
from .xquery.ast import TElem, TSplice, TText


def _template_leaves(gr: ResultSkeleton) -> list[tuple]:
    """Text/splice leaves in template preorder, each with the label path of
    its enclosing output element (starting at the result root)."""
    leaves: list[tuple] = []

    def walk(item, opath: tuple) -> None:
        if isinstance(item, TText):
            leaves.append(("text", item, opath))
        elif isinstance(item, TSplice):
            leaves.append(("splice", item, opath))
        else:
            assert isinstance(item, TElem)
            for c in item.children:
                walk(c, (*opath, item.tag))

    for item in gr.items:
        walk(item, (gr.root_tag,))
    return leaves


def build_result(vdoc, gr: ResultSkeleton,
                 table: ReducedTable) -> VectorizedDocument:
    """Instantiate the result skeleton once per binding tuple."""
    store = vdoc.store
    catalog = vdoc.catalog
    guide = catalog.dataguide()
    leaves = _template_leaves(gr)
    n_rows = table.n_rows

    # per-global-row lists of top-level result node ids
    row_children: list[list[int]] = [[] for _ in range(n_rows)]
    # output vector parts: path -> [(values, global rows, leaf idx, seq)]
    acc: dict[tuple, list] = {}

    for combo in table.combos:
        n = len(combo)
        if n == 0:
            continue
        rowsg = combo.rows_global
        # resolve each splice leaf to (spliced node ids, per-row offsets)
        splices: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for li, (kind, item, opath) in enumerate(leaves):
            if kind == "text":
                acc.setdefault((*opath, "#"), []).append((
                    np.full(n, item.value), rowsg,
                    np.zeros(n, dtype=np.int64) + li,
                    np.zeros(n, dtype=np.int64)))
                continue
            cp = combo.var_paths[item.var]
            col = combo.cols[item.var]
            if item.rel:
                scp = (*cp, *item.rel)
                if cp[-1] == "#" or catalog.index(scp) is None:
                    splices[li] = (np.empty(0, dtype=np.int64),
                                   np.zeros(n + 1, dtype=np.int64))
                    continue
                starts, lengths = catalog.extension_ranges(cp, col, item.rel)
                ords = ranges_to_ordinals(starts, lengths)
            else:
                scp = cp
                ords = col
                lengths = np.ones(n, dtype=np.int64)
            pidx = catalog.index(scp)
            node_ids = pidx.run_nodes[pidx.run_of(ords)]
            offsets = np.concatenate(
                (np.zeros(1, dtype=np.int64), np.cumsum(lengths)))
            splices[li] = (node_ids, offsets)

            # copy every text path below the spliced nodes into the output
            k = len(scp)
            if scp[-1] == "#":
                rels: list[tuple] = [()]
            else:
                rels = sorted(g[k:] for g in guide
                              if len(g) > k and g[:k] == scp
                              and g[-1] == "#")
            row_of_ord = np.repeat(np.arange(n, dtype=np.int64), lengths)
            for rt in rels:
                st, lt = catalog.extension_ranges(scp, ords, rt)
                ot = ranges_to_ordinals(st, lt)
                if len(ot) == 0:
                    continue
                vals = vdoc.vectors[(*scp, *rt)].gather(ot)
                acc.setdefault((*opath, scp[-1], *rt), []).append((
                    vals, rowsg[np.repeat(row_of_ord, lt)],
                    np.zeros(len(ot), dtype=np.int64) + li,
                    np.arange(len(ot), dtype=np.int64)))

        # assemble the skeleton bottom-up, one row at a time: fresh template
        # elements are interned immediately — stepwise compression
        def instantiate(item, r: int, counter: list[int]) -> list[int]:
            if isinstance(item, TText):
                counter[0] += 1
                return [store.text_id]
            if isinstance(item, TSplice):
                li = counter[0]
                counter[0] += 1
                ids, offs = splices[li]
                return [int(x) for x in ids[offs[r]:offs[r + 1]]]
            kids = [cid for c in item.children
                    for cid in instantiate(c, r, counter)]
            return [store.intern_list(item.tag, kids)]

        for r in range(n):
            counter = [0]
            kids = [cid for item in gr.items
                    for cid in instantiate(item, r, counter)]
            row_children[int(rowsg[r])] = kids

    root_id = store.intern_list(
        gr.root_tag, [cid for kids in row_children for cid in kids])

    out_vectors: dict[tuple, Vector] = {}
    for path, parts in acc.items():
        vals = np.concatenate([p[0] for p in parts])
        rows = np.concatenate([p[1] for p in parts])
        items = np.concatenate([p[2] for p in parts])
        seqs = np.concatenate([p[3] for p in parts])
        # output-document order: by result row, then template leaf (their
        # preorder is the constructed document order), then source sequence
        order = np.lexsort((seqs, items, rows))
        out_vectors[path] = Vector(path, vals[order])
    return VectorizedDocument(store, root_id, out_vectors)
