"""``verify_repository`` — offline integrity checking for repositories.

Extends the single-file fsck (:mod:`repro.storage.fsck`) with awareness
of the repository manifest and its persisted path catalog:

1. ``repo.json`` parses and passes the strict manifest schema;
2. every member's page file exists and passes ``verify_vdoc`` (findings
   are re-reported with the member name in the message);
3. **catalog cross-check** — each member's cataloged (path, count)
   entries are recomputed from the member's actual skeleton; a stale or
   tampered catalog is a finding, not a silent lie (the catalog is what
   tools trust *without* opening members).

Read-only throughout, like the file-level fsck; collects findings rather
than raising, so one run reports every reachable problem.
"""

from __future__ import annotations

import json
import os

from ..errors import ReproError
from ..storage.fsck import Finding, verify_vdoc
from ..storage.vdocfile import open_vdoc
from .repository import MANIFEST, _check_manifest, member_paths


def verify_repository(dirpath: str, deep: bool = False) -> list[Finding]:
    """Verify a repository directory; returns all findings (empty = ok)."""
    findings: list[Finding] = []
    mpath = os.path.join(dirpath, MANIFEST)
    if not os.path.isfile(mpath):
        return [Finding("repo-manifest", f"no {MANIFEST} in {dirpath}")]
    try:
        with open(mpath, "r", encoding="utf-8") as f:
            manifest = _check_manifest(json.load(f))
    except (ValueError, UnicodeDecodeError, ReproError) as exc:
        return [Finding("repo-manifest", str(exc))]

    for m in manifest["members"]:
        name, file = m["name"], m["file"]
        path = os.path.join(dirpath, file)
        if not os.path.isfile(path):
            findings.append(Finding(
                "repo-member", f"member {name!r}: missing file {file}"))
            continue
        member_findings = verify_vdoc(path, deep=deep)
        findings.extend(
            Finding(f.code, f"member {name!r}: {f.message}", f.page, f.slot)
            for f in member_findings)
        if member_findings:
            continue  # the catalog cross-check needs a healthy member
        with open_vdoc(path) as vdoc:
            actual = {p: c for p, c in member_paths(vdoc)}
        cataloged = {tuple(p): c for p, c in m["paths"]}
        for p in sorted(set(actual) | set(cataloged)):
            a, c = actual.get(p), cataloged.get(p)
            if a != c:
                findings.append(Finding(
                    "repo-catalog",
                    f"member {name!r}: path {'/'.join(p)} cataloged as "
                    f"{c if c is not None else 'absent'}, document has "
                    f"{a if a is not None else 'no such path'}"))
    return findings
