"""``repro.repo`` — multi-document repositories over one shared buffer
pool, with a persisted path catalog and ``collection()`` query support."""

from .fsck import verify_repository
from .repository import (
    MANIFEST,
    MEMBER_NAME_RE,
    RepoXQResult,
    Repository,
    RepositoryError,
    check_member_name,
    member_paths,
)
from .rescache import ResultCache

__all__ = [
    "MANIFEST",
    "MEMBER_NAME_RE",
    "RepoXQResult",
    "Repository",
    "RepositoryError",
    "ResultCache",
    "check_member_name",
    "member_paths",
    "verify_repository",
]
