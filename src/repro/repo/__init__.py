"""``repro.repo`` — multi-document repositories over one shared buffer
pool, with a persisted path catalog and ``collection()`` query support."""

from .fsck import verify_repository
from .repository import (
    MANIFEST,
    RepoXQResult,
    Repository,
    RepositoryError,
    member_paths,
)

__all__ = [
    "MANIFEST",
    "RepoXQResult",
    "Repository",
    "RepositoryError",
    "member_paths",
    "verify_repository",
]
