"""Cross-request result cache: a byte-bounded LRU over per-member results.

Repository members are immutable once added (``add`` refuses existing
names), so a member's evaluated result is fully determined by the member
file's identity and the query — which is exactly what the cache key
captures: ``(member file name, mtime_ns, size, normalized query text,
evaluation flags)``.  Keying on ``(mtime_ns, size)`` makes staleness
structurally impossible rather than policed: any out-of-band change to
the file (a re-add into a fresh repository directory, a test tampering
with bytes on disk) changes the key, so the old entry can never be
*returned* — it just ages out of the LRU.  ``Repository.add``
additionally clears the cache outright, the explicit invalidation point
for manifest changes.

Values are *serialized member fragments* (plus the tuple count), not
live result objects: the serializer emits an element as ``<root>`` +
the concatenation of its serialized children + ``</root>``, so a
repository response can be assembled byte-identically from per-member
fragments without re-evaluating or re-serializing anything — the
property the cache-identity tests assert.

Sizing is by payload bytes, not entry count, so one huge result cannot
masquerade as "one entry" and pin the memory budget; an entry larger
than the whole budget is simply not cached.  All counters
(hits/misses/evictions/invalidations/bytes) are exposed for ``/stats``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

#: accounting overhead charged per entry on top of the payload bytes
#: (key tuple, dict slot, counters) — keeps many tiny entries honest
ENTRY_OVERHEAD = 128


class ResultCache:
    """A thread-safe LRU bounded by total payload bytes."""

    def __init__(self, max_bytes: int):
        if max_bytes < 1:
            raise ValueError("result cache needs max_bytes >= 1")
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, tuple[object, int]]" = \
            OrderedDict()
        self.bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        # member evaluations that could not be keyed at all (the member
        # file failed to stat mid-flight — e.g. replaced on disk between
        # manifest read and keying); neither a hit nor a miss, because
        # the cache was never consulted.  A nonzero count is the smoking
        # gun for "why is this member never cached".
        self.uncacheable = 0

    def note_uncacheable(self, n: int = 1) -> None:
        """Record ``n`` evaluations that bypassed the cache because no
        stable key existed (see :meth:`Repository._cache_key`)."""
        with self._lock:
            self.uncacheable += n

    def get(self, key: tuple):
        """The cached value, freshened to most-recently-used, or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[0]

    def put(self, key: tuple, value, nbytes: int) -> None:
        """Insert ``value`` charged at ``nbytes`` payload bytes, evicting
        least-recently-used entries until the budget holds.  A value
        larger than the whole budget is not cached at all."""
        cost = nbytes + ENTRY_OVERHEAD
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self.bytes -= old[1]
            if cost > self.max_bytes:
                return
            self._entries[key] = (value, cost)
            self.bytes += cost
            while self.bytes > self.max_bytes:
                _, (_, freed) = self._entries.popitem(last=False)
                self.bytes -= freed
                self.evictions += 1

    def clear(self) -> int:
        """Drop every entry (the ``repo add`` invalidation point);
        returns how many were dropped."""
        with self._lock:
            n = len(self._entries)
            self._entries.clear()
            self.bytes = 0
            self.invalidations += n
            return n

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        """JSON-ready counters for ``/stats``."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "bytes": self.bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": round(self.hits / total, 4) if total else 0.0,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "uncacheable": self.uncacheable,
            }
