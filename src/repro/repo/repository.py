"""Repositories: named collections of ``.vdoc`` documents, queried as one.

A repository is a directory::

    myrepo/
      repo.json     <- manifest + persisted path catalog
      a.vdoc        <- member documents (format v2 page files)
      b.vdoc

``repo.json`` carries the manifest — format tag, collection name, members
in add order — and the **path catalog**: for every member, each concrete
label path of its dataguide with its occurrence count, recorded at
``add`` time.  The catalog is the repository-level dataguide (the path
summary of Arion et al.): planners and tools can see which members
contain which paths, and how often, without opening a single page file.
The manifest is rewritten atomically (temp file + ``os.replace`` + dir
fsync), mirroring ``save_vdoc``'s crash contract.

All members are opened lazily over **one shared buffer pool**, so
eviction pressure, I/O statistics and pin accounting are global across
the collection — ``Repository.io_stats()`` reports per-member and
pool-wide counters, and the engine's zero-leaked-pins assertion holds
pool-wide.  ``xq`` evaluates a (possibly ``collection("name")``-sourced)
XQ query member at a time with a per-member plan, concatenating results
in (member, document-order) order; a storage failure in one member
surfaces as a :class:`StorageError` naming that member and leaves the
pool clean, so sibling members stay queryable.  The failing member is
additionally **quarantined** (:mod:`repro.repo.quarantine`): subsequent
queries skip it — degraded, flagged, but serving — until a supervised
deep fsck finds the file healthy and reinstates it, so an on-disk repair
heals the collection without reopening the repository.

Concurrent requests (``repro.serve``) may evaluate the **same member at
the same time**: per-query accounting lives in each request's
:class:`~repro.core.context.EvalContext` (not on the shared document),
lazy column/index materialization and skeleton interning are internally
locked, and the buffer pool is concurrency-safe — so the repository
needs no per-member evaluation lock, and the engine's invariants
(scan-once, bounded physical I/O, zero leaked pins) are still asserted
per request.  An optional byte-bounded LRU **result cache**
(:class:`~repro.repo.rescache.ResultCache`) short-circuits repeat
queries per member, keyed on the member file's identity (name, mtime,
size) + normalized query text + evaluation flags, and is cleared on
``add`` — responses assembled from cache hits are byte-identical to
evaluated ones (fragment splicing, see :meth:`RepoXQResult.to_xml`).

The catalog is also the repository's **pruning** structure: before a
member is opened, its cataloged path list is checked against the query
graph (:func:`repro.core.planner.member_can_match`) — a member holding no
concrete path for some variable, or no text path for some comparison
operand, cannot contribute a tuple, so it is skipped with *zero* page
I/O (the skip list is reported on the result).  Surviving members are
evaluated most-selective-first (:func:`match_estimate` over the cataloged
occurrence counts) so small members warm the shared pool before large
ones; results are reassembled in manifest member order, byte-identical
to the unpruned evaluation.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import tempfile
import threading

from ..core.context import EvalContext
from ..core.engine import XQVXResult, eval_query, eval_xq
from ..core.planner import match_estimate, member_can_match
from ..core.qgraph import compile_query
from ..core.vdoc import VectorizedDocument
from ..core.xpath.ast import Path
from ..core.xpath.parser import parse_xpath
from ..core.xpath.vx_eval import VXResult, _alignments
from ..core.xquery.ast import XQuery
from ..core.xquery.parser import parse_xq
from ..errors import (
    PoolExhaustedError,
    ReproError,
    StorageError,
    XQCompileError,
)
from ..storage.buffer import BufferPool
from ..storage.vdocfile import open_vdoc
from .quarantine import QuarantineRegistry, QuarantineSupervisor
from .rescache import ResultCache

MANIFEST = "repo.json"
REPO_FORMAT = 1

#: member names are safe slugs: filesystem-inert (no separators, no
#: traversal, no leading dot) and header-inert (no comma/CR/LF, so the
#: ``X-Pruned`` response header built by joining names stays well-formed)
MEMBER_NAME_RE = re.compile(r"^[A-Za-z0-9_\-][A-Za-z0-9._\-]*$")


class RepositoryError(ReproError):
    """Repository-level misuse or a malformed repository directory."""


def check_member_name(name) -> str:
    """Validate a member name against the safe slug; returns it.

    Rejecting at the membership boundary is what makes every downstream
    use safe: ``{name}.vdoc`` can never escape the repository directory
    (``name='../evil'`` was a path traversal), and names can never
    corrupt the comma-joined ``X-Pruned`` HTTP header or its CR/LF
    framing."""
    if not isinstance(name, str) or not MEMBER_NAME_RE.match(name):
        raise RepositoryError(
            f"invalid member name {name!r}: names must match "
            f"[A-Za-z0-9._-]+ and not start with '.'")
    return name


def member_paths(vdoc: VectorizedDocument) -> list[tuple[tuple, int]]:
    """The path-catalog entry of one document: every concrete label path of
    its dataguide with its occurrence count (skeleton statistics only — no
    data vector is touched)."""
    catalog = vdoc.catalog
    return [(p, int(catalog.index(p).total)) for p in catalog.dataguide()]


def _check_manifest(raw) -> dict:
    """Validate ``repo.json`` against the strict schema; returns it."""
    def bad(msg: str) -> RepositoryError:
        return RepositoryError(f"invalid repository manifest: {msg}")

    if not isinstance(raw, dict):
        raise bad("not a JSON object")
    if raw.get("format") != REPO_FORMAT:
        raise bad(f"unsupported format {raw.get('format')!r} "
                  f"(expected {REPO_FORMAT})")
    if not isinstance(raw.get("name"), str) or not raw["name"]:
        raise bad("missing collection name")
    members = raw.get("members")
    if not isinstance(members, list):
        raise bad("members is not a list")
    seen: set[str] = set()
    for m in members:
        if not isinstance(m, dict):
            raise bad("member entry is not an object")
        name, file = m.get("name"), m.get("file")
        if not isinstance(name, str) or not name:
            raise bad("member without a name")
        if not MEMBER_NAME_RE.match(name):
            raise bad(f"member name {name!r} is not a safe slug")
        if name in seen:
            raise bad(f"duplicate member {name!r}")
        seen.add(name)
        if not isinstance(file, str) or not file or os.sep in file \
                or (os.altsep and os.altsep in file) or file.startswith("."):
            raise bad(f"member {name!r}: bad file entry {file!r}")
        paths = m.get("paths")
        if not isinstance(paths, list):
            raise bad(f"member {name!r}: paths is not a list")
        for entry in paths:
            if (not isinstance(entry, list) or len(entry) != 2
                    or not isinstance(entry[0], list)
                    or not all(isinstance(c, str) for c in entry[0])
                    or not isinstance(entry[1], int) or entry[1] < 0):
                raise bad(f"member {name!r}: bad path entry {entry!r}")
        comp = m.get("compression")
        if comp is not None:   # optional: absent from pre-codec manifests
            if (not isinstance(comp, dict)
                    or not isinstance(comp.get("logical_bytes"), int)
                    or comp["logical_bytes"] < 0
                    or not isinstance(comp.get("physical_bytes"), int)
                    or comp["physical_bytes"] < 0
                    or not isinstance(comp.get("codecs"), dict)
                    or not all(isinstance(k, str) and isinstance(v, int)
                               and v >= 0
                               for k, v in comp["codecs"].items())):
                raise bad(f"member {name!r}: bad compression entry "
                          f"{comp!r}")
    return raw


class CachedXQMember:
    """A result-cache hit standing in for an evaluated member result:
    carries exactly what response assembly needs — the serialized
    fragment and the tuple count."""

    __slots__ = ("_fragment", "n_tuples")

    def __init__(self, fragment: str, n_tuples: int):
        self._fragment = fragment
        self.n_tuples = n_tuples

    def fragment(self) -> str:
        return self._fragment


class CachedCount:
    """A cached per-member XPath count, quacking like ``VXResult`` for
    the reporting surface the service uses."""

    __slots__ = ("_count",)

    def __init__(self, count: int):
        self._count = count

    def count(self) -> int:
        return self._count


class RepoXQResult:
    """A collection query's result: per-member results concatenated in
    (member, document-order) order under one result root.  ``pruned``
    names the members skipped by catalog pruning (proved empty without
    any page I/O)."""

    def __init__(self, root_tag: str, results: list[tuple[str, object]],
                 pruned: list[str] | None = None,
                 quarantined: list[str] | None = None):
        self.root_tag = root_tag
        #: [(member name, XQVXResult | CachedXQMember)]
        self.results = results
        self.pruned = pruned or []       # member names skipped via catalog
        #: member names skipped because they were quarantined at
        #: evaluation time — a *degraded* (not byte-complete) response
        self.quarantined = quarantined or []
        self.n_tuples = sum(r.n_tuples for _, r in results)

    def to_xml(self) -> str:
        # assembled from per-member *fragments* (an evaluated member
        # serializes its own small output tree; a cache hit is already a
        # fragment) spliced under one shared root in member order —
        # byte-identical to serializing the assembled tree, because
        # serialization of an element is its start tag + the
        # concatenation of its children's serializations + its end tag
        inner = "".join(r.fragment() for _, r in self.results)
        if not inner:
            return f"<{self.root_tag}/>"
        return f"<{self.root_tag}>{inner}</{self.root_tag}>"


class Repository:
    """An open repository: manifest + one shared buffer pool."""

    def __init__(self, dirpath: str, manifest: dict, pool: BufferPool,
                 result_cache_bytes: int | None = None):
        self.dirpath = dirpath
        self.manifest = manifest
        self.pool = pool
        self._open: dict[str, object] = {}    # name -> DiskVectorizedDocument
        # Concurrency (repro.serve): any number of requests may evaluate
        # the *same* member at once — per-query accounting (scan counts,
        # physical-I/O windows) lives in each request's EvalContext, lazy
        # column/index materialization is internally locked, and the
        # shared NodeStore interns under its own lock — so there is no
        # per-member evaluation lock.  ``_open_lock`` protects only the
        # open-document table; the open I/O itself runs outside it behind
        # a per-member opening latch, so one slow open never blocks opens
        # (or lookups) of other members.
        self._open_lock = threading.Lock()
        self._opening: dict[str, threading.Event] = {}
        #: cross-request result cache (None = disabled, the library
        #: default; the query service enables it)
        self.result_cache = (ResultCache(result_cache_bytes)
                             if result_cache_bytes else None)
        # Fault tolerance (see repro.repo.quarantine): members whose
        # evaluation died with a StorageError are quarantined — later
        # queries skip them instead of re-tripping the same damage — and
        # a supervisor (started by the service via start_supervisor())
        # re-verifies and reinstates them when the file heals.  The open
        # document of a quarantined member is *retired*, not closed: a
        # concurrent request may still be reading through it, so it stays
        # open (read-only) until the repository closes; reinstatement
        # reopens the file fresh.
        self.quarantine = QuarantineRegistry()
        self._retired: list = []
        self._supervisor: QuarantineSupervisor | None = None
        # planning memo: query text -> catalog-pruning decision.  Pruning
        # is pure manifest math, so it is cacheable for any repeated query
        # regardless of the result cache — and it otherwise dominates the
        # result cache's hit path.  Cleared whenever membership changes.
        self._plan_memo: dict[tuple, object] = {}

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def init(cls, dirpath: str, name: str,
             pool_pages: int | None = None) -> "Repository":
        """Create an empty repository at ``dirpath`` (which may exist but
        must not already hold a manifest)."""
        os.makedirs(dirpath, exist_ok=True)
        mpath = os.path.join(dirpath, MANIFEST)
        if os.path.exists(mpath):
            raise RepositoryError(f"{dirpath}: already a repository")
        manifest = {"format": REPO_FORMAT, "name": name, "members": []}
        repo = cls(dirpath, manifest,
                   BufferPool(capacity=pool_pages))
        repo._write_manifest()
        return repo

    @classmethod
    def open(cls, dirpath: str, pool_pages: int | None = None,
             verify: bool = True,
             result_cache_bytes: int | None = None) -> "Repository":
        mpath = os.path.join(dirpath, MANIFEST)
        if not os.path.isfile(mpath):
            raise RepositoryError(f"{dirpath}: not a repository "
                                  f"(no {MANIFEST})")
        try:
            with open(mpath, "r", encoding="utf-8") as f:
                raw = json.load(f)
        except (ValueError, UnicodeDecodeError) as exc:
            raise RepositoryError(
                f"invalid repository manifest: not JSON ({exc})") from exc
        manifest = _check_manifest(raw)
        return cls(dirpath, manifest,
                   BufferPool(capacity=pool_pages, verify=verify),
                   result_cache_bytes=result_cache_bytes)

    def close(self) -> None:
        self.stop_supervisor()
        with self._open_lock:
            docs = list(self._open.values()) + self._retired
            self._open.clear()
            self._retired = []
        for vdoc in docs:
            vdoc.close()

    def __enter__(self) -> "Repository":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- manifest / catalog ------------------------------------------------

    @property
    def name(self) -> str:
        return self.manifest["name"]

    def members(self) -> list[str]:
        return [m["name"] for m in self.manifest["members"]]

    def _entry(self, name: str) -> dict:
        for m in self.manifest["members"]:
            if m["name"] == name:
                return m
        raise RepositoryError(f"no member {name!r} in repository "
                              f"{self.name!r}")

    def catalog_paths(self) -> dict[tuple, dict[str, int]]:
        """The repository dataguide from the persisted catalog: concrete
        label path -> per-member occurrence counts (no page file opened)."""
        out: dict[tuple, dict[str, int]] = {}
        for m in self.manifest["members"]:
            for path, count in m["paths"]:
                out.setdefault(tuple(path), {})[m["name"]] = count
        return out

    def _write_manifest(self) -> None:
        """Atomic durable manifest rewrite (same contract as save_vdoc)."""
        mpath = os.path.join(self.dirpath, MANIFEST)
        fd, tmp = tempfile.mkstemp(dir=self.dirpath, prefix=".repo-",
                                   suffix=".json.tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                json.dump(self.manifest, f, indent=1)
                f.write("\n")
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, mpath)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        dfd = os.open(self.dirpath, os.O_RDONLY)
        try:
            os.fsync(dfd)
        finally:
            os.close(dfd)

    # -- membership --------------------------------------------------------

    def add(self, src: str, name: str | None = None,
            page_size: int | None = None) -> str:
        """Add a document: ``src`` is an XML file (vectorized and saved
        into the repository) or an existing ``.vdoc`` (copied in).  The
        member's path-catalog entry is built here, at add time."""
        from ..storage.disk import PageFile

        if name is None:
            name = os.path.splitext(os.path.basename(src))[0]
        check_member_name(name)
        if any(m["name"] == name for m in self.manifest["members"]):
            raise RepositoryError(f"member {name!r} already exists")
        file = f"{name}.vdoc"
        dest = os.path.join(self.dirpath, file)
        if os.path.exists(dest):
            raise RepositoryError(f"{dest}: already exists")
        if PageFile.is_page_file(src):
            shutil.copyfile(src, dest)
        else:
            with open(src, "r", encoding="utf-8") as f:
                vdoc = VectorizedDocument.from_xml(f.read())
            vdoc.save(dest, page_size=page_size)
        # catalog the member through a private pool: validates the file and
        # reads only catalog + skeleton pages (no data vector is touched)
        try:
            with open_vdoc(dest) as disk_doc:
                paths = member_paths(disk_doc)
                comp = disk_doc.compression_stats()
        except StorageError:
            os.unlink(dest)
            raise
        entry = {
            "name": name, "file": file,
            "paths": [[list(p), c] for p, c in paths],
        }
        if comp["compression_ratio"] is not None:
            # manifest compression summary (v4 members only — pre-v4 files
            # don't catalog byte counts): what `repo ls` prints without
            # opening a single page file
            codecs: dict[str, int] = {}
            for v in comp["vectors"]:
                codecs[v["codec"]] = codecs.get(v["codec"], 0) + 1
            entry["compression"] = {
                "logical_bytes": comp["logical_bytes"],
                "physical_bytes": comp["physical_bytes"],
                "codecs": codecs,
            }
        self.manifest["members"].append(entry)
        try:
            self._write_manifest()
        except BaseException:
            self.manifest["members"].pop()
            os.unlink(dest)
            raise
        self._plan_memo.clear()   # pruning decisions depend on membership
        if self.result_cache is not None:
            # explicit invalidation point: membership changed, so any
            # cached response assembled under the old member set is gone
            self.result_cache.clear()
        return name

    def member(self, name: str):
        """The named member, opened lazily over the shared pool (safe to
        call from concurrent request threads; a member is never opened
        twice).  The open's page I/O runs *outside* ``_open_lock`` behind
        a per-member opening latch: concurrent openers of the same member
        wait on the latch, while opens and lookups of other members
        proceed — one slow or corrupt member never serializes the
        repository."""
        while True:
            with self._open_lock:
                vdoc = self._open.get(name)
                if vdoc is not None:
                    return vdoc
                entry = self._entry(name)   # unknown member raises here
                latch = self._opening.get(name)
                if latch is None:
                    latch = self._opening[name] = threading.Event()
                    leader = True
                else:
                    leader = False
            if not leader:
                # another thread is opening this member: wait, then
                # re-check — on its success the table has the document,
                # on its failure this thread retries as the new leader
                latch.wait()
                continue
            path = os.path.join(self.dirpath, entry["file"])
            try:
                vdoc = open_vdoc(path, pool=self.pool)
            except (OSError, StorageError) as exc:
                with self._open_lock:
                    del self._opening[name]
                latch.set()
                raise StorageError(
                    f"member {name!r} ({entry['file']}): {exc}") from exc
            with self._open_lock:
                self._open[name] = vdoc
                del self._opening[name]
            latch.set()
            return vdoc

    # -- quarantine --------------------------------------------------------

    def _note_quarantine(self, name: str, exc: StorageError) -> None:
        """A member's evaluation died with a storage failure: quarantine
        it so later queries skip it, and retire its open document (kept
        open for concurrent in-flight readers; closed with the repo).

        :class:`PoolExhaustedError` is *load*, not member damage —
        admission control owns overload — so it never quarantines."""
        if isinstance(exc, PoolExhaustedError):
            return
        if self.quarantine.quarantine(name, str(exc)):
            with self._open_lock:
                vdoc = self._open.pop(name, None)
                if vdoc is not None:
                    self._retired.append(vdoc)

    def _probe_member(self, name: str) -> bool:
        """The supervisor's re-verify: a deep fsck of the member file.
        True only when the page file comes back with zero findings."""
        from ..storage.fsck import verify_vdoc
        try:
            entry = self._entry(name)
            path = os.path.join(self.dirpath, entry["file"])
            return not verify_vdoc(path, deep=True)
        except (OSError, ReproError):
            return False

    def start_supervisor(self, base_delay: float | None = None,
                         max_delay: float | None = None,
                         poll: float = 0.25) -> QuarantineSupervisor:
        """Start the background recovery thread (idempotent).  The
        library default is *no* supervisor — batch CLI use opens, queries
        and exits; the resident service starts one so on-disk repairs
        heal the serving set without a restart."""
        if self._supervisor is None:
            if base_delay is not None:
                self.quarantine.base_delay = base_delay
            if max_delay is not None:
                self.quarantine.max_delay = max_delay
            self._supervisor = QuarantineSupervisor(
                self.quarantine, self._probe_member, poll=poll).start()
        return self._supervisor

    def stop_supervisor(self) -> None:
        if self._supervisor is not None:
            self._supervisor.stop()
            self._supervisor = None

    # -- queries -----------------------------------------------------------

    def _cache_key(self, name: str, kind: str, qtext: str,
                   flags: tuple) -> tuple | None:
        """The result-cache key of ``(member, query)`` — ``None`` when the
        member file cannot be stat'ed.  Keyed on the file's identity
        (name, mtime_ns, size), the *normalized* query text (whitespace
        around the query carries no meaning; whitespace inside it may —
        string literals — so normalization is ``strip()`` only) and the
        evaluation flags, so any change to the underlying file or to how
        the query is evaluated changes the key."""
        entry = self._entry(name)
        try:
            st = os.stat(os.path.join(self.dirpath, entry["file"]))
        except OSError:
            return None
        return (entry["file"], st.st_mtime_ns, st.st_size,
                kind, qtext, *flags)

    def _memoized(self, key: tuple | None, compute):
        """Planning memo lookup: pure manifest math keyed by query text
        (``key`` is None when the query has no stable text form).  Bounded
        by wholesale reset — repeated queries are the case that matters."""
        if key is None:
            return compute()
        hit = self._plan_memo.get(key)
        if hit is None:
            hit = compute()
            if len(self._plan_memo) >= 512:
                self._plan_memo.clear()
            self._plan_memo[key] = hit
        return hit

    def _member_order(self, gq) -> tuple[list[str], list[str]]:
        """Split members into ``(survivors, pruned)`` against the manifest
        catalog alone — no member is opened.  Survivors come back ordered
        most-selective-first (catalog occurrence estimate, manifest order
        breaking ties) so cheap members are evaluated before large ones."""
        survivors: list[tuple[float, int, str]] = []
        pruned: list[str] = []
        for pos, m in enumerate(self.manifest["members"]):
            counts = {tuple(p): c for p, c in m["paths"]}
            guide = list(counts)
            if not member_can_match(gq, guide):
                pruned.append(m["name"])
                continue
            survivors.append((match_estimate(gq, counts), pos, m["name"]))
        survivors.sort()
        return [name for _, _, name in survivors], pruned

    def xq(self, query: str | XQuery, batched: bool = True,
           prune: bool = True, use_indexes: bool = True,
           use_codecs: bool = True, deadline: float | None = None,
           ctx: EvalContext | None = None) -> RepoXQResult:
        """Evaluate an XQ query over every member, in member order.

        ``collection("name")`` sources must name this repository; a query
        without collection sources ranges over all members too (the
        repository is the context collection).  Every root variable binds
        within the member under evaluation — there are no cross-member
        tuples, so results are exactly the concatenation of per-member
        evaluations, interleaved in (member, document-order) order.

        ``prune=True`` (default) skips members whose cataloged paths prove
        them empty for this query — zero page I/O for skipped members —
        and evaluates survivors most-selective-first; the returned results
        are reassembled in manifest order either way, so output is
        byte-identical with pruning on or off.  ``use_codecs=False``
        forbids code-space predicate evaluation over dictionary-coded
        vectors (the ``--no-codec-eval`` escape hatch) — also
        byte-identical.

        ``deadline`` arms a cooperative budget (seconds) spanning *all*
        members of this query; expiry raises
        :class:`~repro.errors.DeadlineExceededError` at the next engine
        checkpoint and unwinds with zero leaked pins.  ``ctx`` supplies a
        caller-built :class:`EvalContext` (the service reuses this to arm
        per-request deadlines; tests to force deterministic expiry).

        A member whose evaluation dies with a :class:`StorageError` is
        **quarantined**: this query still fails (naming the member), but
        subsequent queries skip it — reported in ``result.quarantined`` —
        until the supervisor's deep fsck finds the file healthy again."""
        xq = query if isinstance(query, XQuery) else parse_xq(query)
        gq, _ = compile_query(xq)
        if gq.collection is not None and gq.collection != self.name:
            raise XQCompileError(
                f"query ranges over collection {gq.collection!r} but this "
                f"repository is {self.name!r}")
        cache = self.result_cache
        qtext = query.strip() if isinstance(query, str) else None
        flags = (batched, use_indexes, use_codecs)
        if prune:
            order, pruned = self._memoized(
                ("xq-order", qtext) if qtext is not None else None,
                lambda: self._member_order(gq))
        else:
            order, pruned = self.members(), []
        if ctx is None:
            ctx = EvalContext(strict_passes=batched)
        if deadline is not None:
            ctx.set_deadline(deadline)
        by_name: dict[str, object] = {}
        quarantined: list[str] = []
        for name in order:
            if self.quarantine.is_quarantined(name):
                quarantined.append(name)
                self.quarantine.note_skip()
                continue
            key = (self._cache_key(name, "xq", qtext, flags)
                   if cache is not None and qtext is not None else None)
            if key is not None:
                hit = cache.get(key)
                if hit is not None:
                    by_name[name] = CachedXQMember(*hit)
                    continue
            elif cache is not None and qtext is not None:
                cache.note_uncacheable()
            try:
                vdoc = self.member(name)
            except StorageError as exc:
                self._note_quarantine(name, exc)
                raise
            try:
                res = eval_xq(vdoc, xq, batched=batched, ctx=ctx,
                              use_indexes=use_indexes,
                              use_codecs=use_codecs)
            except StorageError as exc:
                self._note_quarantine(name, exc)
                raise StorageError(f"member {name!r}: {exc}") from exc
            if key is not None:
                frag = res.fragment()
                cache.put(key, (frag, res.n_tuples), len(frag))
            by_name[name] = res
        results = [(name, by_name[name]) for name in self.members()
                   if name in by_name]
        return RepoXQResult(xq.root_tag, results, pruned,
                            sorted(quarantined))

    def xpath(self, query: str, prune: bool = True,
              use_codecs: bool = True,
              deadline: float | None = None,
              ctx: EvalContext | None = None,
              skipped: list | None = None) -> list[tuple[str, object]]:
        """Evaluate an XPath over every member; per-member ``VXResult``\\ s
        in member order.  With ``prune=True`` a member whose cataloged
        paths admit no alignment with the query steps is answered with an
        empty result straight from the manifest (it is never opened).
        When the result cache is enabled, a member hit is answered as a
        :class:`CachedCount` (the ``count()`` reporting surface only).

        Quarantined members are *omitted* from the output; pass a list
        as ``skipped`` to receive their names.  Reading
        ``repo.quarantine.active()`` afterwards instead is racy — the
        supervisor may reinstate a member between the skip and the read,
        silently hiding the degradation.  ``deadline`` / ``ctx`` behave
        as in :meth:`xq`."""
        path: Path = parse_xpath(query)
        cache = self.result_cache
        qtext = query.strip()
        if ctx is None:
            ctx = EvalContext()
        if deadline is not None:
            ctx.set_deadline(deadline)
        prunable: frozenset = frozenset() if not prune else self._memoized(
            ("xpath-prune", qtext),
            lambda: frozenset(
                m["name"] for m in self.manifest["members"]
                if not any(_alignments(path.steps, tuple(p))
                           for p, _ in m["paths"])))
        out: list[tuple[str, object]] = []
        for m in self.manifest["members"]:
            name = m["name"]
            if self.quarantine.is_quarantined(name):
                self.quarantine.note_skip()
                if skipped is not None:
                    skipped.append(name)
                continue
            if name in prunable:
                out.append((name, VXResult(None, [])))
                continue
            key = (self._cache_key(name, "xpath", qtext, (use_codecs,))
                   if cache is not None else None)
            if key is not None:
                hit = cache.get(key)
                if hit is not None:
                    out.append((name, CachedCount(hit)))
                    continue
            elif cache is not None:
                cache.note_uncacheable()
            try:
                vdoc = self.member(name)
            except StorageError as exc:
                self._note_quarantine(name, exc)
                raise
            try:
                res = eval_query(vdoc, path, ctx=ctx,
                                 use_codecs=use_codecs)
            except StorageError as exc:
                self._note_quarantine(name, exc)
                raise StorageError(f"member {name!r}: {exc}") from exc
            if key is not None:
                cache.put(key, res.count(), 32)
            out.append((name, res))
        return out

    # -- reporting ---------------------------------------------------------

    def io_stats(self) -> dict:
        """Pool-wide counters plus per-member counters for every member
        opened so far."""
        stats = {f"pool_{k}": v for k, v in self.pool.stats.as_dict().items()}
        stats["pool_capacity"] = self.pool.capacity
        stats["pool_resident"] = self.pool.resident()
        stats["pinned"] = self.pool.pinned_total()
        for name, vdoc in self._open.items():
            for k, v in vdoc.view.stats.as_dict().items():
                stats[f"{name}.{k}"] = v
        return stats
