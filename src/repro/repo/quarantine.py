"""Member quarantine with supervised recovery (repo-layer fault
tolerance).

A repository query that dies inside one member with a
:class:`~repro.errors.StorageError` — a corrupt page, a truncated file,
an I/O error that survived the buffer pool's retry budget — used to make
that member a landmine: every later query over the collection tripped on
it again, burning a full error path (and its retries) per request.  The
:class:`QuarantineRegistry` turns the first failure into a *state
transition*: the member is marked quarantined, subsequent queries skip
it up front (reported via the ``X-Quarantined`` response header and the
``degraded`` flag on ``/healthz`` and ``GET /repo``), and the rest of
the collection keeps serving.

Quarantine is not permanent.  A :class:`QuarantineSupervisor` — one
daemon thread per repository — re-verifies each quarantined member with
:func:`~repro.storage.fsck.verify_vdoc` under capped exponential backoff
(deterministically jittered, so two members quarantined together do not
probe in lockstep forever) and reinstates it the moment a deep fsck
comes back clean.  An operator who repairs or replaces the member file
on disk therefore heals the service *without a restart*; the reinstated
member is reopened fresh (new file view, new page-file identity), and
the result cache — keyed on the file's ``(mtime_ns, size)`` — can never
serve bytes from the pre-repair file.

Two failure shapes deliberately do **not** quarantine:

* :class:`~repro.storage.buffer.PoolExhaustedError` — the pool being
  full is *load*, not member damage; admission control owns that.
* :class:`~repro.errors.DeadlineExceededError` — a slow query is the
  client's budget, not the member's health.

Everything here is clock-injectable (``clock=``) and the backoff jitter
is a hash, not a PRNG — the quarantine lifecycle tests run the whole
quarantine → probe → reinstate cycle deterministically.
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass

#: first re-verify delay (seconds) after a member is quarantined
BASE_DELAY = 0.25
#: backoff ceiling — a member that stays broken is probed this often
MAX_DELAY = 30.0
#: jitter fraction: each delay is scaled by 1 ± jitter (deterministic)
JITTER = 0.2


@dataclass
class QuarantineEntry:
    """One quarantined member: why, since when, and the probe schedule."""

    name: str
    cause: str
    since: float                 # registry clock at quarantine time
    probes: int = 0              # failed re-verify attempts so far
    next_probe: float = 0.0      # registry clock of the next attempt


class QuarantineRegistry:
    """Thread-safe registry of quarantined members plus the counters the
    service reports (``/stats``).  Owns the backoff policy; the
    supervisor just asks :meth:`due` / :meth:`next_wake` and reports
    probe outcomes through :meth:`note_probe`."""

    def __init__(self, base_delay: float = BASE_DELAY,
                 max_delay: float = MAX_DELAY, jitter: float = JITTER,
                 clock=time.monotonic):
        self._lock = threading.Lock()
        self._entries: dict[str, QuarantineEntry] = {}
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.jitter = jitter
        self.clock = clock
        # lifetime counters (monotonic, reported in /stats)
        self.quarantined_total = 0   # members ever quarantined
        self.reinstated_total = 0    # members healed back into service
        self.probes_total = 0        # re-verify attempts
        self.probe_failures = 0      # attempts that found it still broken
        self.skips = 0               # member evaluations skipped

    # -- backoff -----------------------------------------------------------

    def _delay(self, entry: QuarantineEntry) -> float:
        """Capped exponential backoff with deterministic ±jitter: the
        jitter is a hash of ``(name, probe count)``, so the schedule is
        reproducible yet de-synchronized across members."""
        raw = min(self.base_delay * (2.0 ** entry.probes), self.max_delay)
        h = zlib.crc32(f"{entry.name}:{entry.probes}".encode("utf-8"))
        return raw * (1.0 + self.jitter * (2.0 * (h / 0xFFFFFFFF) - 1.0))

    # -- transitions -------------------------------------------------------

    def quarantine(self, name: str, cause: str) -> bool:
        """Mark ``name`` quarantined; returns True if this call made the
        transition (False if it already was — concurrent failures on the
        same member race here, one wins)."""
        with self._lock:
            if name in self._entries:
                return False
            now = self.clock()
            entry = QuarantineEntry(name, cause, now)
            entry.next_probe = now + self._delay(entry)
            self._entries[name] = entry
            self.quarantined_total += 1
            return True

    def note_probe(self, name: str, healthy: bool) -> bool:
        """Record one re-verify outcome; returns True when this probe
        reinstated the member."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:          # reinstated/removed concurrently
                return False
            self.probes_total += 1
            if healthy:
                del self._entries[name]
                self.reinstated_total += 1
                return True
            self.probe_failures += 1
            entry.probes += 1
            entry.next_probe = self.clock() + self._delay(entry)
            return False

    def reinstate(self, name: str) -> bool:
        """Administratively lift a quarantine (the supervisor path goes
        through :meth:`note_probe`)."""
        with self._lock:
            if self._entries.pop(name, None) is None:
                return False
            self.reinstated_total += 1
            return True

    # -- queries -----------------------------------------------------------

    def is_quarantined(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def note_skip(self, n: int = 1) -> None:
        with self._lock:
            self.skips += n

    def active(self) -> list[str]:
        """Currently quarantined member names, sorted (header-stable)."""
        with self._lock:
            return sorted(self._entries)

    def due(self, now: float | None = None) -> list[str]:
        """Members whose next probe time has arrived."""
        if now is None:
            now = self.clock()
        with self._lock:
            return [e.name for e in self._entries.values()
                    if e.next_probe <= now]

    def next_wake(self) -> float | None:
        """The earliest scheduled probe instant (None when empty)."""
        with self._lock:
            if not self._entries:
                return None
            return min(e.next_probe for e in self._entries.values())

    def snapshot(self) -> dict:
        """The reporting surface for ``/stats`` and ``GET /repo``."""
        with self._lock:
            now = self.clock()
            return {
                "active": [
                    {"name": e.name, "cause": e.cause, "probes": e.probes,
                     "for_s": round(now - e.since, 3)}
                    for e in sorted(self._entries.values(),
                                    key=lambda e: e.name)],
                "quarantined_total": self.quarantined_total,
                "reinstated_total": self.reinstated_total,
                "probes_total": self.probes_total,
                "probe_failures": self.probe_failures,
                "skips": self.skips,
            }


class QuarantineSupervisor:
    """The recovery daemon: waits for the registry's next probe instant,
    runs ``probe(name)`` (True = healthy) for each due member, and calls
    ``on_reinstate(name)`` for every member a clean probe heals.

    The thread is a daemon and :meth:`stop` joins it, so a repository
    (or server) shutdown never hangs on a sleeping supervisor — the stop
    event doubles as the wake-up timer."""

    def __init__(self, registry: QuarantineRegistry, probe,
                 on_reinstate=None, poll: float = 0.25):
        self.registry = registry
        self._probe = probe
        self._on_reinstate = on_reinstate
        self._poll = poll
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="quarantine-supervisor", daemon=True)

    def start(self) -> "QuarantineSupervisor":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=5.0)

    # one scheduling round, factored out so tests can drive it without
    # the thread (deterministic clock, no sleeps)
    def run_due(self) -> int:
        """Probe every due member once; returns how many reinstated."""
        healed = 0
        for name in self.registry.due():
            try:
                healthy = bool(self._probe(name))
            except Exception:
                healthy = False      # a probe crash is a failed probe
            if self.registry.note_probe(name, healthy):
                healed += 1
                if self._on_reinstate is not None:
                    try:
                        self._on_reinstate(name)
                    except Exception:
                        pass         # reopen failures surface on next use
        return healed

    def _run(self) -> None:
        while not self._stop.is_set():
            self.run_due()
            wake = self.registry.next_wake()
            if wake is None:
                timeout = self._poll
            else:
                timeout = min(max(wake - self.registry.clock(), 0.005),
                              self._poll)
            self._stop.wait(timeout)
