"""(De)serialization of value-index segments as plain record streams.

A persistent index is two ordered record streams — stored by the vdoc
file layer as two ordinary heap-file chains, but this module knows
nothing about pages or pools, only ``bytes`` records:

* **key records** — exactly :data:`N_KEY_RECORDS` binary records holding
  the sorted (``np.unique`` order) key dictionary as one raw
  little-endian ``<U`` numpy buffer: a ``<q`` itemsize header, then the
  array bytes.  One ``np.frombuffer`` call rebuilds all ``u`` keys —
  loading an index is *not* a per-record Python walk like materializing
  a column is, which is exactly why a selective probe on a cold document
  is cheaper than touching the vector (trailing-NUL padding is numpy's
  own ``U`` convention, and NUL never appears in parsed XML text);
* **data records** — exactly :data:`N_DATA_RECORDS` binary records::

      0  header   <qqq>: n rows, u distinct keys, n_buckets
      1  offsets         (u+1) little-endian int64   CSR into rows
      2  rows            n int64                     permutation of 0..n-1
      3  bucket_offsets  (n_buckets+1) int64         CSR into bucket_codes
      4  bucket_codes    u int64                     permutation of 0..u-1
      5  num_codes       m int64                     numeric keys
      6  num_vals        m float64                   ascending

``decode_segment`` is the one trust boundary for persistent indexes: it
re-validates every structural invariant (CSR monotonicity, permutation
properties, ordering) before handing out a probe-able
:class:`~repro.index.vindex.ValueIndex`, so a corrupt or hand-edited
segment fails as :class:`~repro.errors.CorruptDataError` — never as a
wrong query answer or an out-of-bounds gather.  Deep fsck adds the
*semantic* checks on top (hash placement, numeric-parse agreement,
staleness against the vector itself) via :func:`check_segment`.
"""

from __future__ import annotations

import struct

import numpy as np

from ..errors import CorruptDataError
from ..util import parse_float
from .vindex import ValueIndex, value_hash

_HEADER = struct.Struct("<qqq")
_ITEMSIZE = struct.Struct("<q")

#: number of records in each stream (see module docstring)
N_KEY_RECORDS = 2
N_DATA_RECORDS = 7


def _int_bytes(a) -> bytes:
    return np.ascontiguousarray(a, dtype="<i8").tobytes()


def keys_to_blob(keys: np.ndarray) -> tuple[int, bytes]:
    """Canonical ``(itemsize, raw little-endian <U buffer)`` of a sorted
    key dictionary — shared by index segments and the ``dict`` storage
    codec, so the two persisted dictionary forms are byte-compatible."""
    if not len(keys):
        return 0, b""
    karr = np.ascontiguousarray(keys, dtype=f"<U{keys.itemsize // 4 or 1}")
    return karr.itemsize, karr.tobytes()


def keys_from_blob(name: str, u: int, itemsize: int,
                   blob: bytes) -> np.ndarray:
    """Rebuild (and validate) a ``u``-key dictionary from its raw ``<U``
    buffer; the trust-boundary counterpart of :func:`keys_to_blob`.
    ``name`` labels the owning structure in error messages."""
    if u == 0:
        if itemsize != 0 or blob:
            raise CorruptDataError(f"{name}: key buffer not empty for "
                                   f"0 keys")
        return np.empty(0, dtype="<U1")
    if itemsize <= 0 or itemsize % 4 or len(blob) != u * itemsize:
        raise CorruptDataError(
            f"{name}: key buffer is {len(blob)} bytes, expected {u} keys "
            f"of itemsize {itemsize}")
    cp = np.frombuffer(blob, dtype="<u4")
    if cp.size and (int(cp.max()) > 0x10FFFF
                    or bool(np.any((cp >= 0xD800) & (cp < 0xE000)))):
        raise CorruptDataError(f"{name}: key buffer holds invalid code "
                               f"points")
    keys = np.frombuffer(blob, dtype=f"<U{itemsize // 4}")
    return keys.astype(np.str_, copy=False)


def encode_segment(vi: ValueIndex) -> tuple[list[bytes], list[bytes]]:
    """``(key records, data records)`` for one index."""
    u = len(vi.keys)
    itemsize, blob = keys_to_blob(vi.keys)
    keys = [_ITEMSIZE.pack(itemsize), blob]
    data = [
        _HEADER.pack(vi.n, len(vi.keys), vi.n_buckets),
        _int_bytes(vi.offsets),
        _int_bytes(vi.rows),
        _int_bytes(vi.bucket_offsets),
        _int_bytes(vi.bucket_codes),
        _int_bytes(vi.num_codes),
        np.ascontiguousarray(vi.num_vals, dtype="<f8").tobytes(),
    ]
    return keys, data


def _ints(record: bytes, what: str, name: str, count: int) -> np.ndarray:
    if len(record) != count * 8:
        raise CorruptDataError(
            f"vindex {name}: {what} holds {len(record)} bytes, "
            f"expected {count * 8}")
    return np.frombuffer(record, dtype="<i8").astype(np.int64)


def _csr(offsets: np.ndarray, what: str, name: str, total: int) -> None:
    if offsets[0] != 0 or offsets[-1] != total or \
            np.any(np.diff(offsets) < 0):
        raise CorruptDataError(
            f"vindex {name}: {what} is not a monotone 0..{total} CSR")


def _permutation(a: np.ndarray, what: str, name: str, size: int) -> None:
    # bounds before bincount: a corrupt entry must not size an allocation
    if len(a) != size or (size and (
            int(a.min()) < 0 or int(a.max()) >= size
            or not np.all(np.bincount(a, minlength=size) == 1))):
        raise CorruptDataError(
            f"vindex {name}: {what} is not a permutation of 0..{size - 1}")


def decode_segment(vpath: tuple, n: int, key_records: list[bytes],
                   data_records: list[bytes]) -> ValueIndex:
    """Rebuild (and structurally validate) one index from its streams.

    ``n`` is the cataloged row count of the indexed vector; every
    violation raises :class:`CorruptDataError` naming the vector.
    """
    name = "/".join(vpath)
    if len(data_records) != N_DATA_RECORDS:
        raise CorruptDataError(
            f"vindex {name}: {len(data_records)} data records, "
            f"expected {N_DATA_RECORDS}")
    if len(data_records[0]) != _HEADER.size:
        raise CorruptDataError(f"vindex {name}: malformed header record")
    hdr_n, u, n_buckets = _HEADER.unpack(data_records[0])
    if hdr_n != n:
        raise CorruptDataError(
            f"vindex {name}: header says {hdr_n} rows, vector has {n}")
    if n_buckets < 1 or n_buckets & (n_buckets - 1):
        raise CorruptDataError(
            f"vindex {name}: bucket count {n_buckets} is not a power of two")

    if len(key_records) != N_KEY_RECORDS or \
            len(key_records[0]) != _ITEMSIZE.size:
        raise CorruptDataError(
            f"vindex {name}: malformed key stream "
            f"({len(key_records)} records)")
    (itemsize,) = _ITEMSIZE.unpack(key_records[0])
    keys = keys_from_blob(f"vindex {name}", u, itemsize, key_records[1])
    if u > 1 and not np.all(keys[1:] > keys[:-1]):
        raise CorruptDataError(
            f"vindex {name}: keys are not strictly increasing")

    offsets = _ints(data_records[1], "offsets", name, u + 1)
    _csr(offsets, "offsets", name, n)
    rows = _ints(data_records[2], "rows", name, n)
    _permutation(rows, "rows", name, n)
    # sorted-run monotonicity: ascending within every posting group
    if n:
        breaks = np.flatnonzero(np.diff(rows) < 0) + 1
        if not np.all(np.isin(breaks, offsets)):
            raise CorruptDataError(
                f"vindex {name}: posting rows not ascending within a group")

    bucket_offsets = _ints(data_records[3], "bucket offsets", name,
                           n_buckets + 1)
    _csr(bucket_offsets, "bucket offsets", name, u)
    bucket_codes = _ints(data_records[4], "bucket codes", name, u)
    _permutation(bucket_codes, "bucket codes", name, u)

    if len(data_records[5]) % 8 or \
            len(data_records[5]) != len(data_records[6]):
        raise CorruptDataError(
            f"vindex {name}: numeric sub-index records disagree in length")
    m = len(data_records[5]) // 8
    num_codes = _ints(data_records[5], "numeric codes", name, m)
    num_vals = np.frombuffer(data_records[6],
                             dtype="<f8").astype(np.float64)
    if m:
        if num_codes.min() < 0 or num_codes.max() >= max(u, 1) or \
                len(np.unique(num_codes)) != m:
            raise CorruptDataError(
                f"vindex {name}: numeric codes outside 0..{u - 1} or "
                f"duplicated")
        if np.any(np.isnan(num_vals)) or np.any(np.diff(num_vals) < 0):
            raise CorruptDataError(
                f"vindex {name}: numeric values not ascending and NaN-free")
    return ValueIndex(vpath, n, keys, offsets, rows, n_buckets,
                      bucket_offsets, bucket_codes, num_codes, num_vals)


def check_segment(vi: ValueIndex, column=None) -> list[str]:
    """The *semantic* checks deep fsck layers on top of decoding: hash
    placement of every key, numeric sub-index agreement with
    ``parse_float``, and — when the materialized ``column`` is supplied —
    staleness of the whole index against the vector's actual values.
    Returns human-readable problem strings (empty = clean)."""
    problems: list[str] = []
    u = len(vi.keys)
    mask = vi.n_buckets - 1
    # every key must sit in its hash bucket
    bucket_of = np.empty(u, dtype=np.int64)
    for b in range(vi.n_buckets):
        bucket_of[vi.bucket_codes[vi.bucket_offsets[b]:
                                  vi.bucket_offsets[b + 1]]] = b
    for code in range(u):
        if value_hash(vi.keys[code]) & mask != bucket_of[code]:
            problems.append(
                f"key {vi.keys[code]!r} filed under bucket "
                f"{bucket_of[code]}, hashes to "
                f"{value_hash(vi.keys[code]) & mask}")
            break
    # the numeric sub-index must list exactly the parseable, non-NaN keys
    expect: dict[int, float] = {}
    for code in range(u):
        try:
            v = parse_float(str(vi.keys[code]))
        except ValueError:
            continue
        if v == v:
            expect[code] = v
    got = dict(zip(vi.num_codes.tolist(), vi.num_vals.tolist()))
    if got != expect:
        problems.append(
            f"numeric sub-index disagrees with parse_float over the keys "
            f"({len(got)} vs {len(expect)} entries)")
    if column is not None:
        col = np.asarray(column, dtype=np.str_)
        if len(col) != vi.n:
            problems.append(
                f"index built over {vi.n} rows, vector holds {len(col)}")
        else:
            pos = np.searchsorted(vi.keys, col) if u else \
                np.zeros(len(col), dtype=np.int64)
            ok = (pos < u)
            ok[ok] = vi.keys[pos[ok]] == col[ok]
            if not np.all(ok):
                problems.append(
                    "stale index: vector holds values absent from the key "
                    "dictionary")
            elif len(col) and not np.array_equal(pos[vi.rows], np.repeat(
                    np.arange(u, dtype=np.int64), np.diff(vi.offsets))):
                problems.append(
                    "stale index: posting lists disagree with the vector's "
                    "values")
    return problems
