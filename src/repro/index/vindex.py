"""Value indexes over data vectors ("vindex", paper §6).

One :class:`ValueIndex` accelerates the two hot operations of graph
reduction over one text-path vector of ``n`` values with ``u`` distinct
strings:

* **constant selections** — instead of a full-column predicate mask plus
  prefix sum, a probe returns the sorted row ordinals matching the
  constant and the per-row existential becomes two ``searchsorted`` calls;
* **equality joins** — instead of ``np.unique`` over the gathered string
  values of both sides (a string sort proportional to the row count), the
  precomputed per-row value codes of each side are remapped into one
  shared code space by merging the (much smaller, already sorted) key
  dictionaries — all row-proportional work is integer work.

Structure (all numpy, all derivable from the column alone — the
persistent form in :mod:`repro.index.segment` stores exactly these
arrays):

* ``keys``      — the ``u`` distinct values, sorted (``np.unique`` order);
* ``offsets``/``rows`` — CSR postings: ``rows`` is a permutation of
  ``arange(n)`` grouped by key code, ascending within each group;
  ``rows[offsets[c]:offsets[c+1]]`` are the sorted row ordinals holding
  ``keys[c]``;
* hash directory — ``n_buckets`` (smallest power of two ≥ ``u``) buckets
  over ``crc32(key)``; ``bucket_codes`` grouped by bucket via
  ``bucket_offsets``, so an equality probe is O(bucket) string compares
  rather than a binary search through ``log u`` string compares;
* numeric sub-index — the codes of keys that parse as finite floats
  (through :func:`repro.util.parse_float`, the engine's *single*
  definition of numeric text), sorted by (value, code); a range probe is
  two ``searchsorted`` calls over ``num_vals``.

Probes are existentially *identical* to the scan path's
``pred_mask`` + prefix-sum semantics — NaN text never matches an ordering
operator, a non-numeric constant matches nothing — which is what lets the
engine assert byte-identical results between the two access paths.
"""

from __future__ import annotations

import zlib

import numpy as np

from ..util import parse_float

_EMPTY = np.empty(0, dtype=np.int64)


def value_hash(value: str) -> int:
    """The directory hash: crc32 of the UTF-8 bytes (stable across runs,
    platforms and Python processes — unlike ``hash()``)."""
    return zlib.crc32(str(value).encode("utf-8"))


def _concat_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenate ``[start, start+length)`` ranges without a Python loop."""
    total = int(lengths.sum())
    if total == 0:
        return _EMPTY
    offs = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    return np.repeat(starts - offs, lengths) + np.arange(total,
                                                         dtype=np.int64)


def count_in_ranges(matches: np.ndarray, starts: np.ndarray,
                    lengths: np.ndarray) -> np.ndarray:
    """Per range ``[start, start+length)``: how many of the *sorted*
    ordinals in ``matches`` fall inside — two searchsorted calls, no
    full-column pass."""
    return (np.searchsorted(matches, starts + lengths)
            - np.searchsorted(matches, starts))


class ValueIndex:
    """The in-memory (and only) probe form of one vector's value index."""

    __slots__ = ("path", "n", "keys", "offsets", "rows", "n_buckets",
                 "bucket_offsets", "bucket_codes", "num_codes", "num_vals",
                 "_row_codes")

    def __init__(self, path: tuple, n: int, keys: np.ndarray,
                 offsets: np.ndarray, rows: np.ndarray, n_buckets: int,
                 bucket_offsets: np.ndarray, bucket_codes: np.ndarray,
                 num_codes: np.ndarray, num_vals: np.ndarray):
        self.path = path
        self.n = n
        self.keys = keys
        self.offsets = offsets
        self.rows = rows
        self.n_buckets = n_buckets
        self.bucket_offsets = bucket_offsets
        self.bucket_codes = bucket_codes
        self.num_codes = num_codes
        self.num_vals = num_vals
        self._row_codes = None

    @property
    def distinct(self) -> int:
        return len(self.keys)

    def get(self) -> "ValueIndex":
        """Uniform handle interface (disk-backed handles materialize)."""
        return self

    # -- probes ------------------------------------------------------------

    def row_codes(self) -> np.ndarray:
        """Key code of every row (built lazily: one integer scatter)."""
        if self._row_codes is None:
            counts = np.diff(self.offsets)
            codes = np.empty(self.n, dtype=np.int64)
            codes[self.rows] = np.repeat(
                np.arange(len(self.keys), dtype=np.int64), counts)
            self._row_codes = codes
        return self._row_codes

    def code_of(self, value: str) -> int:
        """The key code of ``value``, or -1 — one hash + O(bucket) string
        compares."""
        if not len(self.keys):
            return -1
        bucket = value_hash(value) & (self.n_buckets - 1)
        lo, hi = self.bucket_offsets[bucket], self.bucket_offsets[bucket + 1]
        for code in self.bucket_codes[lo:hi]:
            if self.keys[code] == value:
                return int(code)
        return -1

    def rows_of_code(self, code: int) -> np.ndarray:
        return self.rows[self.offsets[code]:self.offsets[code + 1]]

    def eq_rows(self, value: str) -> np.ndarray:
        """Sorted row ordinals whose value equals ``value`` exactly."""
        code = self.code_of(value)
        return _EMPTY if code < 0 else self.rows_of_code(code)

    def rows_of_codes(self, codes: np.ndarray) -> np.ndarray:
        """Sorted union of the posting lists of ``codes``."""
        if not len(codes):
            return _EMPTY
        lengths = self.offsets[codes + 1] - self.offsets[codes]
        slots = _concat_ranges(self.offsets[codes], lengths)
        return np.sort(self.rows[slots])

    def range_rows(self, op: str, const: str) -> np.ndarray | None:
        """Sorted row ordinals whose *numeric* value satisfies
        ``value op const`` — ``None`` when the constant itself is not
        numeric (the scan-path mask is all-False then)."""
        try:
            c = parse_float(const)
        except ValueError:
            return None
        if c != c:  # NaN constant: no ordering comparison ever holds
            return _EMPTY
        vals = self.num_vals
        if op == "<":
            sel = self.num_codes[:np.searchsorted(vals, c, side="left")]
        elif op == "<=":
            sel = self.num_codes[:np.searchsorted(vals, c, side="right")]
        elif op == ">":
            sel = self.num_codes[np.searchsorted(vals, c, side="right"):]
        elif op == ">=":
            sel = self.num_codes[np.searchsorted(vals, c, side="left"):]
        else:
            raise ValueError(f"not an ordering operator: {op!r}")
        return self.rows_of_codes(sel)


def select_keep(vi: ValueIndex, op: str, value: str, starts: np.ndarray,
                lengths: np.ndarray) -> np.ndarray:
    """Existential keep mask per row range — the index-probe equivalent of
    ``pred_mask`` + prefix sum, byte-identical by construction."""
    if op == "=":
        return count_in_ranges(vi.eq_rows(value), starts, lengths) > 0
    if op == "!=":
        # ∃ x ≠ value ⟺ the range holds more values than its `= value` hits
        return (lengths - count_in_ranges(vi.eq_rows(value), starts,
                                          lengths)) > 0
    matches = vi.range_rows(op, value)
    if matches is None:
        return np.zeros(len(starts), dtype=bool)
    return count_in_ranges(matches, starts, lengths) > 0


def build_value_index(path: tuple, column) -> ValueIndex:
    """Build the full index from one materialized column."""
    col = np.asarray(column, dtype=np.str_)
    n = len(col)
    if n:
        keys, inverse = np.unique(col, return_inverse=True)
        inverse = inverse.astype(np.int64, copy=False).ravel()
    else:
        keys = np.empty(0, dtype="<U1")
        inverse = _EMPTY
    return build_value_index_from_codes(path, keys, inverse)


def build_value_index_from_codes(path: tuple, keys: np.ndarray,
                                 codes: np.ndarray) -> ValueIndex:
    """Build the index from an existing dictionary coding — ``keys``
    sorted ascending (``np.unique`` order) and one key code per row.
    This is how the save path indexes a ``dict``-coded vector: the
    codec's own (keys, codes) feed the index directly, so the persisted
    segment and the compressed chain can never disagree within one save
    (and the string column is never rebuilt just to index it)."""
    n = len(codes)
    if n:
        inverse = np.asarray(codes, dtype=np.int64).ravel()
        counts = np.bincount(inverse,
                             minlength=len(keys)).astype(np.int64)
        rows = np.argsort(inverse, kind="stable").astype(np.int64)
    else:
        counts, rows = _EMPTY, _EMPTY
    u = len(keys)
    offsets = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)

    n_buckets = 1 << (u - 1).bit_length() if u else 1
    hashes = np.fromiter((value_hash(k) & (n_buckets - 1) for k in keys),
                         dtype=np.int64, count=u)
    bucket_codes = np.argsort(hashes, kind="stable").astype(np.int64)
    bcounts = np.bincount(hashes, minlength=n_buckets).astype(np.int64)
    bucket_offsets = np.concatenate(([0], np.cumsum(bcounts))) \
        .astype(np.int64)

    ncodes: list[int] = []
    nvals: list[float] = []
    for code in range(u):
        try:
            v = parse_float(str(keys[code]))
        except ValueError:
            continue
        if v == v:  # NaN text never matches an ordering operator: drop it
            ncodes.append(code)
            nvals.append(v)
    num_codes = np.asarray(ncodes, dtype=np.int64)
    num_vals = np.asarray(nvals, dtype=np.float64)
    order = np.lexsort((num_codes, num_vals))
    return ValueIndex(path, n, keys, offsets, rows, n_buckets,
                      bucket_offsets, bucket_codes, num_codes[order],
                      num_vals[order])


def merge_codings(indexes: list[ValueIndex]) -> tuple[list[np.ndarray], int]:
    """Map each index's local key codes into one shared code space.

    Equal strings across indexes always share a code; distinct strings
    never collide.  Work is proportional to the *dictionaries* (sorted
    string arrays, merged via searchsorted), never to the row counts —
    this is what makes the index join cheaper than re-coding the gathered
    values with ``np.unique``.

    Returns ``(remaps, size)``: one ``local code -> shared code`` array
    per index, and the shared space size.
    """
    remaps: list[np.ndarray] = []
    coded: list[tuple[np.ndarray, np.ndarray]] = []
    next_code = 0
    for vi in indexes:
        keys = vi.keys
        remap = np.full(len(keys), -1, dtype=np.int64)
        for prev_keys, prev_codes in coded:
            todo = np.flatnonzero(remap < 0)
            if not len(todo) or not len(prev_keys):
                continue
            pos = np.searchsorted(prev_keys, keys[todo])
            ok = pos < len(prev_keys)
            hit = np.zeros(len(todo), dtype=bool)
            hit[ok] = prev_keys[pos[ok]] == keys[todo[ok]]
            remap[todo[hit]] = prev_codes[pos[hit]]
        fresh = np.flatnonzero(remap < 0)
        remap[fresh] = next_code + np.arange(len(fresh), dtype=np.int64)
        next_code += len(fresh)
        remaps.append(remap)
        coded.append((keys, remap))
    return remaps, next_code
