"""Value indexes over data vectors: build, probe, (de)serialize."""

from .segment import (N_DATA_RECORDS, N_KEY_RECORDS, check_segment,
                      decode_segment, encode_segment, keys_from_blob,
                      keys_to_blob)
from .vindex import (ValueIndex, build_value_index,
                     build_value_index_from_codes, count_in_ranges,
                     merge_codings, select_keep, value_hash)

__all__ = [
    "N_DATA_RECORDS",
    "N_KEY_RECORDS",
    "ValueIndex",
    "build_value_index",
    "build_value_index_from_codes",
    "check_segment",
    "count_in_ranges",
    "decode_segment",
    "encode_segment",
    "keys_from_blob",
    "keys_to_blob",
    "merge_codings",
    "select_keep",
    "value_hash",
]
