"""XML substrate: node model, streaming parser, serializer, escaping."""

from .model import Attr, Element, Node, Text, node_label, preorder, tree_size, xpath_children
from .parser import iterparse, parse, tree_events
from .serializer import serialize

__all__ = [
    "Attr",
    "Element",
    "Node",
    "Text",
    "node_label",
    "preorder",
    "tree_size",
    "xpath_children",
    "iterparse",
    "parse",
    "tree_events",
    "serialize",
]
