"""In-memory XML node model.

Three node kinds, matching what the skeleton distinguishes:

* :class:`Element` — a labelled node with ordered attributes and children;
* :class:`Text` — character data (label ``#`` in the skeleton);
* :class:`Attr` — an attribute viewed as a pseudo-node (label ``@name``),
  materialized on demand so XPath can address attributes uniformly.
"""

from __future__ import annotations


class Node:
    __slots__ = ()


class Text(Node):
    __slots__ = ("value",)

    def __init__(self, value: str):
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Text({self.value!r})"

    def __eq__(self, other) -> bool:
        return isinstance(other, Text) and other.value == self.value

    def __hash__(self):  # structural eq => unhashable by default; keep id-hash
        return id(self)


class Attr(Node):
    """An attribute as a pseudo-node; its value is exposed as a text child
    so the label path of the value is ``(..., '@name', '#')`` exactly as in
    the vectorized representation."""

    __slots__ = ("name", "value", "_text")

    def __init__(self, name: str, value: str):
        self.name = name
        self.value = value
        self._text: Text | None = None

    @property
    def text_child(self) -> Text:
        if self._text is None:
            self._text = Text(self.value)
        return self._text

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Attr({self.name}={self.value!r})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Attr)
            and other.name == self.name
            and other.value == self.value
        )

    def __hash__(self):
        return id(self)


class Element(Node):
    __slots__ = ("label", "attrs", "children", "_attr_nodes")

    def __init__(self, label: str, attrs: dict[str, str] | None = None,
                 children: list[Node] | None = None):
        self.label = label
        self.attrs: dict[str, str] = dict(attrs) if attrs else {}
        self.children: list[Node] = list(children) if children else []
        self._attr_nodes: list[Attr] | None = None

    def append(self, child: Node) -> None:
        self.children.append(child)

    def attr_nodes(self) -> list[Attr]:
        """Attributes as pseudo-nodes with stable identity (for node sets)."""
        if self._attr_nodes is None or len(self._attr_nodes) != len(self.attrs):
            self._attr_nodes = [Attr(k, v) for k, v in self.attrs.items()]
        return self._attr_nodes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Element({self.label!r}, {len(self.children)} children)"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Element)
            and other.label == self.label
            and other.attrs == self.attrs
            and other.children == self.children
        )

    def __hash__(self):
        return id(self)


def node_label(n: Node) -> str:
    """The skeleton label of a node: element label, ``@name``, or ``#``."""
    if isinstance(n, Element):
        return n.label
    if isinstance(n, Attr):
        return "@" + n.name
    return "#"


def xpath_children(n: Node) -> list[Node]:
    """Children as XPath sees them: attributes first, then content; an
    attribute exposes its value as a single text child."""
    if isinstance(n, Element):
        return [*n.attr_nodes(), *n.children]
    if isinstance(n, Attr):
        return [n.text_child]
    return []


def preorder(n: Node):
    """Document-order traversal including attribute pseudo-nodes."""
    stack = [n]
    while stack:
        cur = stack.pop()
        yield cur
        stack.extend(reversed(xpath_children(cur)))


def tree_size(n: Node) -> int:
    """Number of nodes (elements + texts + attrs + attr texts)."""
    return sum(1 for _ in preorder(n))
