"""XML character escaping / entity resolution (no external XML library)."""

from __future__ import annotations

from ..errors import ParseError

_BUILTIN = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}


def escape_text(s: str) -> str:
    """Escape character data for element content."""
    return s.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attr(s: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    return (
        s.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


_HEX_DIGITS = set("0123456789abcdefABCDEF")
_DEC_DIGITS = set("0123456789")


def _char_ref(name: str, pos: int) -> str:
    """Resolve a numeric character reference ``#...`` / ``#x...``; any
    malformed or out-of-range reference is a :class:`ParseError` at the
    ``&`` position — never a raw ``ValueError`` out of ``int``/``chr``."""
    if name.startswith("#x") or name.startswith("#X"):
        digits, base, allowed = name[2:], 16, _HEX_DIGITS
    else:
        digits, base, allowed = name[1:], 10, _DEC_DIGITS
    if not digits or not all(c in allowed for c in digits):
        raise ParseError(f"malformed character reference &{name};", pos)
    code = int(digits, base)
    if code > 0x10FFFF:
        raise ParseError(
            f"character reference &{name}; out of range (> U+10FFFF)", pos)
    return chr(code)


def unescape(s: str) -> str:
    """Resolve the five builtin entities and numeric character references."""
    if "&" not in s:
        return s
    out: list[str] = []
    i, n = 0, len(s)
    while i < n:
        amp = s.find("&", i)
        if amp < 0:
            out.append(s[i:])
            break
        out.append(s[i:amp])
        semi = s.find(";", amp + 1)
        if semi < 0:
            raise ParseError("unterminated entity reference", amp)
        name = s[amp + 1 : semi]
        if name.startswith("#"):
            out.append(_char_ref(name, amp))
        elif name in _BUILTIN:
            out.append(_BUILTIN[name])
        else:
            raise ParseError(f"unknown entity &{name};", amp)
        i = semi + 1
    return "".join(out)
