"""XML character escaping / entity resolution (no external XML library)."""

from __future__ import annotations

from ..errors import ParseError

_BUILTIN = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}


def escape_text(s: str) -> str:
    """Escape character data for element content."""
    return s.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attr(s: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    return (
        s.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def unescape(s: str) -> str:
    """Resolve the five builtin entities and numeric character references."""
    if "&" not in s:
        return s
    out: list[str] = []
    i, n = 0, len(s)
    while i < n:
        amp = s.find("&", i)
        if amp < 0:
            out.append(s[i:])
            break
        out.append(s[i:amp])
        semi = s.find(";", amp + 1)
        if semi < 0:
            raise ParseError("unterminated entity reference", amp)
        name = s[amp + 1 : semi]
        if name.startswith("#x") or name.startswith("#X"):
            out.append(chr(int(name[2:], 16)))
        elif name.startswith("#"):
            out.append(chr(int(name[1:])))
        elif name in _BUILTIN:
            out.append(_BUILTIN[name])
        else:
            raise ParseError(f"unknown entity &{name};", amp)
        i = semi + 1
    return "".join(out)
