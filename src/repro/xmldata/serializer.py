"""Serialize a node tree back to XML text."""

from __future__ import annotations

from .escape import escape_attr, escape_text
from .model import Element, Node, Text


def serialize(node: Node) -> str:
    """Exact (non-pretty) serialization; ``parse(serialize(t)) == t``."""
    out: list[str] = []
    _write(node, out)
    return "".join(out)


def _write(node: Node, out: list[str]) -> None:
    stack: list[object] = [node]
    while stack:
        cur = stack.pop()
        if isinstance(cur, str):  # a pending end tag
            out.append(cur)
            continue
        if isinstance(cur, Text):
            out.append(escape_text(cur.value))
            continue
        assert isinstance(cur, Element)
        out.append(f"<{cur.label}")
        for name, value in cur.attrs.items():
            out.append(f' {name}="{escape_attr(value)}"')
        if not cur.children:
            out.append("/>")
            continue
        out.append(">")
        stack.append(f"</{cur.label}>")
        for child in reversed(cur.children):
            stack.append(child)
