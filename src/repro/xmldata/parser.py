"""A from-scratch streaming XML parser (no ``xml.etree``).

:func:`iterparse` yields SAX-like events — ``("start", label, attrs)``,
``("text", value)``, ``("end", label)`` — scanning the input once; the
vectorizer consumes the event stream directly so a document is vectorized
without ever building the node tree (Prop 2.1's linear pass).
:func:`parse` assembles the events into a :class:`~repro.xmldata.model.Element`
tree for the naive baseline.

Supported: elements, attributes, character data, CDATA sections, comments,
processing instructions, an XML declaration and a (non-validated) DOCTYPE.
Namespaces are not interpreted — prefixed names are plain labels.
"""

from __future__ import annotations

from ..errors import ParseError
from .escape import unescape
from .model import Element, Text

_NAME_START = set("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz_:")
_NAME_CHARS = _NAME_START | set("0123456789-.")

Event = tuple  # ("start", label, list[(name, value)]) | ("text", str) | ("end", label)


def _scan_name(text: str, i: int) -> tuple[str, int]:
    if i >= len(text) or text[i] not in _NAME_START:
        raise ParseError("expected a name", i)
    j = i + 1
    n = len(text)
    while j < n and text[j] in _NAME_CHARS:
        j += 1
    return text[i:j], j


def _skip_ws(text: str, i: int) -> int:
    n = len(text)
    while i < n and text[i] in " \t\r\n":
        i += 1
    return i


def iterparse(text: str):
    """Yield parse events for the single root element of ``text``."""
    i, n = 0, len(text)
    open_tags: list[str] = []
    seen_root = False
    pending_text: list[str] = []

    def flush_text():
        if pending_text:
            value = "".join(pending_text)
            pending_text.clear()
            if open_tags:
                yield ("text", value)
            elif value.strip():
                raise ParseError("character data outside the root element")

    while i < n:
        lt = text.find("<", i)
        if lt < 0:
            if open_tags:
                raise ParseError("unexpected end of input inside an element", i)
            if text[i:].strip():
                raise ParseError("character data outside the root element", i)
            break
        if lt > i:
            chunk = text[i:lt]
            if open_tags:
                pending_text.append(unescape(chunk))
            elif chunk.strip():
                raise ParseError("character data outside the root element", i)
        i = lt
        if text.startswith("<!--", i):
            end = text.find("-->", i + 4)
            if end < 0:
                raise ParseError("unterminated comment", i)
            i = end + 3
        elif text.startswith("<![CDATA[", i):
            if not open_tags:
                raise ParseError("CDATA outside the root element", i)
            end = text.find("]]>", i + 9)
            if end < 0:
                raise ParseError("unterminated CDATA section", i)
            pending_text.append(text[i + 9 : end])
            i = end + 3
        elif text.startswith("<?", i):
            end = text.find("?>", i + 2)
            if end < 0:
                raise ParseError("unterminated processing instruction", i)
            i = end + 2
        elif text.startswith("<!DOCTYPE", i):
            # Skip to the matching '>', allowing one [...] internal subset.
            j = i + 9
            bracket = text.find("[", j)
            gt = text.find(">", j)
            if bracket != -1 and bracket < gt:
                close = text.find("]", bracket)
                if close < 0:
                    raise ParseError("unterminated DOCTYPE internal subset", i)
                gt = text.find(">", close)
            if gt < 0:
                raise ParseError("unterminated DOCTYPE", i)
            i = gt + 1
        elif text.startswith("</", i):
            yield from flush_text()
            label, j = _scan_name(text, i + 2)
            j = _skip_ws(text, j)
            if j >= n or text[j] != ">":
                raise ParseError(f"malformed end tag </{label}", i)
            if not open_tags:
                raise ParseError(f"unmatched end tag </{label}>", i)
            expected = open_tags.pop()
            if label != expected:
                raise ParseError(
                    f"mismatched end tag </{label}>, expected </{expected}>", i)
            yield ("end", label)
            i = j + 1
        else:
            if not open_tags and seen_root:
                raise ParseError("multiple root elements", i)
            yield from flush_text()
            label, j = _scan_name(text, i + 1)
            attrs: list[tuple[str, str]] = []
            while True:
                j = _skip_ws(text, j)
                if j >= n:
                    raise ParseError("unexpected end of input in start tag", i)
                c = text[j]
                if c == ">":
                    yield ("start", label, attrs)
                    open_tags.append(label)
                    seen_root = True
                    j += 1
                    break
                if c == "/":
                    if not text.startswith("/>", j):
                        raise ParseError("malformed empty-element tag", j)
                    yield ("start", label, attrs)
                    yield ("end", label)
                    seen_root = True
                    j += 2
                    break
                name, j = _scan_name(text, j)
                j = _skip_ws(text, j)
                if j >= n or text[j] != "=":
                    raise ParseError(f"attribute {name} missing '='", j)
                j = _skip_ws(text, j + 1)
                if j >= n or text[j] not in "\"'":
                    raise ParseError(f"attribute {name} value must be quoted", j)
                quote = text[j]
                endq = text.find(quote, j + 1)
                if endq < 0:
                    raise ParseError(f"unterminated value for attribute {name}", j)
                attrs.append((name, unescape(text[j + 1 : endq])))
                j = endq + 1
            i = j
    if open_tags:
        raise ParseError(f"unexpected end of input: unclosed <{open_tags[-1]}>")
    if not seen_root:
        raise ParseError("no root element found")


def parse(text: str) -> Element:
    """Parse ``text`` into an :class:`Element` tree (merging adjacent text)."""
    root: Element | None = None
    stack: list[Element] = []
    for ev in iterparse(text):
        kind = ev[0]
        if kind == "start":
            elem = Element(ev[1], dict(ev[2]))
            if stack:
                stack[-1].append(elem)
            elif root is None:
                root = elem
            stack.append(elem)
        elif kind == "text":
            top = stack[-1]
            if top.children and isinstance(top.children[-1], Text):
                top.children[-1].value += ev[1]
            else:
                top.append(Text(ev[1]))
        else:  # end
            stack.pop()
    assert root is not None
    return root


def tree_events(root: Element):
    """Re-emit the event stream of an existing tree (for re-vectorization)."""
    stack: list[object] = [("node", root)]
    while stack:
        kind, payload = stack.pop()
        if kind == "end":
            yield ("end", payload)
            continue
        node = payload
        if isinstance(node, Text):
            yield ("text", node.value)
            continue
        yield ("start", node.label, list(node.attrs.items()))
        stack.append(("end", node.label))
        for child in reversed(node.children):
            stack.append(("node", child))
