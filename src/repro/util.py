"""Small shared helpers: numeric text parsing, timing, table formatting."""

from __future__ import annotations

import time


def parse_float(s: str) -> float:
    """The engine's *single* definition of "numeric text" for the ordering
    operators.

    Python's ``float()`` accepts underscore digit separators (``"1_0"`` →
    10.0) while numpy's column-wise ``astype(float)`` rejects them on some
    versions and accepts them on others — so a value's numeric
    interpretation could depend on which code path (and which numpy) parsed
    it, i.e. on its *sibling* values.  Every comparison path goes through
    this one parse instead: underscore literals are rejected outright.

    Raises ``ValueError`` for non-numeric text.
    """
    if "_" in s:
        raise ValueError(f"underscore digit separators rejected: {s!r}")
    return float(s)


class Timer:
    """Context manager measuring wall-clock seconds into ``.elapsed``."""

    def __init__(self) -> None:
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._t0


def best_of(fn, repeat: int = 3) -> float:
    """Run ``fn`` ``repeat`` times, return the best (minimum) wall time."""
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def fmt_table(headers: list[str], rows: list[list[str]]) -> str:
    """Render a plain-text table with right-aligned columns."""
    cols = [headers] + rows
    widths = [max(len(str(r[i])) for r in cols) for i in range(len(headers))]
    lines = []
    for r in cols:
        lines.append("  ".join(str(v).rjust(w) for v, w in zip(r, widths)))
        if r is headers:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def human_count(n: int) -> str:
    if n >= 1_000_000:
        return f"{n / 1_000_000:.1f}M"
    if n >= 1_000:
        return f"{n / 1_000:.1f}k"
    return str(n)
