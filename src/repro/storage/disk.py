"""Page files: fixed-size pages in one OS file, plus the format header.

All physical I/O of the storage layer happens here, one whole page per
read/write, and only ever through the buffer pool — the pool is where
reads and writes are counted.  The file starts with a 32-byte header::

    0   8 bytes  magic  b"RVXPG1\\x00\\x00"
    8   u16      format version
    10  u32      page size
    14  u64      page count
    22  i64      meta page id (head of the document catalog heap, -1 none)
    30  2 bytes  reserved

Page ``pid`` lives at byte offset ``32 + pid * page_size``.  Allocation
just extends the logical page count; a page that was never written back
reads as zeros (the file may be sparse), so allocating is free of I/O.
"""

from __future__ import annotations

import os
import struct

from ..errors import StorageError
from .pages import DEFAULT_PAGE_SIZE, check_page_size

MAGIC = b"RVXPG1\x00\x00"
FORMAT_VERSION = 1
FILE_HEADER = 32

_FHDR = struct.Struct("<HIQq")


class PageFile:
    """A file of fixed-size pages.  Use :meth:`create` / :meth:`open`."""

    def __init__(self, path: str, fobj, page_size: int, n_pages: int,
                 meta_page: int):
        self.path = path
        self._f = fobj
        self.page_size = page_size
        self.n_pages = n_pages
        self.meta_page = meta_page

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(cls, path: str, page_size: int = DEFAULT_PAGE_SIZE) -> "PageFile":
        check_page_size(page_size)
        f = open(path, "w+b")
        pf = cls(path, f, page_size, 0, -1)
        pf._write_header()
        return pf

    @classmethod
    def open(cls, path: str) -> "PageFile":
        f = open(path, "r+b")
        header = f.read(FILE_HEADER)
        if len(header) < FILE_HEADER or not header.startswith(MAGIC):
            f.close()
            raise StorageError(f"{path}: not a vdoc page file (bad magic)")
        version, page_size, n_pages, meta = _FHDR.unpack_from(header, len(MAGIC))
        if version != FORMAT_VERSION:
            f.close()
            raise StorageError(f"{path}: unsupported format version {version}")
        check_page_size(page_size)
        return cls(path, f, page_size, n_pages, meta)

    @staticmethod
    def is_page_file(path: str) -> bool:
        """Cheap sniff used by the CLI to dispatch XML vs. vdoc inputs."""
        try:
            with open(path, "rb") as f:
                return f.read(len(MAGIC)) == MAGIC
        except OSError:
            return False

    def _write_header(self) -> None:
        self._f.seek(0)
        self._f.write(MAGIC + _FHDR.pack(FORMAT_VERSION, self.page_size,
                                         self.n_pages, self.meta_page))
        pad = FILE_HEADER - len(MAGIC) - _FHDR.size
        self._f.write(b"\x00" * pad)

    def set_meta(self, pid: int) -> None:
        self.meta_page = pid
        self._write_header()

    def flush(self) -> None:
        self._write_header()
        self._f.flush()

    def close(self) -> None:
        if self._f is not None:
            self.flush()
            self._f.close()
            self._f = None

    def __enter__(self) -> "PageFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- page I/O (buffer pool only) ---------------------------------------

    def allocate(self) -> int:
        """Extend the file by one (initially all-zero) page; no I/O."""
        pid = self.n_pages
        self.n_pages += 1
        return pid

    def read_page(self, pid: int) -> bytes:
        if not 0 <= pid < self.n_pages:
            raise StorageError(f"page {pid} out of range (file has "
                               f"{self.n_pages})")
        self._f.seek(FILE_HEADER + pid * self.page_size)
        data = self._f.read(self.page_size)
        if len(data) < self.page_size:  # allocated but never written back
            data = data + b"\x00" * (self.page_size - len(data))
        return data

    def write_page(self, pid: int, buf: bytes) -> None:
        if not 0 <= pid < self.n_pages:
            raise StorageError(f"page {pid} out of range (file has "
                               f"{self.n_pages})")
        if len(buf) != self.page_size:
            raise StorageError("page buffer size mismatch")
        self._f.seek(FILE_HEADER + pid * self.page_size)
        self._f.write(buf)

    def size_bytes(self) -> int:
        """Current on-disk size (header + written pages)."""
        return os.fstat(self._f.fileno()).st_size
