"""Page files: fixed-size pages in one OS file, plus the format header.

All physical I/O of the storage layer happens here, one whole page per
read/write, and only ever through the buffer pool — the pool is where
reads and writes are counted.  Format v2 starts with a 40-byte header::

    0   8 bytes  magic  b"RVXPG1\\x00\\x00"
    8   u16      format version (2)
    10  u32      page size
    14  u64      page count
    22  i64      meta page id (head of the document catalog heap, -1 none)
    30  u32      header crc (over all 40 bytes with this field zeroed)
    34  6 bytes  reserved (zero, covered by the header crc)

Page ``pid`` lives at byte offset ``40 + pid * page_size``.  Allocation
just extends the logical page count; a page that was never written back
reads as zeros (the file may be sparse) — but :meth:`flush` pads the file
to its full declared length with ``ftruncate``, so a complete file is
always exactly ``FILE_HEADER + n_pages * page_size`` bytes and
:meth:`open` rejects any other size as truncation/corruption.

Integrity (format v2): every page write-back stamps the page checksum
(:func:`repro.storage.pages.stamp_crc`) and every physical read verifies
it — an all-zero page is accepted as "allocated, never written".  Version
1 files (no checksums) are rejected with a clear error telling the user
to re-save.  All file objects are routed through
:func:`repro.storage.faults.wrap_file` so the fault-injection harness can
tear, flip, or crash any individual I/O deterministically.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib

from ..errors import CorruptDataError, StorageError
from . import faults
from .pages import (
    DEFAULT_PAGE_SIZE,
    check_page_size,
    page_crc,
    stamp_crc,
    stored_crc,
)

MAGIC = b"RVXPG1\x00\x00"
FORMAT_VERSION = 2
FILE_HEADER = 40

#: (version, page_size, n_pages, meta_page, header_crc) after the magic.
_FHDR = struct.Struct("<HIQqI")
_VERSION_OFF = len(MAGIC)
_HCRC_OFF = len(MAGIC) + struct.calcsize("<HIQq")


def _header_bytes(page_size: int, n_pages: int, meta_page: int) -> bytes:
    body = bytearray(FILE_HEADER)
    body[:len(MAGIC)] = MAGIC
    _FHDR.pack_into(body, len(MAGIC), FORMAT_VERSION, page_size, n_pages,
                    meta_page, 0)
    crc = zlib.crc32(bytes(body)) & 0xFFFFFFFF
    struct.pack_into("<I", body, _HCRC_OFF, crc)
    return bytes(body)


def _check_header(header: bytes, path: str) -> tuple[int, int, int]:
    """Validate a raw 40-byte header; returns (page_size, n_pages, meta)."""
    if len(header) < _VERSION_OFF + 2 or not header.startswith(MAGIC):
        raise StorageError(f"{path}: not a vdoc page file (bad magic)")
    version = struct.unpack_from("<H", header, _VERSION_OFF)[0]
    if version != FORMAT_VERSION:
        hint = (" (format v1 predates page checksums; re-save the document"
                " to upgrade)" if version == 1 else "")
        raise StorageError(
            f"{path}: unsupported format version {version}{hint}")
    if len(header) < FILE_HEADER:
        raise CorruptDataError(f"{path}: file shorter than the "
                               f"{FILE_HEADER}-byte header")
    _, page_size, n_pages, meta, crc = _FHDR.unpack_from(header, len(MAGIC))
    zeroed = bytearray(header[:FILE_HEADER])
    struct.pack_into("<I", zeroed, _HCRC_OFF, 0)
    actual = zlib.crc32(bytes(zeroed)) & 0xFFFFFFFF
    if crc != actual:
        raise CorruptDataError(
            f"{path}: file header checksum mismatch "
            f"(stored {crc:#010x}, computed {actual:#010x})")
    check_page_size(page_size)
    return page_size, n_pages, meta


class PageFile:
    """A file of fixed-size pages.  Use :meth:`create` / :meth:`open`."""

    def __init__(self, path: str, fobj, page_size: int, n_pages: int,
                 meta_page: int):
        self.path = path
        self._f = fobj
        self.page_size = page_size
        self.n_pages = n_pages
        self.meta_page = meta_page
        #: header (or declared length) changed since the last flush; a
        #: pure-read session never writes a byte back to the file.
        self._hdr_dirty = False
        #: serializes seek+read/write pairs on the shared descriptor —
        #: concurrent fault-ins of *different* pages (the buffer pool does
        #: its physical I/O outside the pool lock) must not race on the
        #: file position.
        self._io_lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(cls, path: str, page_size: int = DEFAULT_PAGE_SIZE) -> "PageFile":
        check_page_size(page_size)
        f = faults.wrap_file(open(path, "w+b"))
        pf = cls(path, f, page_size, 0, -1)
        pf._write_header()
        return pf

    @classmethod
    def open(cls, path: str) -> "PageFile":
        f = faults.wrap_file(open(path, "r+b"))
        try:
            header = f.read(FILE_HEADER)
            page_size, n_pages, meta = _check_header(header, path)
            expected = FILE_HEADER + n_pages * page_size
            actual = os.fstat(f.fileno()).st_size
            if actual != expected:
                raise CorruptDataError(
                    f"{path}: file is {actual} bytes but the header "
                    f"declares {n_pages} pages of {page_size} "
                    f"({expected} bytes) — truncated or corrupt header")
        except BaseException:
            f.close()
            raise
        return cls(path, f, page_size, n_pages, meta)

    @staticmethod
    def is_page_file(path: str) -> bool:
        """Cheap sniff used by the CLI to dispatch XML vs. vdoc inputs."""
        try:
            with open(path, "rb") as f:
                return f.read(len(MAGIC)) == MAGIC
        except OSError:
            return False

    def _write_header(self) -> None:
        self._f.seek(0)
        self._f.write(_header_bytes(self.page_size, self.n_pages,
                                    self.meta_page))

    def set_meta(self, pid: int) -> None:
        self.meta_page = pid
        self._hdr_dirty = True

    def flush(self) -> None:
        if not self._hdr_dirty:
            return
        self._write_header()
        # Pad the file to its declared length so open() can tell a fully
        # written file from a truncated one.  The tail stays sparse on
        # filesystems that support holes, so this is metadata-only.
        full = FILE_HEADER + self.n_pages * self.page_size
        if os.fstat(self._f.fileno()).st_size < full:
            self._f.truncate(full)
        self._f.flush()
        self._hdr_dirty = False

    def fsync(self) -> None:
        """Force file contents to stable storage (durability barrier)."""
        faults.fsync(self._f)

    def close(self) -> None:
        if self._f is not None:
            self.flush()
            self._f.close()
            self._f = None

    def sync_close(self) -> None:
        """Flush, fsync and close — nothing is written after the sync."""
        if self._f is not None:
            self.flush()
            self.fsync()
            self._f.close()
            self._f = None

    def abort(self) -> None:
        """Close the descriptor without flushing (error/crash paths)."""
        if self._f is not None:
            try:
                self._f.close()
            except OSError:
                pass
            self._f = None

    def __enter__(self) -> "PageFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- page I/O (buffer pool only) ---------------------------------------

    def allocate(self) -> int:
        """Extend the file by one (initially all-zero) page; no I/O."""
        pid = self.n_pages
        self.n_pages += 1
        self._hdr_dirty = True
        return pid

    def read_page(self, pid: int, verify: bool = True) -> bytes:
        if not 0 <= pid < self.n_pages:
            raise StorageError(f"page {pid} out of range (file has "
                               f"{self.n_pages})")
        with self._io_lock:
            self._f.seek(FILE_HEADER + pid * self.page_size)
            data = self._f.read(self.page_size)
        if len(data) < self.page_size:  # allocated but never written back
            data = data + b"\x00" * (self.page_size - len(data))
        if verify:
            self.verify_page(pid, data)
        return data

    def verify_page(self, pid: int, data: bytes) -> None:
        """Checksum one page's bytes; an all-zero page is a legal
        allocated-but-never-written page."""
        stored = stored_crc(data)
        actual = page_crc(data)
        if stored != actual and data.count(0) != len(data):
            raise CorruptDataError(
                f"page checksum mismatch (stored {stored:#010x}, "
                f"computed {actual:#010x})", page=pid)

    def write_page(self, pid: int, buf) -> None:
        if not 0 <= pid < self.n_pages:
            raise StorageError(f"page {pid} out of range (file has "
                               f"{self.n_pages})")
        if len(buf) != self.page_size:
            raise StorageError("page buffer size mismatch")
        if isinstance(buf, bytearray):
            stamp_crc(buf)           # pool frame: stamp in place
            data = bytes(buf)
        else:
            data = bytearray(buf)
            stamp_crc(data)
            data = bytes(data)
        with self._io_lock:
            self._f.seek(FILE_HEADER + pid * self.page_size)
            self._f.write(data)

    def size_bytes(self) -> int:
        """Current on-disk size (header + written pages)."""
        return os.fstat(self._f.fileno()).st_size
