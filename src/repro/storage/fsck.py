"""``verify_vdoc`` — offline integrity checker for .vdoc page files.

The fsck of the storage layer: given a path, it collects *findings*
instead of raising, so one run reports every problem it can reach with a
page/slot location for each.  Checks, in dependency order:

1. file header: magic, format version, page size, header checksum, and
   the declared page count against the actual file size;
2. checksum sweep: every page either carries a valid checksum or is
   entirely zero (allocated but never written);
3. page structure: slot directory within the page, ``free_ptr`` bounds,
   every slot entry inside the record area, fragments contiguous and
   consistent with ``free_ptr``;
4. catalog: the meta heap chain walks without cycles, decodes as JSON
   and passes the same strict schema the open path enforces;
5. skeleton: every node record decodes, child runs stay inside the
   already-interned prefix, hash-cons replay reproduces the ids, and the
   node count matches the catalog;
6. vectors: every chain walks acyclically to exactly its cataloged
   length and holds exactly the record count its storage codec implies
   (``n`` UTF-8 records for identity, the fixed header/blob layout for
   ``dict``/``delta``/``zlib`` — format v4);
7. index segments (format v3): both heap chains of every persisted value
   index walk to their cataloged lengths, the segment decodes under
   :func:`repro.index.decode_segment`'s full structural validation
   (sorted keys, CSR postings, row permutation, power-of-two hash
   directory, ascending NaN-free numeric sub-index) and passes
   :func:`repro.index.check_segment`'s semantic checks (hash placement,
   numeric sub-index vs ``parse_float``), with counts matched against
   the catalog entry;
8. cross-checks: no page is claimed by two chains.

``deep`` additionally decodes every vector chain through its codec —
exercising the full :meth:`~repro.storage.codecs.Codec.decode` trust
boundary (dictionary key permutations and code bounds, delta widths,
declared zlib payload sizes, UTF-8 of every value) — cross-checks the
cataloged logical/physical byte counts against the chain, verifies each
persisted index is not **stale** against the decoded column (its
postings place every row under exactly its value's code), and reports
pages belonging to no chain (dead space a correct writer never
produces) — a strict superset of the shallow findings.

Everything is read-only: the target file is opened ``rb`` and never
written, so fsck is safe on a file you suspect is damaged.  All chain
walks use the corruption-hardened :class:`HeapFile` guards, so fsck can
neither hang nor crash on any input — it just reports.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from ..core.skeleton import NodeStore
from ..errors import CorruptDataError, StorageError
from ..index import N_DATA_RECORDS, N_KEY_RECORDS, check_segment, \
    decode_segment
from . import disk
from .buffer import BufferPool
from .codecs import CODECS, utf8_bytes
from .disk import FILE_HEADER, PageFile
from .heap import HeapFile
from .pages import PAGE_HEADER, SlottedPage, page_crc, stored_crc
from .vdocfile import _check_catalog, _decode_node


@dataclass
class Finding:
    """One verified defect, with its location when known."""

    code: str                 # header | size | page-crc | page-structure |
    #                           slot | chain | catalog | skeleton | vector |
    #                           value | index | cross | orphan
    message: str
    page: int | None = None
    slot: int | None = None

    def __str__(self) -> str:
        where = []
        if self.page is not None:
            where.append(f"page {self.page}")
        if self.slot is not None:
            where.append(f"slot {self.slot}")
        loc = f" [{', '.join(where)}]" if where else ""
        return f"{self.code}{loc}: {self.message}"


class _Check:
    def __init__(self) -> None:
        self.findings: list[Finding] = []

    def add(self, code: str, message: str, page: int | None = None,
            slot: int | None = None) -> None:
        self.findings.append(Finding(code, message, page, slot))


def _check_page_structure(out: _Check, page: SlottedPage, pid: int) -> None:
    """Slot directory, free_ptr and fragment layout of one page."""
    try:
        page.check_header()
    except StorageError as exc:
        out.add("page-structure", str(exc), page=pid)
        return
    expected = PAGE_HEADER
    for slot in range(page.n_slots):
        try:
            off, length, _ = page.slot_entry(slot)
        except StorageError as exc:
            out.add("slot", str(exc), page=pid, slot=slot)
            return
        if off < expected:
            out.add("slot", f"fragment at {off} overlaps the previous "
                            f"fragment ending at {expected}",
                    page=pid, slot=slot)
            return
        if off > expected:
            out.add("slot", f"gap before fragment at {off} (previous "
                            f"fragment ended at {expected})",
                    page=pid, slot=slot)
            return
        expected = off + length
    if expected != page.free_ptr:
        out.add("page-structure",
                f"free_ptr {page.free_ptr} does not match the end of the "
                f"last fragment ({expected})", page=pid)


def _walk_chain(out: _Check, code: str, what: str, heap: HeapFile,
                expected_pages: int | None, expected_n: int | None,
                count_records: bool = True,
                records_sink: list | None = None) -> list[int] | None:
    """Walk one heap chain, record findings; returns its page ids or
    None when the walk itself failed.  ``records_sink`` collects the raw
    records for the caller (deep codec verification)."""
    try:
        pages = heap.pages()
    except StorageError as exc:
        out.add("chain", f"{what}: {exc}",
                page=getattr(exc, "page", None))
        return None
    if expected_pages is not None and len(pages) != expected_pages:
        out.add("chain", f"{what}: chain is {len(pages)} pages, catalog "
                         f"says {expected_pages}", page=pages[-1])
        return pages
    if not count_records:
        return pages
    count = 0
    try:
        for rec in heap.records():
            count += 1
            if records_sink is not None:
                records_sink.append(rec)
    except StorageError as exc:
        out.add(code, f"{what}: {exc}", page=getattr(exc, "page", None),
                slot=getattr(exc, "slot", None))
        return pages
    if expected_n is not None and count != expected_n:
        out.add(code, f"{what}: {count} records on disk, catalog says "
                      f"{expected_n}", page=pages[0] if pages else None)
    return pages


def verify_vdoc(path: str, deep: bool = False) -> list[Finding]:
    """Verify the .vdoc at ``path``; returns all findings (empty = clean)."""
    out = _Check()
    try:
        f = open(path, "rb")
    except OSError as exc:
        out.add("header", str(exc))
        return out.findings
    try:
        header = f.read(FILE_HEADER)
        try:
            page_size, n_pages, meta_page = disk._check_header(header, path)
        except StorageError as exc:
            out.add("header", str(exc))
            return out.findings

        actual = os.fstat(f.fileno()).st_size
        expected = FILE_HEADER + n_pages * page_size
        if actual != expected:
            out.add("size", f"file is {actual} bytes but the header "
                            f"declares {n_pages} pages of {page_size} "
                            f"({expected} bytes)")

        # read-only PageFile view (bypasses open()'s fatal size check so
        # the sweep can still cover whatever pages are present)
        pf = PageFile(path, f, page_size, n_pages, meta_page)
        pool = BufferPool(pf, capacity=None, verify=False)

        # -- checksum + structure sweep over every page --------------------
        zero_pages: set[int] = set()
        for pid in range(n_pages):
            try:
                data = pf.read_page(pid, verify=False)
            except StorageError as exc:
                out.add("page-crc", str(exc), page=pid)
                continue
            if data.count(0) == len(data):
                zero_pages.add(pid)  # allocated, never written
                continue
            stored, computed = stored_crc(data), page_crc(data)
            if stored != computed:
                out.add("page-crc",
                        f"checksum mismatch (stored {stored:#010x}, "
                        f"computed {computed:#010x})", page=pid)
                continue  # structure of a corrupt page is noise
            _check_page_structure(
                out, SlottedPage(bytearray(data), page_size, pid), pid)

        # -- catalog -------------------------------------------------------
        if meta_page < 0:
            out.add("catalog", "page file has no vdoc catalog")
            return out.findings
        if meta_page >= n_pages:
            out.add("catalog", f"catalog head page {meta_page} outside the "
                               f"file ({n_pages} pages)")
            return out.findings
        claimed: dict[int, str] = {}
        meta_heap = HeapFile(pool, meta_page)
        try:
            meta_records = list(meta_heap.records())
        except StorageError as exc:
            out.add("catalog", str(exc), page=getattr(exc, "page", None))
            return out.findings
        for pid in meta_heap.pages():
            claimed[pid] = "catalog"
        if not meta_records:
            out.add("catalog", "empty vdoc catalog", page=meta_page)
            return out.findings
        try:
            meta = json.loads(meta_records[0].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            out.add("catalog", f"catalog is not valid JSON ({exc})",
                    page=meta_page)
            return out.findings
        try:
            _check_catalog(meta, path, n_pages)  # rejects unknown formats
        except StorageError as exc:
            out.add("catalog", str(exc))
            return out.findings

        # -- skeleton ------------------------------------------------------
        skel = HeapFile(pool, meta["skeleton"]["head"],
                        n_pages=meta["skeleton"]["pages"])
        skel_pages = _walk_chain(out, "skeleton", "skeleton chain", skel,
                                 meta["skeleton"]["pages"], None,
                                 count_records=False)
        if skel_pages is not None:
            store = NodeStore()
            try:
                for nid, record in enumerate(skel.records()):
                    label, runs = _decode_node(record)
                    if nid == 0:
                        if label != "#" or runs:
                            out.add("skeleton",
                                    "node 0 is not the text marker")
                            break
                        continue
                    bad = [r for r in runs
                           if not 0 <= r[0] < nid or r[1] < 1]
                    if bad:
                        out.add("skeleton",
                                f"node {nid} has child run {bad[0]} outside "
                                f"the already-interned prefix")
                        break
                    if store.intern(label, runs) != nid:
                        out.add("skeleton", f"records out of interning "
                                            f"order at node {nid}")
                        break
                else:
                    if len(store) != meta["n_nodes"]:
                        out.add("skeleton",
                                f"catalog says {meta['n_nodes']} nodes, "
                                f"chain holds {len(store)}")
                    elif not 1 <= meta["root"] < len(store):
                        out.add("skeleton",
                                f"root id {meta['root']} outside the "
                                f"skeleton ({len(store)} nodes)")
            except StorageError as exc:
                out.add("skeleton", str(exc),
                        page=getattr(exc, "page", None),
                        slot=getattr(exc, "slot", None))
        if skel_pages:
            for pid in skel_pages:
                prev = claimed.setdefault(pid, "skeleton")
                if prev != "skeleton":
                    out.add("cross", f"page claimed by both {prev} and "
                                     f"the skeleton chain", page=pid)

        # -- vectors -------------------------------------------------------
        fmt = meta.get("format", 2)
        #: deep-decoded columns, reused by the index staleness check
        vcolumns: dict[tuple, object] = {}
        for entry in meta["vectors"]:
            name = "/".join(entry["path"])
            codec = CODECS[entry.get("codec", "identity")]
            heap = HeapFile(pool, entry["head"], n_pages=entry["pages"])
            sink: list | None = [] if deep else None
            pages = _walk_chain(out, "vector", f"vector {name}", heap,
                                entry["pages"],
                                codec.n_records(entry["n"]),
                                records_sink=sink)
            for pid in pages or ():
                prev = claimed.setdefault(pid, name)
                if prev != name:
                    out.add("cross", f"page claimed by both {prev} and "
                                     f"vector {name}", page=pid)
            if pages is None or sink is None:
                continue
            # deep: decode through the codec — the full trust boundary
            # (key permutations, code bounds, widths, declared payload
            # sizes, per-value UTF-8) — and cross-check the cataloged
            # byte counts against the chain
            lbytes = entry.get("lbytes") if fmt >= 4 else None
            if fmt >= 4:
                enc = sum(len(r) for r in sink)
                if enc != entry["pbytes"]:
                    out.add("value",
                            f"vector {name}: catalog says "
                            f"{entry['pbytes']} encoded bytes, chain "
                            f"holds {enc}", page=pages[0] if pages else None)
            try:
                state = codec.decode(tuple(entry["path"]), entry["n"],
                                     sink, lbytes)
                column = codec.column(state)
            except CorruptDataError as exc:
                out.add("value", str(exc),
                        page=pages[0] if pages else None)
                continue
            if lbytes is not None:
                logical = utf8_bytes([str(v) for v in column])
                if logical != lbytes:
                    out.add("value",
                            f"vector {name}: catalog says {lbytes} "
                            f"logical bytes, decoded column holds "
                            f"{logical}")
            vcolumns[tuple(entry["path"])] = column

        # -- index segments (format v3) ------------------------------------
        for entry in meta["vectors"]:
            ix = entry.get("index")
            if ix is None:
                continue
            name = "/".join(entry["path"])
            kheap = HeapFile(pool, ix["keys_head"],
                             n_pages=ix["keys_pages"])
            dheap = HeapFile(pool, ix["data_head"],
                             n_pages=ix["data_pages"])
            walked = True
            for what, heap, n_exp in (
                    (f"index keys of {name}", kheap, N_KEY_RECORDS),
                    (f"index data of {name}", dheap, N_DATA_RECORDS)):
                pages = _walk_chain(out, "index", what, heap, heap.n_pages,
                                    n_exp)
                if pages is None:
                    walked = False
                    continue
                for pid in pages:
                    prev = claimed.setdefault(pid, what)
                    if prev != what:
                        out.add("cross", f"page claimed by both {prev} "
                                         f"and {what}", page=pid)
            if not walked:
                continue
            try:
                keys = list(kheap.records())
                data = list(dheap.records())
            except StorageError:
                continue  # the walk above already reported it
            try:
                vi = decode_segment(tuple(entry["path"]), entry["n"],
                                    keys, data)
            except CorruptDataError as exc:
                out.add("index", str(exc), page=ix["keys_head"])
                continue
            if vi.distinct != ix["distinct"]:
                out.add("index",
                        f"vindex {name}: catalog says {ix['distinct']} "
                        f"distinct keys, segment holds {vi.distinct}")
            if vi.n_buckets != ix["buckets"]:
                out.add("index",
                        f"vindex {name}: catalog says {ix['buckets']} "
                        f"buckets, segment holds {vi.n_buckets}")
            # staleness against the codec-decoded column from the vector
            # sweep (absent when the chain itself failed to decode —
            # already reported there)
            column = vcolumns.get(tuple(entry["path"])) if deep else None
            for msg in check_segment(vi, column):
                out.add("index", f"vindex {name}: {msg}")

        # -- orphans (deep): pages no chain accounts for -------------------
        if deep:
            for pid in range(n_pages):
                if pid not in claimed and pid not in zero_pages:
                    out.add("orphan",
                            "written page belongs to no heap chain",
                            page=pid)
        return out.findings
    finally:
        f.close()
