"""Shore-like storage manager (ROADMAP `repro.storage`): slotted pages,
heap files, a clock-eviction buffer pool with strict pin accounting and
I/O statistics, and the paged on-disk vectorized-document format with
lazily materialized data vectors.

Format v2 adds an integrity and crash-safety subsystem: per-page
checksums stamped on every write-back and verified on every physical
read, an atomic durable ``save_vdoc`` (temp file + fsync + rename), a
deterministic fault-injection harness (:mod:`repro.storage.faults`) and
an offline verifier (:func:`verify_vdoc`, ``repro-xq check``).  The
headline property, fuzz-checked in the test suite: for any single
corruption of a valid .vdoc, every query either returns the exact
uncorrupted answer or raises :class:`~repro.errors.StorageError` — it
never hangs and never returns a wrong answer.

The engine's "each data vector is scanned at most once" invariant is
checked against this layer's *physical* page-read counts when a document
is disk-backed — the paper's §5 lazy-I/O claim, made falsifiable.
"""

from .buffer import BufferPool, IOStats
from .disk import FORMAT_VERSION, PageFile
from .faults import CrashInjected, Fault, FaultPlan
from .fsck import Finding, verify_vdoc
from .heap import HeapFile
from .pages import DEFAULT_PAGE_SIZE, MAX_PAGE_SIZE, MIN_PAGE_SIZE, SlottedPage
from .vdocfile import (
    VDOC_FORMAT,
    DiskVectorizedDocument,
    LazyVector,
    open_vdoc,
    save_vdoc,
)

__all__ = [
    "BufferPool",
    "IOStats",
    "PageFile",
    "FORMAT_VERSION",
    "HeapFile",
    "SlottedPage",
    "DEFAULT_PAGE_SIZE",
    "MIN_PAGE_SIZE",
    "MAX_PAGE_SIZE",
    "DiskVectorizedDocument",
    "LazyVector",
    "VDOC_FORMAT",
    "save_vdoc",
    "open_vdoc",
    "verify_vdoc",
    "Finding",
    "FaultPlan",
    "Fault",
    "CrashInjected",
]
