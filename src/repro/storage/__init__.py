"""Shore-like storage manager (ROADMAP `repro.storage`): slotted pages,
heap files, a clock-eviction buffer pool with strict pin accounting and
I/O statistics, and the paged on-disk vectorized-document format with
lazily materialized data vectors.

The engine's "each data vector is scanned at most once" invariant is
checked against this layer's *physical* page-read counts when a document
is disk-backed — the paper's §5 lazy-I/O claim, made falsifiable.
"""

from .buffer import BufferPool, IOStats
from .disk import PageFile
from .heap import HeapFile
from .pages import DEFAULT_PAGE_SIZE, MAX_PAGE_SIZE, MIN_PAGE_SIZE, SlottedPage
from .vdocfile import (
    DiskVectorizedDocument,
    LazyVector,
    open_vdoc,
    save_vdoc,
)

__all__ = [
    "BufferPool",
    "IOStats",
    "PageFile",
    "HeapFile",
    "SlottedPage",
    "DEFAULT_PAGE_SIZE",
    "MIN_PAGE_SIZE",
    "MAX_PAGE_SIZE",
    "DiskVectorizedDocument",
    "LazyVector",
    "save_vdoc",
    "open_vdoc",
]
