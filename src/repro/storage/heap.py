"""Heap files: ordered byte-string records over a chain of slotted pages.

A heap file is a singly linked chain of pages (``next_page`` links).
Records append at the tail and are read back in insertion order — exactly
the access pattern of a data vector (XMILL-style container: one heap per
column, values in document order).  A record may be split into consecutive
fragments when it crosses a page boundary; :meth:`records` stitches them
back transparently.

All page access goes through the owning :class:`BufferPool`; a scan pins
one page at a time and copies the fragments out before unpinning, so an
abandoned iterator can never leak a pin.

Chain walks are corruption-hardened: a ``next_page`` link that points
outside the file, revisits a page already on this walk (a cycle), or
extends the chain past its cataloged length raises
:class:`CorruptDataError` naming the offending page — a corrupt link can
make a walk *fail*, never *hang*.
"""

from __future__ import annotations

from typing import Iterator

from ..errors import CorruptDataError, StorageError
from .buffer import BufferPool
from .pages import MAX_FRAGMENT, SlottedPage


class HeapFile:
    __slots__ = ("pool", "head", "n_pages", "_tail")

    def __init__(self, pool: BufferPool, head: int, n_pages: int | None = None):
        self.pool = pool
        self.head = head
        #: chain length in pages; exact when created fresh or passed in from
        #: the catalog, measured lazily (one chain walk) otherwise.
        self.n_pages = n_pages
        self._tail = head

    @classmethod
    def create(cls, pool: BufferPool) -> "HeapFile":
        pid, buf = pool.new_page()
        SlottedPage.init(buf, pool.page_size, pid)
        pool.unpin(pid, dirty=True)
        heap = cls(pool, pid, n_pages=1)
        return heap

    # -- writing -----------------------------------------------------------

    def append(self, record: bytes) -> None:
        """Append one record at the tail, fragmenting across pages as
        needed (zero-length records are legal)."""
        pool = self.pool
        data = record
        while True:
            buf = pool.pin(self._tail)
            page = SlottedPage(buf, pool.page_size, self._tail)
            cap = page.free_capacity()
            if cap < (1 if data else 0):
                npid, nbuf = pool.new_page()
                SlottedPage.init(nbuf, pool.page_size, npid)
                page.next_page = npid
                pool.unpin(self._tail, dirty=True)
                pool.unpin(npid, dirty=True)
                self._tail = npid
                if self.n_pages is not None:
                    self.n_pages += 1
                continue
            take = min(len(data), cap, MAX_FRAGMENT)
            continued = take < len(data)
            page.append_fragment(data[:take], continued)
            pool.unpin(self._tail, dirty=True)
            if not continued:
                return
            data = data[take:]

    # -- reading -----------------------------------------------------------

    def _check_link(self, pid: int, nxt: int, visited: set[int]) -> None:
        """Validate one chain link before following it."""
        if nxt == -1:
            return
        if not 0 <= nxt < self.pool.file.n_pages:
            raise CorruptDataError(
                f"heap chain link to page {nxt} outside the file "
                f"({self.pool.file.n_pages} pages)", page=pid)
        if nxt in visited:
            raise CorruptDataError(
                f"heap chain cycle: link back to already-visited page {nxt}",
                page=pid)
        if self.n_pages is not None and len(visited) >= self.n_pages:
            raise CorruptDataError(
                f"heap chain longer than its cataloged {self.n_pages} pages",
                page=pid)

    def pages(self) -> list[int]:
        """Page ids of the chain, head to tail (walks through the pool)."""
        out: list[int] = []
        visited: set[int] = set()
        pid = self.head
        while pid != -1:
            out.append(pid)
            visited.add(pid)
            with self.pool.page(pid) as buf:
                nxt = SlottedPage(buf, self.pool.page_size, pid).next_page
            self._check_link(pid, nxt, visited)
            pid = nxt
        if self.n_pages is None:
            self.n_pages = len(out)
        return out

    def records(self) -> Iterator[bytes]:
        """All records in insertion order, one sequential chain pass."""
        pool = self.pool
        pid = self.head
        pending = bytearray()
        open_record = False
        visited: set[int] = set()
        while pid != -1:
            visited.add(pid)
            complete: list[bytes] = []
            with pool.page(pid) as buf:
                page = SlottedPage(buf, pool.page_size, pid)
                for slot in range(page.n_slots):
                    frag, continued = page.fragment(slot)
                    pending += frag
                    open_record = continued
                    if not continued:
                        complete.append(bytes(pending))
                        pending.clear()
                nxt = page.next_page
            self._check_link(pid, nxt, visited)
            pid = nxt
            yield from complete
        if open_record:
            raise StorageError("heap chain ends inside a fragmented record")
        if self.n_pages is None:
            self.n_pages = len(visited)
