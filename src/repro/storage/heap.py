"""Heap files: ordered byte-string records over a chain of slotted pages.

A heap file is a singly linked chain of pages (``next_page`` links).
Records append at the tail and are read back in insertion order — exactly
the access pattern of a data vector (XMILL-style container: one heap per
column, values in document order).  A record may be split into consecutive
fragments when it crosses a page boundary; :meth:`records` stitches them
back transparently.

All page access goes through the owning :class:`BufferPool`; a scan pins
one page at a time and copies the fragments out before unpinning, so an
abandoned iterator can never leak a pin.
"""

from __future__ import annotations

from typing import Iterator

from ..errors import StorageError
from .buffer import BufferPool
from .pages import MAX_FRAGMENT, SlottedPage


class HeapFile:
    __slots__ = ("pool", "head", "n_pages", "_tail")

    def __init__(self, pool: BufferPool, head: int, n_pages: int | None = None):
        self.pool = pool
        self.head = head
        #: chain length in pages; exact when created fresh or passed in from
        #: the catalog, measured lazily (one chain walk) otherwise.
        self.n_pages = n_pages
        self._tail = head

    @classmethod
    def create(cls, pool: BufferPool) -> "HeapFile":
        pid, buf = pool.new_page()
        SlottedPage.init(buf, pool.page_size)
        pool.unpin(pid, dirty=True)
        heap = cls(pool, pid, n_pages=1)
        return heap

    # -- writing -----------------------------------------------------------

    def append(self, record: bytes) -> None:
        """Append one record at the tail, fragmenting across pages as
        needed (zero-length records are legal)."""
        pool = self.pool
        data = record
        while True:
            buf = pool.pin(self._tail)
            page = SlottedPage(buf, pool.page_size)
            cap = page.free_capacity()
            if cap < (1 if data else 0):
                npid, nbuf = pool.new_page()
                SlottedPage.init(nbuf, pool.page_size)
                page.next_page = npid
                pool.unpin(self._tail, dirty=True)
                pool.unpin(npid, dirty=True)
                self._tail = npid
                if self.n_pages is not None:
                    self.n_pages += 1
                continue
            take = min(len(data), cap, MAX_FRAGMENT)
            continued = take < len(data)
            page.append_fragment(data[:take], continued)
            pool.unpin(self._tail, dirty=True)
            if not continued:
                return
            data = data[take:]

    # -- reading -----------------------------------------------------------

    def pages(self) -> list[int]:
        """Page ids of the chain, head to tail (walks through the pool)."""
        out: list[int] = []
        pid = self.head
        while pid != -1:
            out.append(pid)
            with self.pool.page(pid) as buf:
                pid = SlottedPage(buf, self.pool.page_size).next_page
        if self.n_pages is None:
            self.n_pages = len(out)
        return out

    def records(self) -> Iterator[bytes]:
        """All records in insertion order, one sequential chain pass."""
        pool = self.pool
        pid = self.head
        pending = bytearray()
        open_record = False
        n_seen = 0
        while pid != -1:
            complete: list[bytes] = []
            with pool.page(pid) as buf:
                page = SlottedPage(buf, pool.page_size)
                for slot in range(page.n_slots):
                    frag, continued = page.fragment(slot)
                    pending += frag
                    open_record = continued
                    if not continued:
                        complete.append(bytes(pending))
                        pending.clear()
                pid = page.next_page
            n_seen += 1
            yield from complete
        if open_record:
            raise StorageError("heap chain ends inside a fragmented record")
        if self.n_pages is None:
            self.n_pages = n_seen
