"""Per-vector storage codecs — the format-v4 compression layer.

The paper's design descends from XMILL: data vectors are *containers*
that compress far better per column than a document compresses as a
whole, and queries should touch the compressed form with minimal
decoding.  Until format v4 the heap chains stored one plain UTF-8 record
per value — this module is the pluggable layer that replaces it:

* ``identity`` — one UTF-8 record per value (the v2/v3 layout; also the
  universal fallback, so a v4 file is never *worse* than v3);
* ``dict``     — dictionary coding for low-cardinality vectors: the
  sorted distinct keys (the exact ``np.unique`` order the value indexes
  use) plus one packed unsigned code per value.  The coded form is
  *queryable*: an equality predicate maps its constant into code space
  once and compares integers — the string column is never built;
* ``delta``    — delta-of-numeric for vectors of canonical integer text
  (ids, counts, prices-in-cents): a base plus per-value deltas in the
  narrowest signed width.  Numeric (ordering) predicates evaluate from
  the int64 state without building strings;
* ``zlib``     — general-purpose fallback: the NUL-joined UTF-8 payload
  deflated as one blob (NUL never appears in parsed XML text — the same
  argument the index segment layer relies on).

``choose_codec`` picks per vector from an evenly strided value sample:
the sampled encoded size must beat plain UTF-8 by at least 10%
(``MAX_RATIO``), dictionary coding additionally requires low sampled
cardinality and wins ties because its coded form is queryable; delta
beats zlib because its state is numeric-queryable.  The choice — plus
exact logical (UTF-8) and physical (encoded) byte counts — is recorded
in the file catalog, so planners and ``repo ls`` can reason about
compression with zero page I/O.

``decode`` is a **trust boundary** exactly like
:func:`repro.index.decode_segment`: every structural invariant of the
encoded records (header sanity, blob lengths, code bounds, strictly
increasing dictionaries, declared payload sizes) is re-validated before
any value is handed out, so a tampered chain fails as
:class:`~repro.errors.CorruptDataError` naming the vector — never as a
wrong answer, an out-of-bounds gather, or an unbounded allocation.  The
optional ``checkpoint`` callable is the cooperative-deadline hook: long
decode loops call it so an expired query stops inside a decode, not
after it.
"""

from __future__ import annotations

import re
import struct
import zlib

import numpy as np

from ..errors import CorruptDataError

__all__ = [
    "CODECS", "Codec", "CodecInapplicable", "choose_codec",
    "encode_column", "utf8_bytes",
]

#: values sampled (evenly strided) to price codecs before a full encode
SAMPLE_CAP = 1024
#: a non-identity codec must beat plain UTF-8 by >= 10% on the sample
MAX_RATIO = 0.9
#: dictionary coding requires at most this distinct/sampled ratio
DICT_MAX_DISTINCT = 0.5
#: call the deadline checkpoint every this many values in decode loops
CHECKPOINT_EVERY = 1024

_DICT_HEADER = struct.Struct("<qqqq")    # n, u, key itemsize, code width
_DELTA_HEADER = struct.Struct("<qqq")    # n, delta width, base value
_ZLIB_HEADER = struct.Struct("<qq")      # n, decompressed payload length

_INT64_MIN, _INT64_MAX = -(1 << 63), (1 << 63) - 1
#: canonical integer text: what ``str(int(v)) == v`` accepts
_CANON_INT = re.compile(r"-?(0|[1-9][0-9]*)\Z")


class CodecInapplicable(Exception):
    """The column cannot be represented by this codec (internal: the
    save path falls back down the codec chain, it never surfaces)."""


def utf8_bytes(values) -> int:
    """Logical size of a column: the summed UTF-8 byte lengths."""
    return sum(len(v.encode("utf-8")) for v in values)


def _ucol(values) -> np.ndarray:
    col = np.asarray(list(values), dtype=np.str_)
    if col.dtype.kind != "U":  # e.g. empty input
        col = col.astype(np.str_)
    return col


def _uint_width(u: int) -> int:
    """Narrowest unsigned byte width whose range covers codes 0..u-1."""
    if u <= 1 << 8:
        return 1
    if u <= 1 << 16:
        return 2
    if u <= 1 << 32:
        return 4
    return 8


def _int_width(lo: int, hi: int) -> int:
    """Narrowest signed byte width covering [lo, hi]."""
    for width in (1, 2, 4, 8):
        bound = 1 << (8 * width - 1)
        if -bound <= lo and hi < bound:
            return width
    raise CodecInapplicable("delta outside int64")


def _header(name: str, path: tuple, records: list[bytes],
            st: struct.Struct, n_records: int) -> tuple:
    vname = "/".join(path)
    if len(records) != n_records:
        raise CorruptDataError(
            f"vector {vname}: {name} chain holds {len(records)} records, "
            f"expected {n_records}")
    if len(records[0]) != st.size:
        raise CorruptDataError(
            f"vector {vname}: malformed {name} header record")
    return st.unpack(records[0])


def _match_n(name: str, path: tuple, hdr_n: int, n: int) -> None:
    if hdr_n != n:
        raise CorruptDataError(
            f"vector {'/'.join(path)}: {name} header says {hdr_n} values, "
            f"catalog says {n}")


class Codec:
    """One storage codec: column values <-> heap-chain records.

    ``decode`` returns the codec's *state* — the cheapest validated form
    of the column (strings for identity/zlib, ``(keys, codes)`` for
    dict, an int64 array for delta).  ``column(state)`` derives the
    string column; ``codes``/``floats`` expose the decode-free query
    surfaces where the state supports them.
    """

    name = "?"
    #: the state *is* the string column (decoding happens at
    #: materialization, not lazily at first string access)
    eager_column = True

    def encode(self, values: list[str]) -> list[bytes]:
        raise NotImplementedError

    def decode(self, path: tuple, n: int, records: list[bytes],
               lbytes: int | None, checkpoint=None):
        raise NotImplementedError

    def n_records(self, n: int) -> int:
        """Record count of a chain holding ``n`` values."""
        raise NotImplementedError

    def column(self, state) -> np.ndarray:
        return state

    def codes(self, state) -> tuple[np.ndarray, np.ndarray] | None:
        """``(sorted keys, per-value codes)`` when the state is
        dictionary-coded, else ``None``."""
        return None

    def floats(self, state) -> np.ndarray | None:
        """The float64 column when the state is numeric, else ``None``."""
        return None


class IdentityCodec(Codec):
    name = "identity"

    def encode(self, values):
        return [v.encode("utf-8") for v in values]

    def decode(self, path, n, records, lbytes, checkpoint=None):
        if len(records) != n:
            raise CorruptDataError(
                f"vector {'/'.join(path)}: catalog says {n} values, "
                f"chain holds {len(records)}")
        out = []
        for i, rec in enumerate(records):
            if checkpoint is not None and i % CHECKPOINT_EVERY == 0:
                checkpoint()
            try:
                out.append(rec.decode("utf-8"))
            except UnicodeDecodeError as exc:
                raise CorruptDataError(
                    f"vector {'/'.join(path)}: value {i} is not valid "
                    f"UTF-8 ({exc})") from exc
        return _ucol(out)

    def n_records(self, n):
        return n


class DictCodec(Codec):
    name = "dict"
    eager_column = False

    def encode(self, values):
        col = _ucol(values)
        n = len(col)
        if n:
            keys, codes = np.unique(col, return_inverse=True)
            codes = codes.astype(np.int64, copy=False).ravel()
        else:
            keys = np.empty(0, dtype="<U1")
            codes = np.empty(0, dtype=np.int64)
        u = len(keys)
        width = _uint_width(u)
        if u:
            karr = np.ascontiguousarray(
                keys, dtype=f"<U{keys.itemsize // 4 or 1}")
            itemsize, blob = karr.itemsize, karr.tobytes()
        else:
            itemsize, blob = 0, b""
        return [
            _DICT_HEADER.pack(n, u, itemsize, width),
            blob,
            codes.astype(f"<u{width}").tobytes(),
        ]

    def decode(self, path, n, records, lbytes, checkpoint=None):
        name = "/".join(path)
        hdr_n, u, itemsize, width = _header(
            "dict", path, records, _DICT_HEADER, 3)
        _match_n("dict", path, hdr_n, n)
        if not 0 <= u <= n:
            raise CorruptDataError(
                f"vector {name}: dictionary of {u} keys over {n} values")
        if width not in (1, 2, 4, 8):
            raise CorruptDataError(
                f"vector {name}: dict code width {width} is not 1/2/4/8")
        if checkpoint is not None:
            checkpoint()
        from ..index.segment import keys_from_blob

        keys = keys_from_blob(f"vector {name}", u, itemsize, records[1])
        if u > 1 and not np.all(keys[1:] > keys[:-1]):
            raise CorruptDataError(
                f"vector {name}: dictionary keys are not strictly "
                f"increasing")
        if len(records[2]) != n * width:
            raise CorruptDataError(
                f"vector {name}: code array is {len(records[2])} bytes, "
                f"expected {n} codes of width {width}")
        codes = np.frombuffer(records[2],
                              dtype=f"<u{width}").astype(np.int64)
        # bounds before any gather: a corrupt code must fail here, not
        # index outside the dictionary
        if n and (u == 0 or int(codes.max()) >= u):
            raise CorruptDataError(
                f"vector {name}: value codes outside the dictionary "
                f"(0..{u - 1})")
        if checkpoint is not None:
            checkpoint()
        return keys, codes

    def n_records(self, n):
        return 3

    def column(self, state):
        keys, codes = state
        if not len(codes):
            return np.empty(0, dtype="<U1").astype(np.str_)
        return keys[codes]

    def codes(self, state):
        return state


class DeltaCodec(Codec):
    name = "delta"
    eager_column = False

    def encode(self, values):
        ints = []
        for v in values:
            if not _CANON_INT.match(v):
                raise CodecInapplicable(f"not canonical integer text: {v!r}")
            i = int(v)
            if not _INT64_MIN <= i <= _INT64_MAX:
                raise CodecInapplicable(f"outside int64: {v!r}")
            ints.append(i)
        n = len(ints)
        base = ints[0] if n else 0
        deltas = [ints[i + 1] - ints[i] for i in range(n - 1)]
        width = _int_width(min(deltas, default=0), max(deltas, default=0))
        return [
            _DELTA_HEADER.pack(n, width, base),
            np.asarray(deltas, dtype=f"<i{width}").tobytes(),
        ]

    def decode(self, path, n, records, lbytes, checkpoint=None):
        name = "/".join(path)
        hdr_n, width, base = _header(
            "delta", path, records, _DELTA_HEADER, 2)
        _match_n("delta", path, hdr_n, n)
        if width not in (1, 2, 4, 8):
            raise CorruptDataError(
                f"vector {name}: delta width {width} is not 1/2/4/8")
        if len(records[1]) != max(0, n - 1) * width:
            raise CorruptDataError(
                f"vector {name}: delta array is {len(records[1])} bytes, "
                f"expected {max(0, n - 1)} deltas of width {width}")
        if checkpoint is not None:
            checkpoint()
        vals = np.empty(n, dtype=np.int64)
        if n:
            deltas = np.frombuffer(records[1],
                                   dtype=f"<i{width}").astype(np.int64)
            vals[0] = base
            np.cumsum(deltas, out=vals[1:])
            vals[1:] += base
        return vals

    def n_records(self, n):
        return 2

    def column(self, state):
        if not len(state):
            return np.empty(0, dtype="<U1").astype(np.str_)
        return np.char.mod("%d", state).astype(np.str_, copy=False)

    def floats(self, state):
        return state.astype(np.float64)


class ZlibCodec(Codec):
    name = "zlib"

    def encode(self, values):
        for v in values:
            if "\x00" in v:
                raise CodecInapplicable("value contains NUL")
        payload = "\x00".join(values).encode("utf-8")
        return [
            _ZLIB_HEADER.pack(len(values), len(payload)),
            zlib.compress(payload, 6),
        ]

    def decode(self, path, n, records, lbytes, checkpoint=None):
        name = "/".join(path)
        hdr_n, payload_len = _header(
            "zlib", path, records, _ZLIB_HEADER, 2)
        _match_n("zlib", path, hdr_n, n)
        # the declared size bounds the decompression allocation; the
        # catalog's logical byte count bounds the declaration (values
        # plus n-1 NUL separators) — a crafted header cannot make this
        # a decompression bomb
        expected = (lbytes + n - 1) if (lbytes is not None and n) else \
            (0 if lbytes is not None else None)
        if payload_len < 0 or \
                (expected is not None and payload_len != expected):
            raise CorruptDataError(
                f"vector {name}: declared payload of {payload_len} bytes, "
                f"catalog implies {expected}")
        if checkpoint is not None:
            checkpoint()
        d = zlib.decompressobj()
        try:
            payload = d.decompress(records[1], payload_len)
        except zlib.error as exc:
            raise CorruptDataError(
                f"vector {name}: zlib payload does not inflate "
                f"({exc})") from exc
        if len(payload) != payload_len or not d.eof \
                or d.unconsumed_tail or d.unused_data:
            raise CorruptDataError(
                f"vector {name}: inflated payload does not match its "
                f"declared {payload_len} bytes")
        if checkpoint is not None:
            checkpoint()
        try:
            text = payload.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CorruptDataError(
                f"vector {name}: zlib payload is not valid UTF-8 "
                f"({exc})") from exc
        if n == 0:
            if text:
                raise CorruptDataError(
                    f"vector {name}: non-empty payload for 0 values")
            return _ucol([])
        parts = text.split("\x00")
        if len(parts) != n:
            raise CorruptDataError(
                f"vector {name}: payload splits into {len(parts)} values, "
                f"catalog says {n}")
        return _ucol(parts)

    def n_records(self, n):
        return 2


IDENTITY = IdentityCodec()
DICT = DictCodec()
DELTA = DeltaCodec()
ZLIB = ZlibCodec()

#: name -> codec, the registry the catalog names resolve through
CODECS: dict[str, Codec] = {
    c.name: c for c in (IDENTITY, DICT, DELTA, ZLIB)
}

#: when a sampled choice proves inapplicable on the full column, fall
#: back down this chain (dict never fails; identity always applies)
_FALLBACK = {"delta": ZLIB, "zlib": IDENTITY}


def _encoded_len(codec: Codec, values: list[str]) -> int:
    return sum(len(r) for r in codec.encode(values))


def choose_codec(values: list[str]) -> Codec:
    """Deterministic per-vector codec choice from an evenly strided
    sample of up to ``SAMPLE_CAP`` values.  Priority when the sampled
    ratio clears ``MAX_RATIO``: dict (queryable in code space, requires
    low sampled cardinality), then delta (numeric-queryable), then zlib;
    identity otherwise."""
    n = len(values)
    if n == 0:
        return IDENTITY
    stride = max(1, n // SAMPLE_CAP)
    sample = values[::stride][:SAMPLE_CAP]
    budget = MAX_RATIO * max(1, utf8_bytes(sample))
    if len(set(sample)) <= DICT_MAX_DISTINCT * len(sample) and \
            _encoded_len(DICT, sample) <= budget:
        return DICT
    for codec in (DELTA, ZLIB):
        try:
            if _encoded_len(codec, sample) <= budget:
                return codec
        except CodecInapplicable:
            pass
    return IDENTITY


def encode_column(values: list[str]):
    """Encode one column with its chosen codec.

    Returns ``(codec, records, logical bytes, physical bytes)``; when a
    sampled choice proves inapplicable over the full column (a late
    non-numeric value for delta, a NUL for zlib) the encode falls back
    down the chain, ending at identity, which always applies."""
    codec = choose_codec(values)
    while True:
        try:
            records = codec.encode(values)
            break
        except CodecInapplicable:
            codec = _FALLBACK[codec.name]
    return (codec, records, utf8_bytes(values),
            sum(len(r) for r in records))
