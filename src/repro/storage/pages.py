"""Slotted pages: the fixed-size unit of disk I/O (Shore-style).

A page is ``page_size`` bytes::

    +--------+---------------------------+-------------------+
    | header | record fragments (grow →) | ← slot directory  |
    +--------+---------------------------+-------------------+

Header (8 bytes, little-endian): ``u16 n_slots``, ``u16 free_ptr`` (offset
of the first free byte in the record area), ``i32 next_page`` (chain link
for heap files, -1 = end).  The slot directory grows down from the page
end, one 4-byte entry per slot: ``u16 offset``, ``u16 length`` whose high
bit is the *continuation flag* — a record larger than the remaining free
space is split into consecutive fragments (possibly spanning pages of a
heap-file chain); every fragment except the last carries the flag.

Pages never own their bytes: they are lightweight views over a buffer-pool
frame (``bytearray``), so mutating a page mutates the frame in place and
the pool's dirty tracking does the rest.
"""

from __future__ import annotations

import struct

from ..errors import StorageError

PAGE_HEADER = 8
SLOT_SIZE = 4
CONT_FLAG = 0x8000
MAX_FRAGMENT = 0x7FFF

_HDR = struct.Struct("<HHi")
_SLOT = struct.Struct("<HH")

#: Smallest page that can hold the header, one slot and a few bytes of
#: payload; the ceiling keeps u16 offsets valid.
MIN_PAGE_SIZE = 64
MAX_PAGE_SIZE = 32768
DEFAULT_PAGE_SIZE = 4096


def check_page_size(page_size: int) -> int:
    if not MIN_PAGE_SIZE <= page_size <= MAX_PAGE_SIZE:
        raise StorageError(
            f"page size {page_size} out of range "
            f"[{MIN_PAGE_SIZE}, {MAX_PAGE_SIZE}]")
    return page_size


class SlottedPage:
    """A structured view over one page-sized ``bytearray`` frame."""

    __slots__ = ("buf", "page_size")

    def __init__(self, buf: bytearray, page_size: int):
        self.buf = buf
        self.page_size = page_size

    @classmethod
    def init(cls, buf: bytearray, page_size: int) -> "SlottedPage":
        """Format a fresh frame as an empty page with no successor."""
        page = cls(buf, page_size)
        _HDR.pack_into(buf, 0, 0, PAGE_HEADER, -1)
        return page

    # -- header fields -----------------------------------------------------

    @property
    def n_slots(self) -> int:
        return _HDR.unpack_from(self.buf, 0)[0]

    @property
    def free_ptr(self) -> int:
        return _HDR.unpack_from(self.buf, 0)[1]

    @property
    def next_page(self) -> int:
        return _HDR.unpack_from(self.buf, 0)[2]

    @next_page.setter
    def next_page(self, pid: int) -> None:
        n, free, _ = _HDR.unpack_from(self.buf, 0)
        _HDR.pack_into(self.buf, 0, n, free, pid)

    # -- space accounting --------------------------------------------------

    def free_capacity(self) -> int:
        """Payload bytes available for one more fragment (its 4-byte slot
        entry already accounted for).  May be negative on a full page."""
        n, free, _ = _HDR.unpack_from(self.buf, 0)
        dir_bottom = self.page_size - SLOT_SIZE * n
        return dir_bottom - SLOT_SIZE - free

    # -- fragments ---------------------------------------------------------

    def append_fragment(self, data: bytes, continued: bool) -> int:
        """Write one fragment; returns its slot index.  The caller must
        have checked :meth:`free_capacity`."""
        if len(data) > MAX_FRAGMENT:
            raise StorageError(f"fragment of {len(data)} bytes exceeds "
                               f"the {MAX_FRAGMENT}-byte slot limit")
        n, free, nxt = _HDR.unpack_from(self.buf, 0)
        if len(data) > self.free_capacity():
            raise StorageError("fragment does not fit in page free space")
        self.buf[free:free + len(data)] = data
        slot_off = self.page_size - SLOT_SIZE * (n + 1)
        _SLOT.pack_into(self.buf, slot_off, free,
                        len(data) | (CONT_FLAG if continued else 0))
        _HDR.pack_into(self.buf, 0, n + 1, free + len(data), nxt)
        return n

    def fragment(self, slot: int) -> tuple[bytes, bool]:
        """The payload bytes of ``slot`` and its continuation flag."""
        if not 0 <= slot < self.n_slots:
            raise StorageError(f"slot {slot} out of range (page has "
                               f"{self.n_slots})")
        off, raw = _SLOT.unpack_from(
            self.buf, self.page_size - SLOT_SIZE * (slot + 1))
        length = raw & MAX_FRAGMENT
        return bytes(self.buf[off:off + length]), bool(raw & CONT_FLAG)
