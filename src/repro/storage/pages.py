"""Slotted pages: the fixed-size unit of disk I/O (Shore-style).

A page is ``page_size`` bytes::

    +--------+---------------------------+-------------------+
    | header | record fragments (grow →) | ← slot directory  |
    +--------+---------------------------+-------------------+

Header (12 bytes, little-endian, format v2): ``u16 n_slots``, ``u16
free_ptr`` (offset of the first free byte in the record area), ``i32
next_page`` (chain link for heap files, -1 = end), ``u32 crc`` — a page
checksum over the whole page with the crc field itself taken as zero.
The checksum is stamped by :meth:`PageFile.write_page` on every write-back
and verified on every physical read, so a flipped bit anywhere in a page
surfaces as :class:`CorruptDataError` instead of a wrong query answer.
(The polynomial is zlib's CRC-32 — the toolchain has it at C speed; a
software CRC-32C table would blow the read-path budget.)

The slot directory grows down from the page end, one 4-byte entry per
slot: ``u16 offset``, ``u16 length`` whose high bit is the *continuation
flag* — a record larger than the remaining free space is split into
consecutive fragments (possibly spanning pages of a heap-file chain);
every fragment except the last carries the flag.

Pages never own their bytes: they are lightweight views over a buffer-pool
frame (``bytearray``), so mutating a page mutates the frame in place and
the pool's dirty tracking does the rest.
"""

from __future__ import annotations

import struct
import zlib

from ..errors import CorruptDataError, StorageError

PAGE_HEADER = 12
SLOT_SIZE = 4
CONT_FLAG = 0x8000
MAX_FRAGMENT = 0x7FFF

CRC_OFFSET = 8  # u32 page checksum lives at header bytes [8, 12)

_HDR = struct.Struct("<HHi")
_CRC = struct.Struct("<I")
_SLOT = struct.Struct("<HH")

#: Smallest page that can hold the header, one slot and a few bytes of
#: payload; the ceiling keeps u16 offsets valid.
MIN_PAGE_SIZE = 64
MAX_PAGE_SIZE = 32768
DEFAULT_PAGE_SIZE = 4096


def check_page_size(page_size: int) -> int:
    if not MIN_PAGE_SIZE <= page_size <= MAX_PAGE_SIZE:
        raise StorageError(
            f"page size {page_size} out of range "
            f"[{MIN_PAGE_SIZE}, {MAX_PAGE_SIZE}]")
    return page_size


def page_crc(buf) -> int:
    """Checksum of a page with its own crc field taken as zero."""
    view = memoryview(buf)
    crc = zlib.crc32(view[:CRC_OFFSET])
    return zlib.crc32(view[CRC_OFFSET + _CRC.size:], crc) & 0xFFFFFFFF


def stored_crc(buf) -> int:
    return _CRC.unpack_from(buf, CRC_OFFSET)[0]


def stamp_crc(buf: bytearray) -> None:
    """Write the page's current checksum into its crc field in place."""
    _CRC.pack_into(buf, CRC_OFFSET, page_crc(buf))


class SlottedPage:
    """A structured view over one page-sized ``bytearray`` frame.

    ``pid`` is carried for error reporting only — a corrupt slot entry or
    header raises :class:`CorruptDataError` naming the page and slot.
    """

    __slots__ = ("buf", "page_size", "pid")

    def __init__(self, buf: bytearray, page_size: int, pid: int | None = None):
        self.buf = buf
        self.page_size = page_size
        self.pid = pid

    @classmethod
    def init(cls, buf: bytearray, page_size: int,
             pid: int | None = None) -> "SlottedPage":
        """Format a fresh frame as an empty page with no successor."""
        page = cls(buf, page_size, pid)
        _HDR.pack_into(buf, 0, 0, PAGE_HEADER, -1)
        return page

    # -- header fields -----------------------------------------------------

    @property
    def n_slots(self) -> int:
        return _HDR.unpack_from(self.buf, 0)[0]

    @property
    def free_ptr(self) -> int:
        return _HDR.unpack_from(self.buf, 0)[1]

    @property
    def next_page(self) -> int:
        return _HDR.unpack_from(self.buf, 0)[2]

    @next_page.setter
    def next_page(self, pid: int) -> None:
        n, free, _ = _HDR.unpack_from(self.buf, 0)
        _HDR.pack_into(self.buf, 0, n, free, pid)

    # -- integrity ---------------------------------------------------------

    def dir_bottom(self) -> int:
        """First byte of the slot directory (record area ends here)."""
        return self.page_size - SLOT_SIZE * self.n_slots

    def check_header(self) -> None:
        """Validate the structural header invariants (not the checksum):
        the slot directory fits in the page and ``free_ptr`` lies between
        the header and the directory.  Raises :class:`CorruptDataError`."""
        n, free, _ = _HDR.unpack_from(self.buf, 0)
        bottom = self.page_size - SLOT_SIZE * n
        if bottom < PAGE_HEADER:
            raise CorruptDataError(
                f"slot directory of {n} entries overruns the page",
                page=self.pid)
        if not PAGE_HEADER <= free <= bottom:
            raise CorruptDataError(
                f"free_ptr {free} outside the record area "
                f"[{PAGE_HEADER}, {bottom}]", page=self.pid)

    def slot_entry(self, slot: int) -> tuple[int, int, bool]:
        """Raw ``(offset, length, continued)`` of one slot entry, bounds
        checked against the header (which must be valid)."""
        off, raw = _SLOT.unpack_from(
            self.buf, self.page_size - SLOT_SIZE * (slot + 1))
        length = raw & MAX_FRAGMENT
        free = self.free_ptr
        if off < PAGE_HEADER or off + length > free:
            raise CorruptDataError(
                f"fragment [{off}, {off + length}) outside the record "
                f"area [{PAGE_HEADER}, {free})", page=self.pid, slot=slot)
        return off, length, bool(raw & CONT_FLAG)

    # -- space accounting --------------------------------------------------

    def free_capacity(self) -> int:
        """Payload bytes available for one more fragment (its 4-byte slot
        entry already accounted for).  May be negative on a full page."""
        n, free, _ = _HDR.unpack_from(self.buf, 0)
        dir_bottom = self.page_size - SLOT_SIZE * n
        return dir_bottom - SLOT_SIZE - free

    # -- fragments ---------------------------------------------------------

    def append_fragment(self, data: bytes, continued: bool) -> int:
        """Write one fragment; returns its slot index.  The caller must
        have checked :meth:`free_capacity`."""
        if len(data) > MAX_FRAGMENT:
            raise StorageError(f"fragment of {len(data)} bytes exceeds "
                               f"the {MAX_FRAGMENT}-byte slot limit")
        n, free, nxt = _HDR.unpack_from(self.buf, 0)
        if len(data) > self.free_capacity():
            raise StorageError("fragment does not fit in page free space")
        self.buf[free:free + len(data)] = data
        slot_off = self.page_size - SLOT_SIZE * (n + 1)
        _SLOT.pack_into(self.buf, slot_off, free,
                        len(data) | (CONT_FLAG if continued else 0))
        _HDR.pack_into(self.buf, 0, n + 1, free + len(data), nxt)
        return n

    def fragment(self, slot: int) -> tuple[bytes, bool]:
        """The payload bytes of ``slot`` and its continuation flag.

        A slot index past the directory, a directory overrunning the page,
        or a slot entry whose byte range escapes the record area all raise
        :class:`CorruptDataError` naming page and slot — corrupt metadata
        must never read back as silently zero-padded garbage bytes.
        """
        self.check_header()
        if not 0 <= slot < self.n_slots:
            raise CorruptDataError(
                f"slot index out of range (page has {self.n_slots})",
                page=self.pid, slot=slot)
        off, length, cont = self.slot_entry(slot)
        return bytes(self.buf[off:off + length]), cont
