"""Buffer pool: bounded page cache with clock (second-chance) eviction.

Every page access of the storage layer goes through :meth:`BufferPool.pin`
— the only call sites of ``PageFile.read_page`` / ``write_page`` — so the
pool's :class:`IOStats` are the ground truth for the lazy-loading claims:
the engine checks "each data vector is scanned at most once" against these
physical page-read counts, not just against in-memory scan counters.

Pin/unpin is strict accounting: a pinned frame is never evicted, unpinning
below zero raises, and the engine asserts ``pinned_total() == 0`` after
every query — a leaked pin is a bug, not a warning.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from ..errors import StorageError
from .disk import PageFile


@dataclass
class IOStats:
    """Physical + logical I/O counters, all monotonically increasing."""

    pages_read: int = 0       # physical page reads (== cache misses)
    pages_written: int = 0    # physical page write-backs
    hits: int = 0             # pins served from the pool
    misses: int = 0           # pins that had to read
    evictions: int = 0        # frames reclaimed by the clock

    def as_dict(self) -> dict:
        return {
            "pages_read": self.pages_read,
            "pages_written": self.pages_written,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


@dataclass
class _Frame:
    buf: bytearray
    pin_count: int = 0
    ref: bool = True          # clock reference bit
    dirty: bool = field(default=False)


class BufferPool:
    """At most ``capacity`` resident pages of one :class:`PageFile`
    (``capacity=None`` → unbounded)."""

    def __init__(self, file: PageFile, capacity: int | None = None,
                 verify: bool = True):
        if capacity is not None and capacity < 2:
            # heap-file appends pin the old tail while linking a fresh page
            raise StorageError("buffer pool needs a capacity of >= 2 pages")
        self.file = file
        self.capacity = capacity
        #: checksum-verify every physical page read (format v2 integrity);
        #: off only for benchmarking the verification overhead itself.
        self.verify = verify
        self.stats = IOStats()
        self._frames: dict[int, _Frame] = {}
        self._clock: list[int] = []  # resident pids in frame-table order
        self._hand = 0

    @property
    def page_size(self) -> int:
        return self.file.page_size

    # -- pinning -----------------------------------------------------------

    def pin(self, pid: int) -> bytearray:
        """Fix page ``pid`` in memory and return its frame buffer."""
        frame = self._frames.get(pid)
        if frame is not None:
            self.stats.hits += 1
            frame.pin_count += 1
            frame.ref = True
            return frame.buf
        self.stats.misses += 1
        self._make_room()
        buf = bytearray(self.file.read_page(pid, verify=self.verify))
        self.stats.pages_read += 1
        self._admit(pid, buf)
        return buf

    def new_page(self) -> tuple[int, bytearray]:
        """Allocate a fresh page and return it pinned (dirty, zeroed) —
        no physical read for pages that never existed."""
        self._make_room()
        pid = self.file.allocate()
        buf = bytearray(self.page_size)
        frame = self._admit(pid, buf)
        frame.dirty = True
        return pid, buf

    def unpin(self, pid: int, dirty: bool = False) -> None:
        frame = self._frames.get(pid)
        if frame is None or frame.pin_count <= 0:
            raise StorageError(f"unpin of page {pid} that is not pinned")
        frame.pin_count -= 1
        frame.dirty |= dirty

    @contextmanager
    def page(self, pid: int, dirty: bool = False):
        """``with pool.page(pid) as buf:`` — pin for the block's duration."""
        buf = self.pin(pid)
        try:
            yield buf
        finally:
            self.unpin(pid, dirty)

    def pinned_total(self) -> int:
        """Sum of all pin counts (the engine asserts 0 after a query)."""
        return sum(f.pin_count for f in self._frames.values())

    def resident(self) -> int:
        return len(self._frames)

    # -- clock eviction ----------------------------------------------------

    def _admit(self, pid: int, buf: bytearray) -> _Frame:
        frame = _Frame(buf, pin_count=1)
        self._frames[pid] = frame
        self._clock.append(pid)
        return frame

    def _make_room(self) -> None:
        if self.capacity is None or len(self._frames) < self.capacity:
            return
        # Second-chance sweep: skip pinned frames, clear one reference bit
        # per pass; after two full revolutions every unpinned frame has had
        # its bit cleared, so finding no victim means everything is pinned.
        scanned, limit = 0, 2 * len(self._clock)
        while scanned < limit:
            if self._hand >= len(self._clock):
                self._hand = 0
            pid = self._clock[self._hand]
            frame = self._frames[pid]
            if frame.pin_count > 0:
                self._hand += 1
            elif frame.ref:
                frame.ref = False
                self._hand += 1
            else:
                self._evict(pid)
                del self._clock[self._hand]  # hand now points at the next
                return
            scanned += 1
        raise StorageError(
            f"buffer pool exhausted: all {len(self._frames)} frames pinned")

    def _evict(self, pid: int) -> None:
        frame = self._frames.pop(pid)
        if frame.dirty:
            self.file.write_page(pid, frame.buf)  # stamps the page crc
            self.stats.pages_written += 1
        self.stats.evictions += 1

    # -- durability --------------------------------------------------------

    def flush(self) -> None:
        """Write back every dirty frame (frames stay resident)."""
        for pid in sorted(self._frames):
            frame = self._frames[pid]
            if frame.dirty:
                self.file.write_page(pid, frame.buf)  # stamps the page crc
                self.stats.pages_written += 1
                frame.dirty = False
        self.file.flush()

    def close(self) -> None:
        if self.pinned_total():
            raise StorageError("closing buffer pool with pinned pages")
        self.flush()
