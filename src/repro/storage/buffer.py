"""Buffer pool: bounded page cache with clock (second-chance) eviction.

One pool may now back *several* page files at once — the repository layer
opens every member document of a collection over a single shared pool, so
eviction pressure, pin accounting and I/O statistics are global across the
whole repository (``pinned_total() == 0`` after a query means zero leaked
pins *pool-wide*).  Frames are keyed by ``(file, page)``; each attached
file gets a :class:`FileView` — a per-file facade with the classic
single-file interface (``pin``/``unpin``/``page``/``new_page``) plus its
own per-file :class:`IOStats`, while the pool aggregates the same counters
pool-wide.

For compatibility, ``BufferPool(file)`` still behaves as the old
single-file pool: the file is attached as file 0 and the pool's own
``pin``/``unpin``/... operate on it.

Every page access of the storage layer goes through :meth:`FileView.pin`
— the only call sites of ``PageFile.read_page`` / ``write_page`` — so the
pool's :class:`IOStats` are the ground truth for the lazy-loading claims:
the engine checks "each data vector is scanned at most once" against these
physical page-read counts, not just against in-memory scan counters.

Pin/unpin is strict accounting: a pinned frame is never evicted, unpinning
below zero raises, and the engine asserts ``pinned_total() == 0`` after
every query — a leaked pin is a bug, not a warning.

Concurrency (the ``repro.serve`` substrate).  The pool is safe to share
across threads:

* one **pool lock** protects the frame table, the clock, and every
  counter;
* a page being faulted in by one thread is entered into the table as a
  *loading* frame with a per-frame condition latch (bound to the pool
  lock); a second reader of the same page **blocks on the latch** instead
  of issuing a duplicate physical read — the pool never faults the same
  page twice concurrently;
* physical I/O happens *outside* the pool lock (the loading frame keeps
  the slot reserved), so a fault-in never blocks unrelated hits;
* eviction runs entirely under the pool lock and never touches a frame
  latch: a victim is by definition unpinned and fully loaded, so there is
  nothing to wait for — the lock hierarchy is strictly
  ``pool lock -> frame latch`` and the write-back of a dirty victim
  completes before the frame leaves the table (no stale re-read window);
* pin counts are additionally accounted **per thread**
  (:meth:`BufferPool.pinned_local`): a request served on one thread must
  end with a net pin delta of zero even while other threads hold transient
  pins, which is what lets the engine machine-check "zero leaked pins" per
  request, concurrently;
* when every frame is pinned, :class:`~repro.errors.PoolExhaustedError`
  (carrying capacity and pin counts) is raised instead of a generic
  storage error, so admission control can shed load rather than mistake
  overload for corruption.

Fault tolerance (the ``repro.serve`` robustness substrate):

* the physical read of a fault-in (:meth:`BufferPool._fault`) retries a
  **transient** ``OSError`` up to ``io_retries`` times with doubling
  backoff before surfacing it wrapped in :class:`TransientIOError` — one
  flaky read no longer kills a whole query; retries are counted in
  ``IOStats.read_retries``.  A :class:`~repro.errors.CorruptDataError`
  (checksum mismatch — the bytes themselves are wrong) is **never**
  retried: re-reading deterministic corruption wastes the budget and
  delays quarantine;
* every fault-in is also a **deadline checkpoint**: the thread's active
  :class:`~repro.core.context.EvalContext` (if any) may raise
  :class:`~repro.errors.DeadlineExceededError` before the physical read,
  and the reserved loading frame is rolled back exactly like any failed
  fault — an expired query unwinds with zero leaked pins and the pool
  stays fully usable.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from ..errors import PoolExhaustedError, StorageError
from .disk import PageFile

#: transient-read retry policy defaults: up to ``IO_RETRIES`` re-reads
#: with ``IO_RETRY_DELAY * 2**attempt`` seconds of backoff between them
IO_RETRIES = 2
IO_RETRY_DELAY = 0.01


class TransientIOError(StorageError):
    """A physical page read kept failing with ``OSError`` after the
    bounded retry budget.  Distinct from corruption — the bytes were
    never seen — but equally fatal for the read: the member it belongs
    to is quarantined and re-verified like any storage failure.
    Carries the retry count and the final ``OSError``."""

    def __init__(self, pid: int, retries: int, last: OSError):
        super().__init__(
            f"page {pid}: transient I/O error persisted after "
            f"{retries} retr{'y' if retries == 1 else 'ies'}: {last}")
        self.pid = pid
        self.retries = retries
        self.last = last


@dataclass
class IOStats:
    """Physical + logical I/O counters, all monotonically increasing."""

    pages_read: int = 0       # physical page reads (== cache misses)
    pages_written: int = 0    # physical page write-backs
    hits: int = 0             # pins served from the pool
    misses: int = 0           # pins that had to read
    evictions: int = 0        # frames reclaimed by the clock
    read_retries: int = 0     # transient-OSError re-reads that were needed
    logical_bytes: int = 0    # uncompressed bytes of columns materialized
    physical_bytes: int = 0   # encoded bytes those columns occupied on disk
    decoded_values: int = 0   # string values decoded from encoded storage

    def hit_rate(self) -> float:
        """Fraction of pins served without a physical read (0.0 when no
        pin has happened yet) — the warm-pool signal ``/stats`` and the
        serve benchmark report."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def compression_ratio(self) -> float:
        """``physical / logical`` bytes of everything materialized so far
        (1.0 before any materialization): the live compression-savings
        signal — lower is better, 1.0 means identity storage."""
        return self.physical_bytes / self.logical_bytes \
            if self.logical_bytes else 1.0

    def as_dict(self) -> dict:
        return {
            "pages_read": self.pages_read,
            "pages_written": self.pages_written,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "read_retries": self.read_retries,
            "hit_rate": round(self.hit_rate(), 4),
            "logical_bytes": self.logical_bytes,
            "physical_bytes": self.physical_bytes,
            "decoded_values": self.decoded_values,
            "compression_ratio": round(self.compression_ratio(), 4),
        }


@dataclass
class _Frame:
    buf: bytearray | None
    pin_count: int = 0
    ref: bool = True          # clock reference bit
    dirty: bool = field(default=False)
    #: being faulted in: the slot is reserved, ``buf`` not yet valid
    loading: bool = field(default=False)
    #: latch for readers arriving while ``loading`` (bound to the pool
    #: lock; created only when the frame is admitted via a fault-in)
    cond: threading.Condition | None = field(default=None)


class FileView:
    """One attached file's face of a (possibly shared) :class:`BufferPool`.

    Exposes the single-file pool interface plus per-file ``stats``; all
    frame storage, eviction and pool-wide accounting live in the pool.
    """

    __slots__ = ("pool", "fid", "file", "stats")

    def __init__(self, pool: "BufferPool", fid: int, file: PageFile):
        self.pool = pool
        self.fid = fid
        self.file = file
        self.stats = IOStats()

    @property
    def page_size(self) -> int:
        return self.file.page_size

    def pin(self, pid: int) -> bytearray:
        return self.pool.pin_at(self.fid, pid)

    def unpin(self, pid: int, dirty: bool = False) -> None:
        self.pool.unpin_at(self.fid, pid, dirty)

    def new_page(self) -> tuple[int, bytearray]:
        return self.pool.new_page_at(self.fid)

    @contextmanager
    def page(self, pid: int, dirty: bool = False):
        """``with view.page(pid) as buf:`` — pin for the block's duration."""
        buf = self.pin(pid)
        try:
            yield buf
        finally:
            self.unpin(pid, dirty)

    def pinned_total(self) -> int:
        """Pool-wide pin count (pins are accounted globally)."""
        return self.pool.pinned_total()

    def pages_read_local(self) -> int:
        """The calling thread's physical reads, pool-wide (reads are
        accounted per thread, not per file)."""
        return self.pool.pages_read_local()

    def flush(self) -> None:
        self.pool.flush()


class BufferPool:
    """At most ``capacity`` resident pages across every attached
    :class:`PageFile` (``capacity=None`` → unbounded)."""

    def __init__(self, file: PageFile | None = None,
                 capacity: int | None = None, verify: bool = True,
                 io_retries: int = IO_RETRIES,
                 io_retry_delay: float = IO_RETRY_DELAY):
        if capacity is not None and capacity < 2:
            # heap-file appends pin the old tail while linking a fresh page
            raise StorageError("buffer pool needs a capacity of >= 2 pages")
        self.capacity = capacity
        #: checksum-verify every physical page read (format v2 integrity);
        #: off only for benchmarking the verification overhead itself.
        self.verify = verify
        #: transient-OSError read retries per fault (0 disables)
        self.io_retries = max(0, io_retries)
        #: backoff before the first retry, doubling per attempt
        self.io_retry_delay = io_retry_delay
        self.stats = IOStats()                    # pool-wide counters
        self._views: list[FileView] = []
        self._frames: dict[tuple[int, int], _Frame] = {}
        self._clock: list[tuple[int, int]] = []   # resident keys, clock order
        self._hand = 0
        self._lock = threading.Lock()             # frame table + counters
        self._tlocal = threading.local()          # per-thread net pin delta
        self._closed = False
        if file is not None:
            self.attach(file)

    # -- file attachment ---------------------------------------------------

    def attach(self, file: PageFile) -> FileView:
        """Share this pool with ``file``; returns its per-file view."""
        with self._lock:
            view = FileView(self, len(self._views), file)
            self._views.append(view)
        return view

    def views(self) -> list[FileView]:
        return list(self._views)

    @property
    def file(self) -> PageFile | None:
        """The first attached file (single-file compatibility)."""
        return self._views[0].file if self._views else None

    @property
    def page_size(self) -> int:
        return self._views[0].file.page_size

    # -- per-thread pin accounting ------------------------------------------

    def _note_pin(self, delta: int) -> None:
        t = self._tlocal
        t.pins = getattr(t, "pins", 0) + delta

    def pinned_local(self) -> int:
        """Net pin delta of the *calling thread* (pins minus unpins).

        A query runs start to finish on one thread, so this is the
        per-request face of the zero-leaked-pins invariant: it must be 0
        after the request even while concurrent requests on other threads
        legitimately hold transient pins (``pinned_total`` would count
        those too)."""
        return getattr(self._tlocal, "pins", 0)

    def _note_read(self, delta: int) -> None:
        t = self._tlocal
        t.reads = getattr(t, "reads", 0) + delta

    def pages_read_local(self) -> int:
        """Physical page reads performed *by the calling thread*, ever.

        The per-request face of the bounded-physical-I/O invariant: a
        materialization measures its own read cost as a delta of this
        counter, so a concurrent thread faulting pages of the same (or any
        other) chain never inflates the measurement — the pool-wide
        ``stats.pages_read`` would."""
        return getattr(self._tlocal, "reads", 0)

    # -- pinning -----------------------------------------------------------

    def pin_at(self, fid: int, pid: int) -> bytearray:
        """Fix page ``pid`` of file ``fid`` in memory; return its buffer.

        Concurrent pins of the same non-resident page coalesce: the first
        thread faults the page in, later threads wait on the frame latch
        and are then served as hits — never a duplicate physical read."""
        view = self._views[fid]
        key = (fid, pid)
        with self._lock:
            while True:
                frame = self._frames.get(key)
                if frame is None:
                    break
                if not frame.loading:
                    self.stats.hits += 1
                    view.stats.hits += 1
                    frame.pin_count += 1
                    frame.ref = True
                    self._note_pin(+1)
                    return frame.buf
                # another thread is faulting this page in: wait on its
                # latch (releases the pool lock), then re-check — the load
                # may have failed or the frame may even have been evicted,
                # in which case this thread retries the fault itself
                frame.cond.wait()
            # miss: reserve the slot *before* the physical read so a
            # second reader blocks on the latch instead of double-faulting
            self.stats.misses += 1
            view.stats.misses += 1
            self._make_room()
            frame = _Frame(None, pin_count=1, loading=True,
                           cond=threading.Condition(self._lock))
            self._frames[key] = frame
            self._clock.append(key)
            self._note_pin(+1)
        try:
            # physical I/O outside the pool lock: hits on other pages
            # proceed while this page loads
            buf = self._fault(view, pid)
        except BaseException:
            with self._lock:
                self._note_pin(-1)
                del self._frames[key]
                self._clock_remove(key)
                frame.loading = False
                frame.cond.notify_all()   # waiters retry (and fail the same)
            raise
        with self._lock:
            frame.buf = buf
            frame.loading = False
            self.stats.pages_read += 1
            view.stats.pages_read += 1
            self._note_read(1)
            frame.cond.notify_all()
        return buf

    def _fault(self, view: FileView, pid: int) -> bytearray:
        """The physical read of one fault-in (pool lock NOT held; the
        loading frame reserves the slot).

        Checks the calling thread's cooperative deadline first — a fault
        is exactly where a runaway disk-bound query spends its time — and
        retries a transient ``OSError`` up to ``io_retries`` times with
        doubling backoff.  :class:`~repro.errors.CorruptDataError` is
        deterministic (the bytes on disk are wrong) and surfaces
        immediately so the repository can quarantine the member instead
        of burning the retry budget re-reading known-bad data."""
        from ..core.vectors import active_context

        ctx = active_context()
        if ctx is not None:
            ctx.checkpoint()   # raises DeadlineExceededError when expired
        delay = self.io_retry_delay
        attempt = 0
        while True:
            try:
                return bytearray(view.file.read_page(pid,
                                                     verify=self.verify))
            except OSError as exc:
                if attempt >= self.io_retries:
                    raise TransientIOError(pid, attempt, exc) from exc
                attempt += 1
                with self._lock:
                    self.stats.read_retries += 1
                    view.stats.read_retries += 1
                if delay > 0:
                    time.sleep(delay)
                delay *= 2

    def note_decode(self, view: FileView | None, logical: int = 0,
                    physical: int = 0, values: int = 0) -> None:
        """Charge one column materialization's codec traffic: ``logical``
        uncompressed bytes served, ``physical`` encoded bytes they
        occupied, ``values`` strings actually decoded (0 for a column
        answered purely in code space).  Counted pool-wide and — when
        ``view`` is given — per file, mirroring how page reads are."""
        with self._lock:
            self.stats.logical_bytes += logical
            self.stats.physical_bytes += physical
            self.stats.decoded_values += values
            if view is not None:
                view.stats.logical_bytes += logical
                view.stats.physical_bytes += physical
                view.stats.decoded_values += values

    def new_page_at(self, fid: int) -> tuple[int, bytearray]:
        """Allocate a fresh page in file ``fid``, returned pinned (dirty,
        zeroed) — no physical read for pages that never existed."""
        view = self._views[fid]
        with self._lock:
            self._make_room()
            pid = view.file.allocate()
            buf = bytearray(view.file.page_size)
            frame = _Frame(buf, pin_count=1)
            self._frames[(fid, pid)] = frame
            self._clock.append((fid, pid))
            self._note_pin(+1)
            frame.dirty = True
        return pid, buf

    def unpin_at(self, fid: int, pid: int, dirty: bool = False) -> None:
        with self._lock:
            frame = self._frames.get((fid, pid))
            if frame is None or frame.pin_count <= 0:
                raise StorageError(f"unpin of page {pid} that is not pinned")
            frame.pin_count -= 1
            frame.dirty |= dirty
            self._note_pin(-1)

    # single-file compatibility: operate on the first attached file
    def pin(self, pid: int) -> bytearray:
        return self.pin_at(0, pid)

    def new_page(self) -> tuple[int, bytearray]:
        return self.new_page_at(0)

    def unpin(self, pid: int, dirty: bool = False) -> None:
        self.unpin_at(0, pid, dirty)

    @contextmanager
    def page(self, pid: int, dirty: bool = False):
        """``with pool.page(pid) as buf:`` — pin for the block's duration."""
        buf = self.pin(pid)
        try:
            yield buf
        finally:
            self.unpin(pid, dirty)

    def pinned_total(self) -> int:
        """Sum of all pin counts across every attached file (the engine
        asserts 0 after a query — pool-wide)."""
        with self._lock:
            return sum(f.pin_count for f in self._frames.values())

    def resident(self) -> int:
        return len(self._frames)

    def resident_of(self, fid: int) -> int:
        """Resident page count of one attached file (eviction fairness)."""
        with self._lock:
            return sum(1 for f, _ in self._frames if f == fid)

    # -- clock eviction ----------------------------------------------------

    def _clock_remove(self, key: tuple[int, int]) -> None:
        """Drop ``key`` from the clock, keeping the hand on the same
        neighbour (failed fault-ins remove their reserved slot)."""
        i = self._clock.index(key)
        del self._clock[i]
        if i < self._hand:
            self._hand -= 1

    def _make_room(self) -> None:
        # pool lock held.  Loading frames are born with pin_count 1, so
        # the sweep can never evict a frame whose buffer is still in
        # flight — eviction needs no frame latch (lock hierarchy: the
        # pool lock is taken first and the latch never follows it here).
        if self.capacity is None or len(self._frames) < self.capacity:
            return
        # Second-chance sweep: skip pinned frames, clear one reference bit
        # per pass; after two full revolutions every unpinned frame has had
        # its bit cleared, so finding no victim means everything is pinned.
        scanned, limit = 0, 2 * len(self._clock)
        while scanned < limit:
            if self._hand >= len(self._clock):
                self._hand = 0
            key = self._clock[self._hand]
            frame = self._frames[key]
            if frame.pin_count > 0:
                self._hand += 1
            elif frame.ref:
                frame.ref = False
                self._hand += 1
            else:
                self._evict(key)
                del self._clock[self._hand]  # hand now points at the next
                return
            scanned += 1
        raise PoolExhaustedError(
            capacity=len(self._frames),
            pinned=sum(f.pin_count for f in self._frames.values()))

    def _evict(self, key: tuple[int, int]) -> None:
        # pool lock held; a dirty victim is written back *before* the
        # frame leaves the table, so a concurrent re-pin of the same page
        # can never read a stale on-disk copy
        frame = self._frames.pop(key)
        fid, pid = key
        if frame.dirty:
            view = self._views[fid]
            view.file.write_page(pid, frame.buf)  # stamps the page crc
            self.stats.pages_written += 1
            view.stats.pages_written += 1
        self.stats.evictions += 1
        self._views[fid].stats.evictions += 1

    # -- durability --------------------------------------------------------

    def flush(self) -> None:
        """Write back every dirty frame (frames stay resident)."""
        with self._lock:
            for key in sorted(self._frames):
                frame = self._frames[key]
                if frame.dirty:
                    fid, pid = key
                    view = self._views[fid]
                    view.file.write_page(pid, frame.buf)  # stamps the crc
                    self.stats.pages_written += 1
                    view.stats.pages_written += 1
                    frame.dirty = False
            views = list(self._views)
        for view in views:
            view.file.flush()

    def close(self) -> None:
        """Flush and mark the pool closed.  Idempotent: a second close is
        a no-op — including after a *failed* first close, so cleanup paths
        that close again (``with`` blocks, repository teardown) report the
        original error instead of a repeated pinned-pages complaint."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pinned = sum(f.pin_count for f in self._frames.values())
        if pinned:
            raise StorageError("closing buffer pool with pinned pages")
        self.flush()
