"""Buffer pool: bounded page cache with clock (second-chance) eviction.

One pool may now back *several* page files at once — the repository layer
opens every member document of a collection over a single shared pool, so
eviction pressure, pin accounting and I/O statistics are global across the
whole repository (``pinned_total() == 0`` after a query means zero leaked
pins *pool-wide*).  Frames are keyed by ``(file, page)``; each attached
file gets a :class:`FileView` — a per-file facade with the classic
single-file interface (``pin``/``unpin``/``page``/``new_page``) plus its
own per-file :class:`IOStats`, while the pool aggregates the same counters
pool-wide.

For compatibility, ``BufferPool(file)`` still behaves as the old
single-file pool: the file is attached as file 0 and the pool's own
``pin``/``unpin``/... operate on it.

Every page access of the storage layer goes through :meth:`FileView.pin`
— the only call sites of ``PageFile.read_page`` / ``write_page`` — so the
pool's :class:`IOStats` are the ground truth for the lazy-loading claims:
the engine checks "each data vector is scanned at most once" against these
physical page-read counts, not just against in-memory scan counters.

Pin/unpin is strict accounting: a pinned frame is never evicted, unpinning
below zero raises, and the engine asserts ``pinned_total() == 0`` after
every query — a leaked pin is a bug, not a warning.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from ..errors import StorageError
from .disk import PageFile


@dataclass
class IOStats:
    """Physical + logical I/O counters, all monotonically increasing."""

    pages_read: int = 0       # physical page reads (== cache misses)
    pages_written: int = 0    # physical page write-backs
    hits: int = 0             # pins served from the pool
    misses: int = 0           # pins that had to read
    evictions: int = 0        # frames reclaimed by the clock

    def as_dict(self) -> dict:
        return {
            "pages_read": self.pages_read,
            "pages_written": self.pages_written,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


@dataclass
class _Frame:
    buf: bytearray
    pin_count: int = 0
    ref: bool = True          # clock reference bit
    dirty: bool = field(default=False)


class FileView:
    """One attached file's face of a (possibly shared) :class:`BufferPool`.

    Exposes the single-file pool interface plus per-file ``stats``; all
    frame storage, eviction and pool-wide accounting live in the pool.
    """

    __slots__ = ("pool", "fid", "file", "stats")

    def __init__(self, pool: "BufferPool", fid: int, file: PageFile):
        self.pool = pool
        self.fid = fid
        self.file = file
        self.stats = IOStats()

    @property
    def page_size(self) -> int:
        return self.file.page_size

    def pin(self, pid: int) -> bytearray:
        return self.pool.pin_at(self.fid, pid)

    def unpin(self, pid: int, dirty: bool = False) -> None:
        self.pool.unpin_at(self.fid, pid, dirty)

    def new_page(self) -> tuple[int, bytearray]:
        return self.pool.new_page_at(self.fid)

    @contextmanager
    def page(self, pid: int, dirty: bool = False):
        """``with view.page(pid) as buf:`` — pin for the block's duration."""
        buf = self.pin(pid)
        try:
            yield buf
        finally:
            self.unpin(pid, dirty)

    def pinned_total(self) -> int:
        """Pool-wide pin count (pins are accounted globally)."""
        return self.pool.pinned_total()

    def flush(self) -> None:
        self.pool.flush()


class BufferPool:
    """At most ``capacity`` resident pages across every attached
    :class:`PageFile` (``capacity=None`` → unbounded)."""

    def __init__(self, file: PageFile | None = None,
                 capacity: int | None = None, verify: bool = True):
        if capacity is not None and capacity < 2:
            # heap-file appends pin the old tail while linking a fresh page
            raise StorageError("buffer pool needs a capacity of >= 2 pages")
        self.capacity = capacity
        #: checksum-verify every physical page read (format v2 integrity);
        #: off only for benchmarking the verification overhead itself.
        self.verify = verify
        self.stats = IOStats()                    # pool-wide counters
        self._views: list[FileView] = []
        self._frames: dict[tuple[int, int], _Frame] = {}
        self._clock: list[tuple[int, int]] = []   # resident keys, clock order
        self._hand = 0
        if file is not None:
            self.attach(file)

    # -- file attachment ---------------------------------------------------

    def attach(self, file: PageFile) -> FileView:
        """Share this pool with ``file``; returns its per-file view."""
        view = FileView(self, len(self._views), file)
        self._views.append(view)
        return view

    def views(self) -> list[FileView]:
        return list(self._views)

    @property
    def file(self) -> PageFile | None:
        """The first attached file (single-file compatibility)."""
        return self._views[0].file if self._views else None

    @property
    def page_size(self) -> int:
        return self._views[0].file.page_size

    # -- pinning -----------------------------------------------------------

    def pin_at(self, fid: int, pid: int) -> bytearray:
        """Fix page ``pid`` of file ``fid`` in memory; return its buffer."""
        view = self._views[fid]
        key = (fid, pid)
        frame = self._frames.get(key)
        if frame is not None:
            self.stats.hits += 1
            view.stats.hits += 1
            frame.pin_count += 1
            frame.ref = True
            return frame.buf
        self.stats.misses += 1
        view.stats.misses += 1
        self._make_room()
        buf = bytearray(view.file.read_page(pid, verify=self.verify))
        self.stats.pages_read += 1
        view.stats.pages_read += 1
        self._admit(key, buf)
        return buf

    def new_page_at(self, fid: int) -> tuple[int, bytearray]:
        """Allocate a fresh page in file ``fid``, returned pinned (dirty,
        zeroed) — no physical read for pages that never existed."""
        view = self._views[fid]
        self._make_room()
        pid = view.file.allocate()
        buf = bytearray(view.file.page_size)
        frame = self._admit((fid, pid), buf)
        frame.dirty = True
        return pid, buf

    def unpin_at(self, fid: int, pid: int, dirty: bool = False) -> None:
        frame = self._frames.get((fid, pid))
        if frame is None or frame.pin_count <= 0:
            raise StorageError(f"unpin of page {pid} that is not pinned")
        frame.pin_count -= 1
        frame.dirty |= dirty

    # single-file compatibility: operate on the first attached file
    def pin(self, pid: int) -> bytearray:
        return self.pin_at(0, pid)

    def new_page(self) -> tuple[int, bytearray]:
        return self.new_page_at(0)

    def unpin(self, pid: int, dirty: bool = False) -> None:
        self.unpin_at(0, pid, dirty)

    @contextmanager
    def page(self, pid: int, dirty: bool = False):
        """``with pool.page(pid) as buf:`` — pin for the block's duration."""
        buf = self.pin(pid)
        try:
            yield buf
        finally:
            self.unpin(pid, dirty)

    def pinned_total(self) -> int:
        """Sum of all pin counts across every attached file (the engine
        asserts 0 after a query — pool-wide)."""
        return sum(f.pin_count for f in self._frames.values())

    def resident(self) -> int:
        return len(self._frames)

    def resident_of(self, fid: int) -> int:
        """Resident page count of one attached file (eviction fairness)."""
        return sum(1 for f, _ in self._frames if f == fid)

    # -- clock eviction ----------------------------------------------------

    def _admit(self, key: tuple[int, int], buf: bytearray) -> _Frame:
        frame = _Frame(buf, pin_count=1)
        self._frames[key] = frame
        self._clock.append(key)
        return frame

    def _make_room(self) -> None:
        if self.capacity is None or len(self._frames) < self.capacity:
            return
        # Second-chance sweep: skip pinned frames, clear one reference bit
        # per pass; after two full revolutions every unpinned frame has had
        # its bit cleared, so finding no victim means everything is pinned.
        scanned, limit = 0, 2 * len(self._clock)
        while scanned < limit:
            if self._hand >= len(self._clock):
                self._hand = 0
            key = self._clock[self._hand]
            frame = self._frames[key]
            if frame.pin_count > 0:
                self._hand += 1
            elif frame.ref:
                frame.ref = False
                self._hand += 1
            else:
                self._evict(key)
                del self._clock[self._hand]  # hand now points at the next
                return
            scanned += 1
        raise StorageError(
            f"buffer pool exhausted: all {len(self._frames)} frames pinned")

    def _evict(self, key: tuple[int, int]) -> None:
        frame = self._frames.pop(key)
        fid, pid = key
        if frame.dirty:
            view = self._views[fid]
            view.file.write_page(pid, frame.buf)  # stamps the page crc
            self.stats.pages_written += 1
            view.stats.pages_written += 1
        self.stats.evictions += 1
        self._views[fid].stats.evictions += 1

    # -- durability --------------------------------------------------------

    def flush(self) -> None:
        """Write back every dirty frame (frames stay resident)."""
        for key in sorted(self._frames):
            frame = self._frames[key]
            if frame.dirty:
                fid, pid = key
                view = self._views[fid]
                view.file.write_page(pid, frame.buf)  # stamps the page crc
                self.stats.pages_written += 1
                view.stats.pages_written += 1
                frame.dirty = False
        for view in self._views:
            view.file.flush()

    def close(self) -> None:
        if self.pinned_total():
            raise StorageError("closing buffer pool with pinned pages")
        self.flush()
