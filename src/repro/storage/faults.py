"""Deterministic fault injection for the storage stack.

The test harness for the integrity subsystem: every physical I/O of a
:class:`~repro.storage.disk.PageFile` (reads, writes, flushes,
truncates), plus the durability steps of the atomic saver (``fsync``,
``os.replace``, directory sync), is numbered with a global operation
index while a :class:`FaultPlan` is installed, and the plan can attach a
fault to any index:

``crash``
    the simulated process dies *before* the operation: a
    :class:`CrashInjected` escapes and every later operation on any
    wrapped file raises it too — nothing reaches the disk after death.
``torn``
    a write persists only its first ``keep_bytes`` bytes and then the
    process dies (a torn sector at power-off).
``short``
    a write silently persists only a prefix but reports success (a lost
    sector the checksums must catch later).
``bitflip``
    one bit of the data is flipped in transit (write or read).
``oserror``
    the operation raises a transient ``OSError`` once; the file stays
    usable.

Plans are deterministic: the same plan against the same I/O sequence
fires at exactly the same operations, so crash-point sweeps
(``for i in range(total_ops): inject crash at i``) are exhaustive and
reproducible.  Installation is process-global via :func:`inject` —
storage code calls :func:`wrap_file` / :func:`fsync` / :func:`replace` /
:func:`dir_fsync`, which are all pass-throughs when no plan is active.
"""

from __future__ import annotations

import errno as _errno
import os
import threading
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field


class CrashInjected(Exception):
    """The simulated process died at an injected crash point.

    Deliberately *not* a :class:`~repro.errors.ReproError`: nothing in the
    production code paths may catch and absorb it — it must escape to the
    test harness like a real crash escapes to the OS.
    """


@dataclass
class Fault:
    kind: str                 # crash | torn | short | bitflip | oserror
    keep_bytes: int = 0       # torn/short: prefix that reaches the disk
    byte: int = 0             # bitflip: byte index within the buffer
    bit: int = 0              # bitflip: bit index within that byte
    err: int = _errno.EIO     # oserror: errno of the transient failure


@dataclass
class FaultPlan:
    """Faults keyed by global operation index, plus the op counter."""

    faults: dict[int, Fault] = field(default_factory=dict)
    ops: int = 0                       # operations seen so far
    fired: list = field(default_factory=list)   # (op, kind) actually hit
    crashed: bool = False

    # -- convenience constructors -----------------------------------------

    @classmethod
    def crash_at(cls, op: int) -> "FaultPlan":
        return cls({op: Fault("crash")})

    @classmethod
    def torn_at(cls, op: int, keep_bytes: int) -> "FaultPlan":
        return cls({op: Fault("torn", keep_bytes=keep_bytes)})

    @classmethod
    def short_at(cls, op: int, keep_bytes: int) -> "FaultPlan":
        return cls({op: Fault("short", keep_bytes=keep_bytes)})

    @classmethod
    def bitflip_at(cls, op: int, byte: int, bit: int = 0) -> "FaultPlan":
        return cls({op: Fault("bitflip", byte=byte, bit=bit)})

    @classmethod
    def oserror_at(cls, op: int, err: int = _errno.EIO) -> "FaultPlan":
        return cls({op: Fault("oserror", err=err)})

    # -- the per-operation checkpoint --------------------------------------

    def begin_op(self, what: str) -> Fault | None:
        """Number one operation; raise for crash/oserror faults, return
        the fault for data-modifying kinds, None for a clean op."""
        if self.crashed:
            raise CrashInjected(f"I/O after simulated crash ({what})")
        op, self.ops = self.ops, self.ops + 1
        fault = self.faults.get(op)
        if fault is None:
            return None
        self.fired.append((op, fault.kind))
        if fault.kind == "crash":
            self.crashed = True
            raise CrashInjected(f"injected crash at op {op} ({what})")
        if fault.kind == "oserror":
            del self.faults[op]  # transient: the retry path succeeds
            raise OSError(fault.err,
                          f"injected transient I/O error at op {op} ({what})")
        return fault

    def die(self, op_desc: str) -> None:
        self.crashed = True
        raise CrashInjected(f"injected crash {op_desc}")


class FaultInjector(FaultPlan):
    """A thread-safe, rate-driven plan for the **live-server** chaos
    harness.

    The crash-sweep plans above pre-enumerate ``{op: Fault}`` against a
    single-threaded I/O sequence.  A resident server is different: many
    worker threads share one buffer pool, so (a) the op counter must be
    taken under a lock, and (b) the schedule cannot be a fixed op list —
    interleaving makes op indices non-reproducible across runs.  The
    injector instead decides *per operation* from a hash of
    ``(seed, op)``: deterministic for a given seed, stable in
    distribution under any interleaving.

    Only the **recoverable read-side** kinds are offered — ``oserror``
    (transient, the pool's retry path absorbs it), ``bitflip`` and
    ``torn`` (the page CRC catches them; the bytes *on disk* stay clean,
    so quarantine's re-verify probe finds a healthy member and
    reinstates it).  ``crash`` is deliberately absent: the server must
    stay alive.  Writes pass clean by default (the serving workload is
    read-only; stats flushes must not tear).

    :meth:`pause` stops new faults so the harness can watch the
    supervisor drain the quarantine and prove recovery; :meth:`resume`
    re-arms it.
    """

    def __init__(self, seed: int = 0, rate: float = 0.05,
                 kinds: tuple[str, ...] = ("oserror", "bitflip", "torn"),
                 reads_only: bool = True):
        super().__init__()
        for k in kinds:
            if k not in ("oserror", "bitflip", "torn"):
                raise ValueError(f"live-server injector cannot fire {k!r}")
        self.seed = seed
        self.rate = rate
        self.kinds = tuple(kinds)
        self.reads_only = reads_only
        self.paused = False
        self.by_kind: dict[str, int] = {k: 0 for k in kinds}
        self._lock = threading.Lock()

    def pause(self) -> None:
        with self._lock:
            self.paused = True

    def resume(self) -> None:
        with self._lock:
            self.paused = False

    def begin_op(self, what: str) -> Fault | None:
        with self._lock:
            op, self.ops = self.ops, self.ops + 1
            if self.paused or (self.reads_only and what != "read"):
                return None
            h = zlib.crc32(f"{self.seed}:{op}".encode("ascii"))
            if (h & 0xFFFF) / 65536.0 >= self.rate:
                return None
            kind = self.kinds[(h >> 16) % len(self.kinds)]
            self.fired.append((op, kind))
            self.by_kind[kind] += 1
            if kind == "oserror":
                raise OSError(_errno.EIO,
                              f"injected transient I/O error at op {op} "
                              f"({what})")
            if kind == "bitflip":
                return Fault("bitflip", byte=(h >> 4) % 4096, bit=h & 7)
            # torn read: keep a short non-empty prefix — the zero padding
            # in read_page() then trips the page CRC, never silent
            return Fault("torn", keep_bytes=16 + (h >> 8) % 240)


_PLAN: FaultPlan | None = None


@contextmanager
def inject(plan: FaultPlan):
    """Install ``plan`` for every PageFile opened inside the block."""
    global _PLAN
    prev, _PLAN = _PLAN, plan
    try:
        yield plan
    finally:
        _PLAN = prev


def active_plan() -> FaultPlan | None:
    return _PLAN


class FaultyFile:
    """A binary file object that consults a :class:`FaultPlan` on every
    operation.  API-compatible with the subset PageFile uses."""

    def __init__(self, fobj, plan: FaultPlan):
        self._f = fobj
        self.plan = plan

    # positioning carries no fault potential — not numbered
    def seek(self, *a):
        return self._f.seek(*a)

    def tell(self):
        return self._f.tell()

    def fileno(self):
        return self._f.fileno()

    def read(self, n: int = -1) -> bytes:
        fault = self.plan.begin_op("read")
        data = self._f.read(n)
        if fault is None:
            return data
        if fault.kind == "bitflip" and data:
            out = bytearray(data)
            out[fault.byte % len(out)] ^= 1 << (fault.bit & 7)
            return bytes(out)
        if fault.kind in ("torn", "short"):
            return data[:fault.keep_bytes]
        return data

    def write(self, data) -> int:
        fault = self.plan.begin_op("write")
        if fault is None:
            return self._f.write(data)
        if fault.kind == "bitflip" and len(data):
            out = bytearray(data)
            out[fault.byte % len(out)] ^= 1 << (fault.bit & 7)
            return self._f.write(bytes(out))
        if fault.kind == "short":
            self._f.write(data[:fault.keep_bytes])
            return len(data)  # reported complete; the bytes are gone
        if fault.kind == "torn":
            self._f.write(data[:fault.keep_bytes])
            self._f.flush()
            self.plan.die(f"mid-write (torn after {fault.keep_bytes} bytes)")
        return self._f.write(data)

    def truncate(self, size=None):
        self.plan.begin_op("truncate")
        return self._f.truncate(size)

    def flush(self):
        self.plan.begin_op("flush")
        return self._f.flush()

    def close(self):
        # closing after a crash is the harness reclaiming the fd, not the
        # dead process doing I/O — always succeeds
        try:
            self._f.close()
        except (OSError, ValueError):
            if not self.plan.crashed:
                raise


def wrap_file(fobj):
    """Wrap a freshly opened file in the active plan (pass-through when
    no plan is installed)."""
    return FaultyFile(fobj, _PLAN) if _PLAN is not None else fobj


def fsync(fobj) -> None:
    """``os.fsync`` routed through the fault plan (a crash *at* the sync
    point is the classic torn-durability scenario)."""
    if isinstance(fobj, FaultyFile):
        fobj.plan.begin_op("fsync")
        fobj._f.flush()
        os.fsync(fobj._f.fileno())
    else:
        fobj.flush()
        os.fsync(fobj.fileno())


def replace(src: str, dst: str) -> None:
    """``os.replace`` routed through the fault plan — the atomic commit
    point of :func:`~repro.storage.vdocfile.save_vdoc`."""
    if _PLAN is not None:
        _PLAN.begin_op("replace")
    os.replace(src, dst)


def dir_fsync(path: str) -> None:
    """fsync a directory so a rename is durable, fault-checkpointed."""
    if _PLAN is not None:
        _PLAN.begin_op("dirsync")
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
