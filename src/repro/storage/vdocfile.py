"""On-disk vectorized documents: ``save_vdoc`` / ``open_vdoc``.

File layout (all inside one :class:`PageFile`, format v2 — per-page
checksums, see :mod:`repro.storage.disk`):

* one heap-file chain per data vector — the values in document order,
  one string record each (XMILL-style containers);
* one heap for the skeleton — one record per interned node, in id order:
  ``label UTF-8 bytes, NUL, then (child_id, count) int64 pairs``.  Node
  ids are interning order, so replaying ``intern()`` record by record
  reproduces the identical hash-consed store (ids are asserted);
* one heap holding a single JSON catalog record: format tag, root id,
  and per-vector ``{path, n, head page, chain length}``; its head page id
  is stored in the page-file header.

``save_vdoc`` is atomic and durable: it writes to a temp file in the
destination directory, fsyncs it, ``os.replace``\\ s it into place and
fsyncs the directory — a crash at any point leaves either the old file
or the new file at ``path``, never a partial one (machine-checked by the
crash-point sweep in the test suite, via :mod:`repro.storage.faults`).

Opening reads *only* the catalog and skeleton (the paper's premise that
the skeleton lives in main memory), after validating the catalog against
a strict schema — every malformed byte pattern at this boundary surfaces
as :class:`StorageError`/:class:`CorruptDataError`, never as a raw
``json``/``unicode``/``KeyError``.  Each vector becomes a
:class:`LazyVector`: no pages of its chain are touched until the first
``scan()`` (or any other column access), which materializes the column to
numpy through the buffer pool in one sequential chain pass and charges
the physical reads to the vector — the counter the engine checks against
``n_pages`` ("each data vector is scanned at most once", now falsifiable
against real page I/O).
"""

from __future__ import annotations

import json
import os
import struct
import tempfile

import numpy as np

from ..core.skeleton import NodeStore
from ..core.vdoc import VectorizedDocument
from ..core.vectors import Vector
from ..errors import CorruptDataError, StorageError
from . import faults
from .buffer import BufferPool
from .disk import PageFile
from .heap import HeapFile
from .pages import DEFAULT_PAGE_SIZE

VDOC_FORMAT = 2

_RUN = struct.Struct("<qq")


def _encode_node(label: str, children) -> bytes:
    parts = [label.encode("utf-8"), b"\x00"]
    for child, count in children:
        parts.append(_RUN.pack(child, count))
    return b"".join(parts)


def _decode_node(record: bytes) -> tuple[str, tuple]:
    nul = record.find(b"\x00")
    if nul < 0 or (len(record) - nul - 1) % _RUN.size:
        raise CorruptDataError("corrupt skeleton node record")
    try:
        label = record[:nul].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise CorruptDataError(
            f"skeleton node label is not valid UTF-8 ({exc})") from exc
    runs = tuple(_RUN.iter_unpack(record[nul + 1:]))
    return label, runs


class LazyVector(Vector):
    """A data vector whose column lives on disk until first touched.

    Materialization is one sequential pass over the heap chain through the
    buffer pool; the resulting numpy column is cached, so the pass happens
    at most once per open document (``drop_cache()`` releases it, e.g. for
    cold-cache benchmarking).  ``pages_read`` counts the *physical* reads
    charged to this vector — at most ``n_pages`` per materialization.
    """

    __slots__ = ("_heap", "_n")

    def __init__(self, path: tuple, n: int, heap: HeapFile):
        self.path = path
        self._values = None
        self._floats = None
        self.scan_count = 0
        self.pages_read = 0
        self.n_pages = heap.n_pages or 0
        self._io_baseline = 0
        self._heap = heap
        self._n = n

    def __len__(self) -> int:  # no materialization just to count
        return self._n

    def _col(self) -> np.ndarray:
        if self._values is None:
            pool = self._heap.pool
            before = pool.stats.pages_read
            values = []
            for i, rec in enumerate(self._heap.records()):
                try:
                    values.append(rec.decode("utf-8"))
                except UnicodeDecodeError as exc:
                    raise CorruptDataError(
                        f"vector {'/'.join(self.path)}: value {i} is not "
                        f"valid UTF-8 ({exc})") from exc
            self.pages_read += pool.stats.pages_read - before
            if len(values) != self._n:
                raise CorruptDataError(
                    f"vector {'/'.join(self.path)}: catalog says {self._n} "
                    f"values, chain holds {len(values)}")
            col = np.asarray(values, dtype=np.str_)
            if col.dtype.kind != "U":
                col = col.astype(np.str_)
            self._values = col
        return self._values

    def is_loaded(self) -> bool:
        return self._values is not None

    def drop_cache(self) -> None:
        """Release the materialized column (the next access re-reads the
        chain through the pool — cold or warm depending on the pool)."""
        self._values = None
        self._floats = None


class DiskVectorizedDocument(VectorizedDocument):
    """A :class:`VectorizedDocument` whose vectors are disk-backed.

    The skeleton and catalog are memory-resident; every vector is a
    :class:`LazyVector` over ``self.pool`` — which may be *shared* with
    other open documents (a repository opens every member over one pool);
    ``self.view`` is this document's per-file face of it, carrying the
    per-document I/O counters.  Query evaluation is unchanged —
    ``eval_query`` / ``eval_xq`` work as for the in-memory document, with
    the engine additionally checking page-read counts and pin leaks
    (pool-wide).
    """

    def __init__(self, store, root, vectors, pool: BufferPool,
                 file: PageFile, view=None):
        super().__init__(store, root, vectors)
        self.pool = pool
        self.file = file
        self.view = view if view is not None else pool.views()[0]

    def io_stats(self) -> dict:
        """Per-document physical/logical I/O counters, plus the pool-wide
        aggregates (``pool_*``) — distinct when the pool is shared."""
        stats = self.view.stats.as_dict()
        for k, v in self.pool.stats.as_dict().items():
            stats[f"pool_{k}"] = v
        stats["pool_capacity"] = self.pool.capacity
        stats["pool_resident"] = self.pool.resident()
        stats["pinned"] = self.pool.pinned_total()
        return stats

    def drop_caches(self) -> None:
        """Forget every materialized column (buffer pool left as is)."""
        for vec in self.vectors.values():
            vec.drop_cache()

    def close(self) -> None:
        self.file.close()

    def __enter__(self) -> "DiskVectorizedDocument":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _write_vdoc(vdoc: VectorizedDocument, file: PageFile) -> dict:
    """Write the heaps + catalog into ``file`` and return the meta dict."""
    pool = BufferPool(file, capacity=None)  # writer: keep all resident
    catalog = []
    for vpath in sorted(vdoc.vectors):
        vec = vdoc.vectors[vpath]
        heap = HeapFile.create(pool)
        for value in vec.tolist():
            heap.append(value.encode("utf-8"))
        catalog.append({"path": list(vpath), "n": len(vec),
                        "head": heap.head, "pages": heap.n_pages})
    store = vdoc.store
    skel = HeapFile.create(pool)
    for nid in range(len(store)):
        skel.append(_encode_node(store.label(nid), store.children(nid)))
    meta = {
        "format": VDOC_FORMAT,
        "root": vdoc.root,
        "n_nodes": len(store),
        "skeleton": {"head": skel.head, "pages": skel.n_pages},
        "vectors": catalog,
    }
    meta_heap = HeapFile.create(pool)
    meta_heap.append(json.dumps(meta, separators=(",", ":")).encode("utf-8"))
    pool.flush()
    file.set_meta(meta_heap.head)
    return meta


def save_vdoc(vdoc: VectorizedDocument, path: str,
              page_size: int = DEFAULT_PAGE_SIZE) -> dict:
    """Atomically write ``vdoc`` to ``path`` in the paged on-disk format;
    returns a summary (pages, bytes, vector count).

    The document is written to a temp file in the same directory, fsynced,
    then renamed over ``path`` (``os.replace``) with a directory fsync —
    so a crash at any point leaves either the previous file or the
    complete new one at ``path``, never a torn mix.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(dir=directory,
                               prefix=os.path.basename(path) + ".",
                               suffix=".tmp")
    os.close(fd)
    try:
        file = PageFile.create(tmp, page_size)
        try:
            meta = _write_vdoc(vdoc, file)
            file.flush()
            summary = {
                "path": path,
                "page_size": page_size,
                "pages": file.n_pages,
                "bytes": file.size_bytes(),
                "vectors": len(meta["vectors"]),
                "values": sum(e["n"] for e in meta["vectors"]),
                "skeleton_nodes": meta["n_nodes"],
            }
            file.sync_close()  # flush + fsync + close: durable before rename
        except BaseException:
            file.abort()
            raise
        faults.replace(tmp, path)  # the atomic commit point
        faults.dir_fsync(directory)
        return summary
    except faults.CrashInjected:
        raise  # simulated process death: no cleanup runs, tmp is left over
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _req_int(value, what: str, lo: int = 0, hi: int | None = None) -> int:
    if not isinstance(value, int) or isinstance(value, bool) or \
            value < lo or (hi is not None and value >= hi):
        raise CorruptDataError(f"vdoc catalog: {what} is {value!r}, expected "
                               f"an integer >= {lo}"
                               + (f" and < {hi}" if hi is not None else ""))
    return value


def _check_catalog(meta, path: str, n_pages: int) -> None:
    """Strict schema validation of the decoded catalog JSON — a corrupt
    catalog must fail here, not as a ``TypeError`` deep in a chain walk."""
    if not isinstance(meta, dict):
        raise CorruptDataError(f"{path}: vdoc catalog is not a JSON object")
    if meta.get("format") != VDOC_FORMAT:
        raise StorageError(
            f"{path}: unsupported vdoc format {meta.get('format')!r}")
    _req_int(meta.get("root"), "root node id", lo=1)
    _req_int(meta.get("n_nodes"), "skeleton node count", lo=1)
    skel = meta.get("skeleton")
    if not isinstance(skel, dict):
        raise CorruptDataError(f"{path}: vdoc catalog has no skeleton entry")
    _req_int(skel.get("head"), "skeleton head page", lo=0, hi=n_pages)
    _req_int(skel.get("pages"), "skeleton chain length", lo=1,
             hi=n_pages + 1)
    vectors = meta.get("vectors")
    if not isinstance(vectors, list):
        raise CorruptDataError(f"{path}: vdoc catalog has no vector list")
    for entry in vectors:
        if not isinstance(entry, dict):
            raise CorruptDataError(f"{path}: vdoc catalog vector entry is "
                                   f"not an object")
        vpath = entry.get("path")
        if not isinstance(vpath, list) or not vpath or \
                not all(isinstance(s, str) for s in vpath):
            raise CorruptDataError(
                f"{path}: vector entry path {vpath!r} is not a list of "
                f"labels")
        _req_int(entry.get("n"), f"value count of {'/'.join(vpath)}", lo=0)
        _req_int(entry.get("head"), f"head page of {'/'.join(vpath)}",
                 lo=0, hi=n_pages)
        _req_int(entry.get("pages"), f"chain length of {'/'.join(vpath)}",
                 lo=1, hi=n_pages + 1)


def open_vdoc(path: str, pool_pages: int | None = None,
              verify_checksums: bool = True,
              pool: BufferPool | None = None) -> DiskVectorizedDocument:
    """Open a saved vdoc with a buffer pool of ``pool_pages`` frames
    (``None`` → unbounded).  Reads the catalog and skeleton eagerly,
    vectors lazily.  ``verify_checksums=False`` skips the per-read page
    checksum (benchmarking the verification overhead only).

    Pass an existing ``pool`` to open the document over a *shared* buffer
    pool (the repository layer opens every member this way); the file is
    attached as a new :class:`~repro.storage.buffer.FileView` and
    ``pool_pages``/``verify_checksums`` are ignored in favour of the
    pool's own settings."""
    file = PageFile.open(path)
    try:
        if pool is None:
            pool = BufferPool(capacity=pool_pages, verify=verify_checksums)
        view = pool.attach(file)
        if file.meta_page < 0:
            raise StorageError(f"{path}: page file has no vdoc catalog")
        if file.meta_page >= file.n_pages:
            raise CorruptDataError(
                f"{path}: catalog head page {file.meta_page} outside the "
                f"file ({file.n_pages} pages)")
        meta_records = list(HeapFile(view, file.meta_page).records())
        if not meta_records:
            raise StorageError(f"{path}: empty vdoc catalog")
        try:
            meta = json.loads(meta_records[0].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CorruptDataError(
                f"{path}: vdoc catalog is not valid JSON ({exc})") from exc
        _check_catalog(meta, path, file.n_pages)

        store = NodeStore()
        skel = HeapFile(view, meta["skeleton"]["head"],
                        n_pages=meta["skeleton"]["pages"])
        for nid, record in enumerate(skel.records()):
            label, runs = _decode_node(record)
            if nid == 0:
                if label != "#" or runs:
                    raise CorruptDataError(
                        f"{path}: node 0 is not the text marker")
                continue
            for child, count in runs:
                if not 0 <= child < nid or count < 1:
                    raise CorruptDataError(
                        f"{path}: skeleton node {nid} has child run "
                        f"({child}, {count}) outside the already-interned "
                        f"prefix")
            interned = store.intern(label, runs)
            if interned != nid:
                raise CorruptDataError(
                    f"{path}: skeleton records out of interning order "
                    f"(node {nid} interned as {interned})")
        if len(store) != meta["n_nodes"]:
            raise CorruptDataError(
                f"{path}: catalog says {meta['n_nodes']} skeleton nodes, "
                f"file holds {len(store)}")
        if not 1 <= meta["root"] < len(store):
            raise CorruptDataError(
                f"{path}: root id {meta['root']} outside the skeleton "
                f"({len(store)} nodes)")

        vectors: dict[tuple, LazyVector] = {}
        for entry in meta["vectors"]:
            vpath = tuple(entry["path"])
            heap = HeapFile(view, entry["head"], n_pages=entry["pages"])
            vectors[vpath] = LazyVector(vpath, entry["n"], heap)
        return DiskVectorizedDocument(store, meta["root"], vectors, pool, file,
                                      view=view)
    except BaseException:
        file.abort()  # never write back to a file we failed to open
        raise
