"""On-disk vectorized documents: ``save_vdoc`` / ``open_vdoc``.

File layout (all inside one :class:`PageFile`, format v2 — per-page
checksums, see :mod:`repro.storage.disk`):

* one heap-file chain per data vector — the values in document order
  (XMILL-style containers).  Up to format v3 that is one plain UTF-8
  record per value; format v4 stores each vector **encoded** by a
  per-vector codec (:mod:`repro.storage.codecs`) chosen at save time by
  sampled compression ratio — the codec name and the exact logical
  (UTF-8) vs physical (encoded) byte counts are recorded on the
  vector's catalog entry, so tools reason about compression with zero
  page I/O;
* one heap for the skeleton — one record per interned node, in id order:
  ``label UTF-8 bytes, NUL, then (child_id, count) int64 pairs``.  Node
  ids are interning order, so replaying ``intern()`` record by record
  reproduces the identical hash-consed store (ids are asserted);
* one heap holding a single JSON catalog record: format tag, root id,
  and per-vector ``{path, n, head page, chain length}``; its head page id
  is stored in the page-file header.

``save_vdoc`` is atomic and durable: it writes to a temp file in the
destination directory, fsyncs it, ``os.replace``\\ s it into place and
fsyncs the directory — a crash at any point leaves either the old file
or the new file at ``path``, never a partial one (machine-checked by the
crash-point sweep in the test suite, via :mod:`repro.storage.faults`).

Opening reads *only* the catalog and skeleton (the paper's premise that
the skeleton lives in main memory), after validating the catalog against
a strict schema — every malformed byte pattern at this boundary surfaces
as :class:`StorageError`/:class:`CorruptDataError`, never as a raw
``json``/``unicode``/``KeyError``.  Each vector becomes a
:class:`LazyVector`: no pages of its chain are touched until the first
``scan()`` (or any other column access), which materializes the column to
numpy through the buffer pool in one sequential chain pass and charges
the physical reads to the vector — the counter the engine checks against
``n_pages`` ("each data vector is scanned at most once", now falsifiable
against real page I/O).
"""

from __future__ import annotations

import json
import os
import struct
import tempfile
import threading

import numpy as np

from ..core.skeleton import NodeStore
from ..core.vdoc import VectorizedDocument
from ..core.vectors import Vector, active_context, parse_float_column
from ..errors import CorruptDataError, StorageError
from ..index import (build_value_index, build_value_index_from_codes,
                     decode_segment, encode_segment)
from . import faults
from .buffer import BufferPool
from .codecs import CODECS, IDENTITY, encode_column
from .disk import PageFile
from .heap import HeapFile
from .pages import DEFAULT_PAGE_SIZE

#: current write format: v4 = v3 + per-vector storage codecs (the heap
#: chain holds the codec's encoded records instead of one UTF-8 record
#: per value; the catalog entry gains ``codec``/``lbytes``/``pbytes``).
#: v3 = v2 + optional per-vector value-index segments (two extra heap
#: chains per indexed vector, announced by an ``"index"`` object on the
#: vector's catalog entry).  v2 and v3 files still open and query
#: unchanged; ``save_vdoc(..., fmt=3)`` still writes the v3 layout.
VDOC_FORMAT = 4
VDOC_FORMATS = (2, 3, 4)
WRITABLE_FORMATS = (3, 4)

_RUN = struct.Struct("<qq")


def _encode_node(label: str, children) -> bytes:
    parts = [label.encode("utf-8"), b"\x00"]
    for child, count in children:
        parts.append(_RUN.pack(child, count))
    return b"".join(parts)


def _decode_node(record: bytes) -> tuple[str, tuple]:
    nul = record.find(b"\x00")
    if nul < 0 or (len(record) - nul - 1) % _RUN.size:
        raise CorruptDataError("corrupt skeleton node record")
    try:
        label = record[:nul].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise CorruptDataError(
            f"skeleton node label is not valid UTF-8 ({exc})") from exc
    runs = tuple(_RUN.iter_unpack(record[nul + 1:]))
    return label, runs


class LazyVector(Vector):
    """A data vector whose column lives on disk until first touched.

    Materialization is one sequential pass over the heap chain through the
    buffer pool, decoding the records through the vector's storage codec
    (:mod:`repro.storage.codecs`); the resulting *state* is cached, so the
    pass happens at most once per open document (``drop_cache()`` releases
    it, e.g. for cold-cache benchmarking).  For an eager codec (identity,
    zlib) the state is the string column itself; for ``dict``/``delta``
    the state is the coded form, and the string column is only derived —
    and the decode only *charged* — when something actually asks for
    strings.  A dictionary-coded vector queried purely through
    :meth:`dict_codes` (equality predicates in code space) or
    :meth:`floats` (ordering predicates via the parsed keys) therefore
    reports **zero decoded values** — the machine-checkable form of
    "queried without decoding".

    ``pages_read`` counts the *physical* reads charged to this vector —
    at most ``n_pages`` per materialization — measured as the
    materializing thread's own read delta
    (:meth:`~repro.storage.buffer.BufferPool.pages_read_local`) so a
    concurrent request faulting other pages never inflates it, and
    reported to the thread's active evaluation context, which bounds it.
    Concurrent first touches are serialized on a per-vector lock: one
    thread materializes, the others reuse the published state.
    """

    __slots__ = ("_heap", "_n", "_mat_lock", "_codec", "_state",
                 "_lbytes", "_pbytes")

    def __init__(self, path: tuple, n: int, heap: HeapFile,
                 codec=IDENTITY, lbytes: int | None = None,
                 pbytes: int | None = None):
        self.path = path
        self._values = None
        self._floats = None
        self.pages_read = 0
        self.n_pages = heap.n_pages or 0
        self._heap = heap
        self._n = n
        self._codec = codec
        self._state = None
        self._lbytes = lbytes   # logical (UTF-8) bytes, None pre-v4
        self._pbytes = pbytes   # encoded on-disk bytes, None pre-v4
        self._mat_lock = threading.Lock()

    def __len__(self) -> int:  # no materialization just to count
        return self._n

    @property
    def codec_name(self) -> str:
        return self._codec.name

    def _charge(self, logical: int = 0, physical: int = 0,
                values: int = 0) -> None:
        """Report codec traffic to the pool stats (``--io-stats`` /
        ``/stats``) and decoded values to the active evaluation context
        (the zero-decode assertion)."""
        holder = self._heap.pool
        pool = getattr(holder, "pool", holder)   # FileView -> its pool
        view = holder if holder is not pool else None
        pool.note_decode(view, logical=logical, physical=physical,
                         values=values)
        if values:
            ctx = active_context()
            if ctx is not None:
                ctx.note_decode(self, values)

    def _ensure_state(self):
        state = self._state
        if state is None:
            with self._mat_lock:
                state = self._state
                if state is None:
                    state = self._materialize()
                    self._state = state
        return state

    def _materialize(self):
        pool = self._heap.pool
        before = pool.pages_read_local()
        records = list(self._heap.records())
        read = pool.pages_read_local() - before
        self.pages_read += read
        ctx = active_context()
        if ctx is not None:
            ctx.note_io(self, read)
        enc = sum(len(r) for r in records)
        if self._pbytes is not None and enc != self._pbytes:
            raise CorruptDataError(
                f"vector {'/'.join(self.path)}: catalog says {self._pbytes}"
                f" encoded bytes, chain holds {enc}")
        state = self._codec.decode(
            self.path, self._n, records, self._lbytes,
            checkpoint=ctx.checkpoint if ctx is not None else None)
        logical = self._lbytes if self._lbytes is not None else enc
        self._charge(logical=logical, physical=enc,
                     values=self._n if self._codec.eager_column else 0)
        return state

    def _col(self) -> np.ndarray:
        col = self._values
        if col is None:
            state = self._ensure_state()
            with self._mat_lock:
                col = self._values
                if col is None:
                    col = self._codec.column(state)
                    if not self._codec.eager_column:
                        # the decode happens here, not at materialization
                        self._charge(values=self._n)
                    self._values = col
        return col

    def dict_codes(self):
        """``(sorted keys, int64 codes)`` of a dictionary-coded vector —
        loads the coded state (counting pages and one scan as usual) but
        never builds the string column."""
        if self._codec.name != "dict":
            return None
        return self._codec.codes(self._ensure_state())

    def floats(self) -> np.ndarray:
        """Float view without decoding where the codec allows it: delta
        state *is* numeric; a dict state parses only the ``u`` distinct
        keys and gathers — same per-value semantics
        (:func:`~repro.core.vectors.parse_float_column`) as the column
        path, so results are byte-identical."""
        if self._floats is None:
            state = self._ensure_state()
            f = self._codec.floats(state)
            if f is None:
                dc = self._codec.codes(state)
                if dc is not None:
                    keys, codes = dc
                    f = parse_float_column(np.asarray(keys,
                                                      dtype=np.str_))[codes]
                else:
                    f = parse_float_column(self._col())
            self._floats = f
        return self._floats

    def is_loaded(self) -> bool:
        return self._state is not None

    def drop_cache(self) -> None:
        """Release the materialized state and column (the next access
        re-reads the chain through the pool — cold or warm depending on
        the pool)."""
        self._state = None
        self._values = None
        self._floats = None


class DiskValueIndex:
    """Lazy handle over one vector's persistent value-index segment.

    Mirrors :class:`LazyVector`'s contract for a pair of heap chains: no
    page of either chain is touched until the first :meth:`get`, which
    materializes (and structurally validates) the
    :class:`~repro.index.ValueIndex` through the buffer pool in one
    sequential pass per chain and charges the physical reads here.  The
    handle carries the same accounting surface as a vector (``path``,
    cumulative ``pages_read``, ``n_pages``) — ``vdoc.io_units()`` includes
    it, so the per-context scan-once / bounded-physical-I/O assertions
    cover index probes too: a materialization reports one scan and its
    thread-local read delta to the active evaluation context, under the
    same per-handle lock discipline as :class:`LazyVector`.  ``distinct``
    comes from the catalog: the planner prices a probe without I/O.
    """

    __slots__ = ("path", "vpath", "distinct", "n_buckets",
                 "pages_read", "n_pages", "_keys_heap",
                 "_data_heap", "_n", "_vi", "_mat_lock")

    def __init__(self, vpath: tuple, n: int, entry: dict, view):
        self.vpath = vpath
        #: diagnostic path: distinguishes the segment from its vector in
        #: invariant-violation messages
        self.path = (*vpath, "[vindex]")
        self.distinct = entry["distinct"]
        self.n_buckets = entry["buckets"]
        self._keys_heap = HeapFile(view, entry["keys_head"],
                                   n_pages=entry["keys_pages"])
        self._data_heap = HeapFile(view, entry["data_head"],
                                   n_pages=entry["data_pages"])
        self._n = n
        self._vi = None
        self.pages_read = 0
        self.n_pages = entry["keys_pages"] + entry["data_pages"]
        self._mat_lock = threading.Lock()

    def get(self):
        """The probe-able index, materialized on first use."""
        vi = self._vi
        if vi is None:
            with self._mat_lock:
                vi = self._vi
                if vi is None:
                    vi = self._materialize()
                    self._vi = vi
        return vi

    def _materialize(self):
        pool = self._keys_heap.pool
        before = pool.pages_read_local()
        keys = list(self._keys_heap.records())
        data = list(self._data_heap.records())
        read = pool.pages_read_local() - before
        self.pages_read += read
        ctx = active_context()
        if ctx is not None:
            ctx.note_scan(self)
            ctx.note_io(self, read)
        vi = decode_segment(self.vpath, self._n, keys, data)
        if vi.distinct != self.distinct:
            raise CorruptDataError(
                f"vindex {'/'.join(self.vpath)}: catalog says "
                f"{self.distinct} distinct keys, segment holds "
                f"{vi.distinct}")
        return vi

    def is_loaded(self) -> bool:
        return self._vi is not None

    def drop_cache(self) -> None:
        self._vi = None


class DiskVectorizedDocument(VectorizedDocument):
    """A :class:`VectorizedDocument` whose vectors are disk-backed.

    The skeleton and catalog are memory-resident; every vector is a
    :class:`LazyVector` over ``self.pool`` — which may be *shared* with
    other open documents (a repository opens every member over one pool);
    ``self.view`` is this document's per-file face of it, carrying the
    per-document I/O counters.  Query evaluation is unchanged —
    ``eval_query`` / ``eval_xq`` work as for the in-memory document, with
    the engine additionally checking page-read counts and pin leaks
    (pool-wide).
    """

    def __init__(self, store, root, vectors, pool: BufferPool,
                 file: PageFile, view=None):
        super().__init__(store, root, vectors)
        self.pool = pool
        self.file = file
        self.view = view if view is not None else pool.views()[0]

    def io_stats(self) -> dict:
        """Per-document physical/logical I/O counters, plus the pool-wide
        aggregates (``pool_*``) — distinct when the pool is shared."""
        stats = self.view.stats.as_dict()
        for k, v in self.pool.stats.as_dict().items():
            stats[f"pool_{k}"] = v
        stats["pool_capacity"] = self.pool.capacity
        stats["pool_resident"] = self.pool.resident()
        stats["pinned"] = self.pool.pinned_total()
        return stats

    def io_units(self) -> list:
        """Vectors plus persistent index segments — every disk-backed
        structure the engine's I/O invariants must cover."""
        return list(self.vectors.values()) + list(self._vindexes.values())

    def codec_of(self, path) -> str | None:
        """Cataloged storage-codec name of one vector (no page I/O) —
        the planner consults this to stamp ``access='dict'``."""
        vec = self.vectors.get(tuple(path))
        return vec.codec_name if vec is not None else None

    def compression_stats(self) -> dict:
        """Per-vector codec + logical/physical bytes and the overall
        compression ratio, straight from the catalog (zero page I/O —
        what ``repo ls`` / ``index ls`` print).  Byte counts are ``None``
        for pre-v4 files, which don't catalog them."""
        vecs = []
        logical = physical = 0
        known = True
        for vpath in sorted(self.vectors):
            vec = self.vectors[vpath]
            vecs.append({"path": "/".join(vpath), "n": len(vec),
                         "codec": vec.codec_name,
                         "logical_bytes": vec._lbytes,
                         "physical_bytes": vec._pbytes})
            if vec._lbytes is None or vec._pbytes is None:
                known = False
            else:
                logical += vec._lbytes
                physical += vec._pbytes
        ratio = None
        if known:
            ratio = round(physical / logical, 4) if logical else 1.0
        return {"vectors": vecs,
                "logical_bytes": logical if known else None,
                "physical_bytes": physical if known else None,
                "compression_ratio": ratio}

    def drop_caches(self) -> None:
        """Forget every materialized column and index (buffer pool left
        as is)."""
        for vec in self.vectors.values():
            vec.drop_cache()
        for handle in self._vindexes.values():
            handle.drop_cache()

    def close(self) -> None:
        self.file.close()

    def __enter__(self) -> "DiskVectorizedDocument":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _resolve_index_paths(vdoc: VectorizedDocument, index_paths) -> set:
    """Normalize the ``index_paths`` argument to a set of vector paths."""
    if index_paths is None:
        return set()
    if index_paths == "all":
        return set(vdoc.vectors)
    resolved = {tuple(p) for p in index_paths}
    unknown = resolved - set(vdoc.vectors)
    if unknown:
        raise StorageError(
            "no such vector(s) to index: "
            + ", ".join(sorted("/".join(p) for p in unknown)))
    return resolved


def _write_vdoc(vdoc: VectorizedDocument, file: PageFile,
                index_paths=None, fmt: int = VDOC_FORMAT) -> dict:
    """Write the heaps + catalog into ``file`` and return the meta dict."""
    if fmt not in WRITABLE_FORMATS:
        raise StorageError(
            f"cannot write vdoc format {fmt!r} "
            f"(writable: {', '.join(map(str, WRITABLE_FORMATS))})")
    pool = BufferPool(file, capacity=None)  # writer: keep all resident
    indexed = _resolve_index_paths(vdoc, index_paths)
    catalog = []
    for vpath in sorted(vdoc.vectors):
        vec = vdoc.vectors[vpath]
        values = vec.tolist()
        if fmt >= 4:
            codec, records, lbytes, pbytes = encode_column(values)
        else:
            codec, records = IDENTITY, \
                [v.encode("utf-8") for v in values]
        heap = HeapFile.create(pool)
        for record in records:
            heap.append(record)
        entry = {"path": list(vpath), "n": len(vec),
                 "head": heap.head, "pages": heap.n_pages}
        if fmt >= 4:
            entry["codec"] = codec.name
            entry["lbytes"] = int(lbytes)
            entry["pbytes"] = int(pbytes)
        if vpath in indexed:
            # the segment is built from the very values just written, so
            # index and vector can never disagree within one save
            if codec.name == "dict":
                # index straight from the codec's own coding — decoding
                # the just-encoded records both verifies the roundtrip at
                # write time and guarantees segment and chain share one
                # key dictionary
                keys, codes = codec.decode(vpath, len(values), records,
                                           lbytes)
                vi = build_value_index_from_codes(vpath, keys, codes)
            else:
                vi = build_value_index(vpath,
                                       np.asarray(values, dtype=np.str_))
            key_records, data_records = encode_segment(vi)
            kheap = HeapFile.create(pool)
            for record in key_records:
                kheap.append(record)
            dheap = HeapFile.create(pool)
            for record in data_records:
                dheap.append(record)
            entry["index"] = {
                "keys_head": kheap.head, "keys_pages": kheap.n_pages,
                "data_head": dheap.head, "data_pages": dheap.n_pages,
                "distinct": int(vi.distinct),
                "buckets": int(vi.n_buckets),
            }
        catalog.append(entry)
    store = vdoc.store
    skel = HeapFile.create(pool)
    for nid in range(len(store)):
        skel.append(_encode_node(store.label(nid), store.children(nid)))
    meta = {
        "format": fmt,
        "root": vdoc.root,
        "n_nodes": len(store),
        "skeleton": {"head": skel.head, "pages": skel.n_pages},
        "vectors": catalog,
    }
    meta_heap = HeapFile.create(pool)
    meta_heap.append(json.dumps(meta, separators=(",", ":")).encode("utf-8"))
    pool.flush()
    file.set_meta(meta_heap.head)
    return meta


def save_vdoc(vdoc: VectorizedDocument, path: str,
              page_size: int = DEFAULT_PAGE_SIZE,
              index_paths=None, fmt: int = VDOC_FORMAT) -> dict:
    """Atomically write ``vdoc`` to ``path`` in the paged on-disk format;
    returns a summary (pages, bytes, vector count).  ``index_paths``
    (``"all"`` or an iterable of vector paths) additionally builds and
    persists value-index segments for those vectors.  ``fmt=3`` writes
    the uncompressed v3 layout (one UTF-8 record per value, no codec
    catalog fields) — the compatibility escape hatch and the baseline
    the compression benchmarks compare against.

    The document is written to a temp file in the same directory, fsynced,
    then renamed over ``path`` (``os.replace``) with a directory fsync —
    so a crash at any point leaves either the previous file or the
    complete new one at ``path``, never a torn mix.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(dir=directory,
                               prefix=os.path.basename(path) + ".",
                               suffix=".tmp")
    os.close(fd)
    try:
        file = PageFile.create(tmp, page_size)
        try:
            meta = _write_vdoc(vdoc, file, index_paths=index_paths,
                               fmt=fmt)
            file.flush()
            summary = {
                "path": path,
                "format": fmt,
                "page_size": page_size,
                "pages": file.n_pages,
                "bytes": file.size_bytes(),
                "vectors": len(meta["vectors"]),
                "values": sum(e["n"] for e in meta["vectors"]),
                "skeleton_nodes": meta["n_nodes"],
                "indexes": sum(1 for e in meta["vectors"] if "index" in e),
                "index_pages": sum(
                    e["index"]["keys_pages"] + e["index"]["data_pages"]
                    for e in meta["vectors"] if "index" in e),
            }
            if fmt >= 4:
                logical = sum(e["lbytes"] for e in meta["vectors"])
                physical = sum(e["pbytes"] for e in meta["vectors"])
                codecs: dict[str, int] = {}
                for e in meta["vectors"]:
                    codecs[e["codec"]] = codecs.get(e["codec"], 0) + 1
                summary["logical_bytes"] = logical
                summary["physical_bytes"] = physical
                summary["compression_ratio"] = round(
                    physical / logical, 4) if logical else 1.0
                summary["codecs"] = codecs
            file.sync_close()  # flush + fsync + close: durable before rename
        except BaseException:
            file.abort()
            raise
        faults.replace(tmp, path)  # the atomic commit point
        faults.dir_fsync(directory)
        return summary
    except faults.CrashInjected:
        raise  # simulated process death: no cleanup runs, tmp is left over
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _req_int(value, what: str, lo: int = 0, hi: int | None = None) -> int:
    if not isinstance(value, int) or isinstance(value, bool) or \
            value < lo or (hi is not None and value >= hi):
        raise CorruptDataError(f"vdoc catalog: {what} is {value!r}, expected "
                               f"an integer >= {lo}"
                               + (f" and < {hi}" if hi is not None else ""))
    return value


def _check_catalog(meta, path: str, n_pages: int) -> None:
    """Strict schema validation of the decoded catalog JSON — a corrupt
    catalog must fail here, not as a ``TypeError`` deep in a chain walk."""
    if not isinstance(meta, dict):
        raise CorruptDataError(f"{path}: vdoc catalog is not a JSON object")
    if meta.get("format") not in VDOC_FORMATS:
        raise StorageError(
            f"{path}: unsupported vdoc format {meta.get('format')!r}")
    _req_int(meta.get("root"), "root node id", lo=1)
    _req_int(meta.get("n_nodes"), "skeleton node count", lo=1)
    skel = meta.get("skeleton")
    if not isinstance(skel, dict):
        raise CorruptDataError(f"{path}: vdoc catalog has no skeleton entry")
    _req_int(skel.get("head"), "skeleton head page", lo=0, hi=n_pages)
    _req_int(skel.get("pages"), "skeleton chain length", lo=1,
             hi=n_pages + 1)
    vectors = meta.get("vectors")
    if not isinstance(vectors, list):
        raise CorruptDataError(f"{path}: vdoc catalog has no vector list")
    for entry in vectors:
        if not isinstance(entry, dict):
            raise CorruptDataError(f"{path}: vdoc catalog vector entry is "
                                   f"not an object")
        vpath = entry.get("path")
        if not isinstance(vpath, list) or not vpath or \
                not all(isinstance(s, str) for s in vpath):
            raise CorruptDataError(
                f"{path}: vector entry path {vpath!r} is not a list of "
                f"labels")
        name = "/".join(vpath)
        n = _req_int(entry.get("n"), f"value count of {name}", lo=0)
        _req_int(entry.get("head"), f"head page of {name}",
                 lo=0, hi=n_pages)
        _req_int(entry.get("pages"), f"chain length of {name}",
                 lo=1, hi=n_pages + 1)
        fmt = meta.get("format")
        if fmt >= 4:
            codec = entry.get("codec")
            if codec not in CODECS:
                raise CorruptDataError(
                    f"{path}: vector {name} names unknown codec {codec!r}")
            _req_int(entry.get("lbytes"), f"logical bytes of {name}", lo=0)
            _req_int(entry.get("pbytes"), f"encoded bytes of {name}", lo=0)
        elif "codec" in entry or "lbytes" in entry or "pbytes" in entry:
            raise CorruptDataError(
                f"{path}: v{fmt} catalog carries codec fields for {name}")
        ix = entry.get("index")
        if ix is None:
            continue
        if fmt == 2:
            raise CorruptDataError(
                f"{path}: v2 catalog carries an index entry for {name}")
        if not isinstance(ix, dict):
            raise CorruptDataError(
                f"{path}: index entry of {name} is not an object")
        _req_int(ix.get("keys_head"), f"index keys head of {name}",
                 lo=0, hi=n_pages)
        _req_int(ix.get("keys_pages"), f"index keys chain of {name}",
                 lo=1, hi=n_pages + 1)
        _req_int(ix.get("data_head"), f"index data head of {name}",
                 lo=0, hi=n_pages)
        _req_int(ix.get("data_pages"), f"index data chain of {name}",
                 lo=1, hi=n_pages + 1)
        _req_int(ix.get("distinct"), f"index key count of {name}",
                 lo=0, hi=n + 1)
        buckets = _req_int(ix.get("buckets"), f"index bucket count of {name}",
                           lo=1)
        if buckets & (buckets - 1):
            raise CorruptDataError(
                f"{path}: index bucket count of {name} ({buckets}) is not "
                f"a power of two")


def open_vdoc(path: str, pool_pages: int | None = None,
              verify_checksums: bool = True,
              pool: BufferPool | None = None) -> DiskVectorizedDocument:
    """Open a saved vdoc with a buffer pool of ``pool_pages`` frames
    (``None`` → unbounded).  Reads the catalog and skeleton eagerly,
    vectors lazily.  ``verify_checksums=False`` skips the per-read page
    checksum (benchmarking the verification overhead only).

    Pass an existing ``pool`` to open the document over a *shared* buffer
    pool (the repository layer opens every member this way); the file is
    attached as a new :class:`~repro.storage.buffer.FileView` and
    ``pool_pages``/``verify_checksums`` are ignored in favour of the
    pool's own settings."""
    file = PageFile.open(path)
    try:
        if pool is None:
            pool = BufferPool(capacity=pool_pages, verify=verify_checksums)
        view = pool.attach(file)
        if file.meta_page < 0:
            raise StorageError(f"{path}: page file has no vdoc catalog")
        if file.meta_page >= file.n_pages:
            raise CorruptDataError(
                f"{path}: catalog head page {file.meta_page} outside the "
                f"file ({file.n_pages} pages)")
        meta_records = list(HeapFile(view, file.meta_page).records())
        if not meta_records:
            raise StorageError(f"{path}: empty vdoc catalog")
        try:
            meta = json.loads(meta_records[0].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CorruptDataError(
                f"{path}: vdoc catalog is not valid JSON ({exc})") from exc
        _check_catalog(meta, path, file.n_pages)

        store = NodeStore()
        skel = HeapFile(view, meta["skeleton"]["head"],
                        n_pages=meta["skeleton"]["pages"])
        for nid, record in enumerate(skel.records()):
            label, runs = _decode_node(record)
            if nid == 0:
                if label != "#" or runs:
                    raise CorruptDataError(
                        f"{path}: node 0 is not the text marker")
                continue
            for child, count in runs:
                if not 0 <= child < nid or count < 1:
                    raise CorruptDataError(
                        f"{path}: skeleton node {nid} has child run "
                        f"({child}, {count}) outside the already-interned "
                        f"prefix")
            interned = store.intern(label, runs)
            if interned != nid:
                raise CorruptDataError(
                    f"{path}: skeleton records out of interning order "
                    f"(node {nid} interned as {interned})")
        if len(store) != meta["n_nodes"]:
            raise CorruptDataError(
                f"{path}: catalog says {meta['n_nodes']} skeleton nodes, "
                f"file holds {len(store)}")
        if not 1 <= meta["root"] < len(store):
            raise CorruptDataError(
                f"{path}: root id {meta['root']} outside the skeleton "
                f"({len(store)} nodes)")

        vectors: dict[tuple, LazyVector] = {}
        vindexes: dict[tuple, DiskValueIndex] = {}
        for entry in meta["vectors"]:
            vpath = tuple(entry["path"])
            heap = HeapFile(view, entry["head"], n_pages=entry["pages"])
            codec = CODECS[entry["codec"]] if meta["format"] >= 4 \
                else IDENTITY
            vectors[vpath] = LazyVector(vpath, entry["n"], heap,
                                        codec=codec,
                                        lbytes=entry.get("lbytes"),
                                        pbytes=entry.get("pbytes"))
            if "index" in entry:
                vindexes[vpath] = DiskValueIndex(vpath, entry["n"],
                                                 entry["index"], view)
        doc = DiskVectorizedDocument(store, meta["root"], vectors, pool, file,
                                     view=view)
        doc._vindexes = vindexes
        return doc
    except BaseException:
        file.abort()  # never write back to a file we failed to open
        raise
