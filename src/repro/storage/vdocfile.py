"""On-disk vectorized documents: ``save_vdoc`` / ``open_vdoc``.

File layout (all inside one :class:`PageFile`):

* one heap-file chain per data vector — the values in document order,
  one string record each (XMILL-style containers);
* one heap for the skeleton — one record per interned node, in id order:
  ``label UTF-8 bytes, NUL, then (child_id, count) int64 pairs``.  Node
  ids are interning order, so replaying ``intern()`` record by record
  reproduces the identical hash-consed store (ids are asserted);
* one heap holding a single JSON catalog record: format tag, root id,
  and per-vector ``{path, n, head page, chain length}``; its head page id
  is stored in the page-file header.

Opening reads *only* the catalog and skeleton (the paper's premise that
the skeleton lives in main memory).  Each vector becomes a
:class:`LazyVector`: no pages of its chain are touched until the first
``scan()`` (or any other column access), which materializes the column to
numpy through the buffer pool in one sequential chain pass and charges
the physical reads to the vector — the counter the engine checks against
``n_pages`` ("each data vector is scanned at most once", now falsifiable
against real page I/O).
"""

from __future__ import annotations

import json
import struct

import numpy as np

from ..core.skeleton import NodeStore
from ..core.vdoc import VectorizedDocument
from ..core.vectors import Vector
from ..errors import StorageError
from .buffer import BufferPool
from .disk import PageFile
from .heap import HeapFile
from .pages import DEFAULT_PAGE_SIZE

VDOC_FORMAT = 1

_RUN = struct.Struct("<qq")


def _encode_node(label: str, children) -> bytes:
    parts = [label.encode("utf-8"), b"\x00"]
    for child, count in children:
        parts.append(_RUN.pack(child, count))
    return b"".join(parts)


def _decode_node(record: bytes) -> tuple[str, tuple]:
    nul = record.find(b"\x00")
    if nul < 0 or (len(record) - nul - 1) % _RUN.size:
        raise StorageError("corrupt skeleton node record")
    label = record[:nul].decode("utf-8")
    runs = tuple(_RUN.iter_unpack(record[nul + 1:]))
    return label, runs


class LazyVector(Vector):
    """A data vector whose column lives on disk until first touched.

    Materialization is one sequential pass over the heap chain through the
    buffer pool; the resulting numpy column is cached, so the pass happens
    at most once per open document (``drop_cache()`` releases it, e.g. for
    cold-cache benchmarking).  ``pages_read`` counts the *physical* reads
    charged to this vector — at most ``n_pages`` per materialization.
    """

    __slots__ = ("_heap", "_n")

    def __init__(self, path: tuple, n: int, heap: HeapFile):
        self.path = path
        self._values = None
        self._floats = None
        self.scan_count = 0
        self.pages_read = 0
        self.n_pages = heap.n_pages or 0
        self._io_baseline = 0
        self._heap = heap
        self._n = n

    def __len__(self) -> int:  # no materialization just to count
        return self._n

    def _col(self) -> np.ndarray:
        if self._values is None:
            pool = self._heap.pool
            before = pool.stats.pages_read
            values = [rec.decode("utf-8") for rec in self._heap.records()]
            self.pages_read += pool.stats.pages_read - before
            if len(values) != self._n:
                raise StorageError(
                    f"vector {'/'.join(self.path)}: catalog says {self._n} "
                    f"values, chain holds {len(values)}")
            col = np.asarray(values, dtype=np.str_)
            if col.dtype.kind != "U":
                col = col.astype(np.str_)
            self._values = col
        return self._values

    def is_loaded(self) -> bool:
        return self._values is not None

    def drop_cache(self) -> None:
        """Release the materialized column (the next access re-reads the
        chain through the pool — cold or warm depending on the pool)."""
        self._values = None
        self._floats = None


class DiskVectorizedDocument(VectorizedDocument):
    """A :class:`VectorizedDocument` whose vectors are disk-backed.

    The skeleton and catalog are memory-resident; every vector is a
    :class:`LazyVector` over ``self.pool``.  Query evaluation is unchanged
    — ``eval_query`` / ``eval_xq`` work as for the in-memory document, with
    the engine additionally checking page-read counts and pin leaks.
    """

    def __init__(self, store, root, vectors, pool: BufferPool,
                 file: PageFile):
        super().__init__(store, root, vectors)
        self.pool = pool
        self.file = file

    def io_stats(self) -> dict:
        stats = self.pool.stats.as_dict()
        stats["pool_capacity"] = self.pool.capacity
        stats["pool_resident"] = self.pool.resident()
        stats["pinned"] = self.pool.pinned_total()
        return stats

    def drop_caches(self) -> None:
        """Forget every materialized column (buffer pool left as is)."""
        for vec in self.vectors.values():
            vec.drop_cache()

    def close(self) -> None:
        self.file.close()

    def __enter__(self) -> "DiskVectorizedDocument":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def save_vdoc(vdoc: VectorizedDocument, path: str,
              page_size: int = DEFAULT_PAGE_SIZE) -> dict:
    """Write ``vdoc`` to ``path`` in the paged on-disk format; returns a
    summary (pages, bytes, vector count)."""
    file = PageFile.create(path, page_size)
    try:
        pool = BufferPool(file, capacity=None)  # writer: keep all resident
        catalog = []
        for vpath in sorted(vdoc.vectors):
            vec = vdoc.vectors[vpath]
            heap = HeapFile.create(pool)
            for value in vec.tolist():
                heap.append(value.encode("utf-8"))
            catalog.append({"path": list(vpath), "n": len(vec),
                            "head": heap.head, "pages": heap.n_pages})
        store = vdoc.store
        skel = HeapFile.create(pool)
        for nid in range(len(store)):
            skel.append(_encode_node(store.label(nid), store.children(nid)))
        meta = {
            "format": VDOC_FORMAT,
            "root": vdoc.root,
            "n_nodes": len(store),
            "skeleton": {"head": skel.head, "pages": skel.n_pages},
            "vectors": catalog,
        }
        meta_heap = HeapFile.create(pool)
        meta_heap.append(json.dumps(meta, separators=(",", ":")).encode("utf-8"))
        pool.flush()
        file.set_meta(meta_heap.head)
        return {
            "path": path,
            "page_size": page_size,
            "pages": file.n_pages,
            "bytes": file.size_bytes(),
            "vectors": len(catalog),
            "values": sum(e["n"] for e in catalog),
            "skeleton_nodes": meta["n_nodes"],
        }
    finally:
        file.close()


def open_vdoc(path: str, pool_pages: int | None = None) -> DiskVectorizedDocument:
    """Open a saved vdoc with a buffer pool of ``pool_pages`` frames
    (``None`` → unbounded).  Reads the catalog and skeleton eagerly,
    vectors lazily."""
    file = PageFile.open(path)
    try:
        pool = BufferPool(file, capacity=pool_pages)
        if file.meta_page < 0:
            raise StorageError(f"{path}: page file has no vdoc catalog")
        meta_records = list(HeapFile(pool, file.meta_page).records())
        if not meta_records:
            raise StorageError(f"{path}: empty vdoc catalog")
        meta = json.loads(meta_records[0].decode("utf-8"))
        if meta.get("format") != VDOC_FORMAT:
            raise StorageError(
                f"{path}: unsupported vdoc format {meta.get('format')!r}")

        store = NodeStore()
        skel = HeapFile(pool, meta["skeleton"]["head"],
                        n_pages=meta["skeleton"]["pages"])
        for nid, record in enumerate(skel.records()):
            label, runs = _decode_node(record)
            if nid == 0:
                if label != "#" or runs:
                    raise StorageError(f"{path}: node 0 is not the text marker")
                continue
            interned = store.intern(label, runs)
            if interned != nid:
                raise StorageError(
                    f"{path}: skeleton records out of interning order "
                    f"(node {nid} interned as {interned})")
        if len(store) != meta["n_nodes"]:
            raise StorageError(
                f"{path}: catalog says {meta['n_nodes']} skeleton nodes, "
                f"file holds {len(store)}")

        vectors: dict[tuple, LazyVector] = {}
        for entry in meta["vectors"]:
            vpath = tuple(entry["path"])
            heap = HeapFile(pool, entry["head"], n_pages=entry["pages"])
            vectors[vpath] = LazyVector(vpath, entry["n"], heap)
        return DiskVectorizedDocument(store, meta["root"], vectors, pool, file)
    except BaseException:
        file.close()
        raise
