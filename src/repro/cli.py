"""``repro-xq`` — command-line front end.

Subcommands::

    repro-xq stats FILE [--pool N]           vectorization statistics
    repro-xq query FILE QUERY [--mode vx|naive] [--values] [--canonical]
                              [--plan] [--pool N] [--io-stats]
                              [--no-codec-eval]
    repro-xq reconstruct FILE [--pool N]     vectorize then decompress back
    repro-xq save FILE OUT [--page-size B] [--format 3|4]
                                             write the on-disk vdoc format
    repro-xq open FILE [--pool N]            print a saved vdoc's catalog
    repro-xq check TARGET [--deep]           verify a .vdoc or a repository
    repro-xq gen N [--seed S]                synthetic XMark-like document
    repro-xq index build FILE [--path P]     persist value indexes
    repro-xq index ls FILE                   per-vector codec + bytes and
                                             persisted index segments
    repro-xq repo init DIR --name NAME       create an empty repository
    repro-xq repo add DIR FILE [--name N]    add an XML or .vdoc member
    repro-xq repo ls DIR                     members, catalog + compression
    repro-xq repo query DIR QUERY [--pool N] [--io-stats] [--per-combo]
    repro-xq serve DIR [--port P] [--pool N] [--workers W]

``FILE`` may be XML text or a saved ``.vdoc`` page file (sniffed by
magic); vdoc inputs are opened disk-backed through a buffer pool of
``--pool`` pages (default unbounded) and ``--io-stats`` reports per-
document and pool-wide physical I/O counters on stderr after a query —
also when the query fails, so a corrupted run still shows what it read.

``repo query`` evaluates over every member of a repository through one
shared buffer pool; XQ queries may source from ``collection("name")``.
``serve`` keeps a repository resident and answers the same queries over
HTTP (``POST /xq``, ``POST /xpath``, ``GET /stats`` ...) from concurrent
worker threads sharing that pool — see :mod:`repro.serve`.

``query`` dispatches on the query text: a leading ``/`` is an XPath of
P[*,//]; anything else is an XQ FLWR expression (``for .. where ..
return ..``), evaluated by graph reduction (``--plan`` prints the
heuristic operation order first).  Flags that do not apply to the query
kind (``--values``/``--canonical`` for XQ, ``--plan`` for XPath) are
usage errors, not silently ignored.
"""

from __future__ import annotations

import argparse
import os
import sys

from . import __version__
from .core.engine import XQVXResult, eval_query, eval_xq
from .core.vdoc import VectorizedDocument
from .datasets.synth import xmark_like_xml
from .errors import ReproError
from .storage.disk import PageFile

USAGE_ERROR = 2


def _load(path: str, pool: int | None = None) -> VectorizedDocument:
    if PageFile.is_page_file(path):
        return VectorizedDocument.open(path, pool_pages=pool)
    with open(path, "r", encoding="utf-8") as f:
        return VectorizedDocument.from_xml(f.read())


def _usage_error(message: str) -> int:
    print(f"repro-xq: error: {message}", file=sys.stderr)
    return USAGE_ERROR


def _print_io_stats(vdoc: VectorizedDocument) -> None:
    if vdoc.pool is None:
        print("io: document is memory-resident (no buffer pool)",
              file=sys.stderr)
        return
    stats = vdoc.io_stats()
    print("io: " + "  ".join(f"{k}={v}" for k, v in stats.items()),
          file=sys.stderr)


def _print_repo_io_stats(repo) -> None:
    stats = repo.io_stats()
    print("io: " + "  ".join(f"{k}={v}" for k, v in stats.items()),
          file=sys.stderr)


def _index_cmd(args) -> int:
    from .storage.vdocfile import open_vdoc, save_vdoc

    if not PageFile.is_page_file(args.file):
        return _usage_error(f"{args.file}: not a .vdoc page file "
                            f"(run 'save' first)")
    if args.index_cmd == "build":
        with open_vdoc(args.file) as vdoc:
            page_size = vdoc.file.page_size
            if args.path:
                index_paths = [tuple(p.split("/")) for p in args.path]
            else:
                index_paths = "all"
            # save_vdoc materializes the columns through the pool, writes
            # vectors + index segments to a temp file and atomically
            # replaces args.file — the open handle keeps reading the old
            # inode, so a failure leaves the original untouched
            summary = save_vdoc(vdoc, args.file, page_size=page_size,
                                index_paths=index_paths)
        for k in ("path", "pages", "vectors", "indexes", "index_pages"):
            print(f"{k:16} {summary[k]}")
    else:
        assert args.index_cmd == "ls"
        with open_vdoc(args.file) as vdoc:
            # everything below is catalog math: no vector page is read
            comp = vdoc.compression_stats()
            print("vectors:")
            for v in comp["vectors"]:
                lb, pb = v["logical_bytes"], v["physical_bytes"]
                size = "bytes uncataloged (pre-v4)" if lb is None \
                    else f"logical={lb} disk={pb}"
                print(f"  {v['path']:32} n={v['n']} "
                      f"codec={v['codec']} {size}")
            if comp["compression_ratio"] is not None:
                print(f"compression: logical={comp['logical_bytes']} "
                      f"disk={comp['physical_bytes']} "
                      f"ratio={comp['compression_ratio']}")
            handles = sorted(vdoc._vindexes.items())
            if not handles:
                print(f"{args.file}: no index segments (format v2 or "
                      f"unindexed)")
            else:
                print("indexes:")
            for vpath, h in handles:
                print(f"  {'/'.join(vpath):32} n={len(vdoc.vectors[vpath])} "
                      f"distinct={h.distinct} buckets={h.n_buckets} "
                      f"pages={h.n_pages}")
    return 0


def _repo_cmd(args) -> int:
    from .repo import Repository

    if args.repo_cmd == "init":
        repo = Repository.init(args.dir, args.name)
        print(f"{args.dir}: empty repository {repo.name!r}")
    elif args.repo_cmd == "add":
        with Repository.open(args.dir) as repo:
            name = repo.add(args.file, name=args.name,
                            page_size=args.page_size)
            entry = repo._entry(name)
            print(f"added {name!r} ({entry['file']}, "
                  f"{len(entry['paths'])} catalog paths)")
    elif args.repo_cmd == "ls":
        with Repository.open(args.dir) as repo:
            print(f"repository {repo.name!r}: "
                  f"{len(repo.members())} member(s)")
            # compression facts come from the manifest (recorded at add
            # time) — zero page I/O, like the path catalog itself
            logical = physical = 0
            cataloged = True
            for m in repo.manifest["members"]:
                values = sum(c for p, c in m["paths"]
                             if p and p[-1] == "#")
                line = (f"  {m['name']:20} {m['file']:24} "
                        f"paths={len(m['paths'])} values={values}")
                comp = m.get("compression")
                if comp is None:
                    cataloged = False
                else:
                    logical += comp["logical_bytes"]
                    physical += comp["physical_bytes"]
                    mix = " ".join(f"{k}={v}" for k, v
                                   in sorted(comp["codecs"].items()))
                    line += (f" codecs[{mix}] logical="
                             f"{comp['logical_bytes']} disk="
                             f"{comp['physical_bytes']}")
                print(line)
            if cataloged and repo.manifest["members"]:
                ratio = round(physical / logical, 4) if logical else 1.0
                print(f"compression: logical={logical} disk={physical} "
                      f"ratio={ratio}")
    else:
        assert args.repo_cmd == "query"
        with Repository.open(args.dir, pool_pages=args.pool) as repo:
            try:
                text = args.query.lstrip()
                if text.startswith("/"):
                    for name, res in repo.xpath(
                            text, deadline=args.deadline,
                            use_codecs=not args.no_codec_eval):
                        print(f"{name}: count {res.count()}")
                else:
                    result = repo.xq(text, batched=not args.per_combo,
                                     prune=not args.no_prune,
                                     use_indexes=not args.no_index,
                                     use_codecs=not args.no_codec_eval,
                                     deadline=args.deadline)
                    if result.pruned:
                        print("pruned (catalog, zero I/O): "
                              + " ".join(result.pruned), file=sys.stderr)
                    print(result.to_xml())
            finally:
                if args.io_stats:
                    _print_repo_io_stats(repo)
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro-xq",
        description="Vectorized XML store and query engine (ICDE 2005 repro)",
    )
    ap.add_argument("--version", action="version", version=f"repro-xq {__version__}")
    sub = ap.add_subparsers(dest="cmd", required=True)

    pool_help = ("buffer pool size in pages for .vdoc inputs "
                 "(default: unbounded)")

    p_stats = sub.add_parser("stats", help="vectorization statistics")
    p_stats.add_argument("file")
    p_stats.add_argument("--pool", type=int, default=None, help=pool_help)

    p_query = sub.add_parser("query", help="evaluate an XPath or XQ query")
    p_query.add_argument("file")
    p_query.add_argument("xpath", metavar="query",
                         help="an XPath (starts with '/') or an XQ FLWR "
                              "expression")
    p_query.add_argument("--mode", choices=("vx", "naive"), default="vx")
    p_query.add_argument("--values", action="store_true",
                         help="XPath only: print text values of text-path "
                              "results")
    p_query.add_argument("--canonical", action="store_true",
                         help="XPath only: print canonical content of each "
                              "result")
    p_query.add_argument("--plan", action="store_true",
                         help="XQ only: print the heuristic reduction plan "
                              "(per-op cost estimates and access paths)")
    p_query.add_argument("--no-index", action="store_true",
                         help="XQ only: forbid index probes (plan every op "
                              "as a scan)")
    p_query.add_argument("--no-codec-eval", action="store_true",
                         help="forbid code-space predicate evaluation over "
                              "dictionary-coded vectors; predicates run "
                              "over the decoded string columns instead "
                              "(byte-identical results)")
    p_query.add_argument("--deadline", type=float, default=None,
                         metavar="SEC",
                         help="cooperative deadline in seconds; an "
                              "over-budget query unwinds cleanly with a "
                              "DeadlineExceededError (vx mode only)")
    p_query.add_argument("--pool", type=int, default=None, help=pool_help)
    p_query.add_argument("--io-stats", action="store_true",
                         help="print buffer-pool I/O counters on stderr "
                              "after the query")

    p_rec = sub.add_parser("reconstruct",
                           help="vectorize, then decompress back to XML")
    p_rec.add_argument("file")
    p_rec.add_argument("--pool", type=int, default=None, help=pool_help)

    p_save = sub.add_parser("save",
                            help="vectorize FILE and write the paged "
                                 "on-disk vdoc format to OUT")
    p_save.add_argument("file")
    p_save.add_argument("out")
    p_save.add_argument("--page-size", type=int, default=None,
                        help="page size in bytes (default 4096)")
    p_save.add_argument("--format", type=int, choices=(3, 4), default=None,
                        help="on-disk format: 4 (default) picks a "
                             "compression codec per vector; 3 writes the "
                             "uncompressed legacy layout")

    p_open = sub.add_parser("open",
                            help="open a saved vdoc and print its on-disk "
                                 "catalog (no vector is materialized)")
    p_open.add_argument("file")
    p_open.add_argument("--pool", type=int, default=None, help=pool_help)

    p_check = sub.add_parser("check",
                             help="verify a .vdoc page file (header, page "
                                  "checksums, heap chains, catalog cross-"
                                  "checks) or a repository directory "
                                  "(manifest, members, path catalog); "
                                  "exits nonzero on any finding")
    p_check.add_argument("file")
    p_check.add_argument("--deep", action="store_true",
                         help="additionally UTF-8-decode every value and "
                              "report orphaned pages")

    p_gen = sub.add_parser("gen", help="emit a synthetic XMark-like document")
    p_gen.add_argument("n_people", type=int)
    p_gen.add_argument("--seed", type=int, default=0)

    p_index = sub.add_parser("index", help="persistent value indexes")
    isub = p_index.add_subparsers(dest="index_cmd", required=True)

    i_build = isub.add_parser("build",
                              help="build value-index segments inside a "
                                   ".vdoc (atomic rewrite, format v3)")
    i_build.add_argument("file")
    i_build.add_argument("--path", action="append", default=None,
                         metavar="P",
                         help="vector path to index, slash-separated (e.g. "
                              "people/person/name/#); repeatable; default: "
                              "every vector")

    i_ls = isub.add_parser("ls", help="list a .vdoc's persisted index "
                                      "segments (catalog only, no I/O)")
    i_ls.add_argument("file")

    p_repo = sub.add_parser("repo", help="multi-document repositories")
    rsub = p_repo.add_subparsers(dest="repo_cmd", required=True)

    r_init = rsub.add_parser("init", help="create an empty repository")
    r_init.add_argument("dir")
    r_init.add_argument("--name", required=True,
                        help="collection name (what collection(...) "
                             "queries reference)")

    r_add = rsub.add_parser("add", help="add an XML or .vdoc document")
    r_add.add_argument("dir")
    r_add.add_argument("file")
    r_add.add_argument("--name", default=None,
                       help="member name (default: the file's stem)")
    r_add.add_argument("--page-size", type=int, default=None,
                       help="page size for XML inputs (default 4096)")

    r_ls = rsub.add_parser("ls", help="list members and catalog summary")
    r_ls.add_argument("dir")

    r_query = rsub.add_parser("query",
                              help="evaluate a query over every member "
                                   "through one shared buffer pool")
    r_query.add_argument("dir")
    r_query.add_argument("query",
                         help="an XQ FLWR expression (may source from "
                              "collection('name')) or an XPath (starts "
                              "with '/'; evaluated per member)")
    r_query.add_argument("--pool", type=int, default=None,
                         help="shared buffer pool size in pages "
                              "(default: unbounded)")
    r_query.add_argument("--io-stats", action="store_true",
                         help="print per-member and pool-wide I/O "
                              "counters on stderr, even on failure")
    r_query.add_argument("--per-combo", action="store_true",
                         help="use the per-combo baseline executor "
                              "instead of batched execution")
    r_query.add_argument("--no-prune", action="store_true",
                         help="disable catalog pruning (open and evaluate "
                              "every member)")
    r_query.add_argument("--no-index", action="store_true",
                         help="forbid index probes (plan every op as a "
                              "scan)")
    r_query.add_argument("--no-codec-eval", action="store_true",
                         help="forbid code-space predicate evaluation "
                              "over dictionary-coded vectors "
                              "(byte-identical results)")
    r_query.add_argument("--deadline", type=float, default=None,
                         metavar="SEC",
                         help="cooperative deadline in seconds spanning "
                              "all members of the query")

    p_serve = sub.add_parser(
        "serve",
        help="serve a repository over HTTP (POST /xq, POST /xpath, "
             "GET /repo, GET /stats, GET /healthz) with concurrent "
             "workers over one shared buffer pool")
    p_serve.add_argument("dir")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8000,
                         help="bind port; 0 picks a free port, printed in "
                              "the startup line (default 8000)")
    p_serve.add_argument("--pool", type=int, default=None,
                         help="shared buffer pool size in pages "
                              "(default: unbounded)")
    p_serve.add_argument("--workers", type=int, default=8,
                         help="max concurrently evaluating queries; "
                              "additionally capped from the pool capacity "
                              "(default 8)")
    p_serve.add_argument("--queue", type=int, default=64,
                         help="admission wait-queue length; excess "
                              "requests get HTTP 503 (default 64)")
    p_serve.add_argument("--queue-timeout", type=float, default=2.0,
                         help="max seconds a request waits for a free "
                              "slot before HTTP 503 (default 2.0)")
    p_serve.add_argument("--result-cache", type=float, default=64.0,
                         metavar="MB",
                         help="result cache budget in MiB; 0 disables "
                              "caching (default 64)")
    p_serve.add_argument("--deadline", type=float, default=None,
                         metavar="SEC",
                         help="per-request cooperative deadline in "
                              "seconds; over-budget requests get HTTP "
                              "504 (X-Deadline-Ms may tighten it per "
                              "request; default: none)")
    p_serve.add_argument("--chaos", default=None, metavar="RATE[:SEED]",
                         help="inject deterministic transient read "
                              "faults (OSError/bitflip/torn) into the "
                              "pool at RATE — the live chaos harness "
                              "hook; do not use in production")
    p_serve.add_argument("--verbose", action="store_true",
                         help="log each request line on stderr")

    args = ap.parse_args(argv)
    try:
        if args.cmd == "stats":
            stats = _load(args.file, args.pool).stats()
            for k, v in stats.items():
                print(f"{k:16} {v}")
        elif args.cmd == "query":
            text = args.xpath.lstrip()
            is_xpath = text.startswith("/")
            if is_xpath and args.plan:
                return _usage_error(
                    "--plan is only valid for XQ queries, not XPath")
            if is_xpath and args.no_index:
                return _usage_error(
                    "--no-index is only valid for XQ queries, not XPath")
            if not is_xpath:
                for flag, on in (("--values", args.values),
                                 ("--canonical", args.canonical)):
                    if on:
                        return _usage_error(
                            f"{flag} is only valid for XPath queries, "
                            f"not XQ")
            if args.deadline is not None and args.mode == "naive":
                return _usage_error(
                    "--deadline needs the vx engine's checkpoints; "
                    "it is not valid with --mode naive")
            vdoc = _load(args.file, args.pool)
            ctx = None
            if args.deadline is not None:
                from .core.context import EvalContext

                ctx = EvalContext.for_doc(vdoc)
                ctx.set_deadline(args.deadline)
            try:
                if is_xpath:
                    result = eval_query(vdoc, text, mode=args.mode,
                                        ctx=ctx,
                                        use_codecs=not args.no_codec_eval)
                    print(f"count {result.count()}")
                    if args.values:
                        for v in result.text_values():
                            print(v)
                    if args.canonical:
                        for item in result.canonical():
                            print(item)
                else:
                    result = eval_xq(vdoc, text, mode=args.mode,
                                     use_indexes=not args.no_index,
                                     use_codecs=not args.no_codec_eval,
                                     ctx=ctx)
                    if args.plan and isinstance(result, XQVXResult):
                        print(result.plan.explain(), file=sys.stderr)
                    print(result.to_xml())
            finally:
                # stats even when the query errors: a failed run still
                # shows what it read before failing
                if args.io_stats:
                    _print_io_stats(vdoc)
        elif args.cmd == "reconstruct":
            sys.stdout.write(_load(args.file, args.pool).to_xml())
        elif args.cmd == "save":
            with open(args.file, "r", encoding="utf-8") as f:
                vdoc = VectorizedDocument.from_xml(f.read())
            summary = vdoc.save(args.out, page_size=args.page_size,
                                fmt=args.format)
            for k, v in summary.items():
                print(f"{k:16} {v}")
        elif args.cmd == "open":
            vdoc = VectorizedDocument.open(args.file, pool_pages=args.pool)
            with vdoc:
                print(f"{'page_size':16} {vdoc.file.page_size}")
                print(f"{'pages':16} {vdoc.file.n_pages}")
                print(f"{'skeleton_nodes':16} {len(vdoc.store)}")
                print(f"{'vectors':16} {len(vdoc.vectors)}")
                print(f"{'values':16} {sum(len(v) for v in vdoc.vectors.values())}")
                print(f"{'vector_pages':16} "
                      f"{sum(v.n_pages for v in vdoc.vectors.values())}")
        elif args.cmd == "check":
            if os.path.isdir(args.file):
                from .repo import verify_repository as _verify
            else:
                from .storage.fsck import verify_vdoc as _verify

            findings = _verify(args.file, deep=args.deep)
            for finding in findings:
                print(finding)
            if findings:
                print(f"{args.file}: {len(findings)} integrity "
                      f"finding(s)", file=sys.stderr)
                return 1
            mode = "deep" if args.deep else "shallow"
            print(f"{args.file}: ok ({mode} check, no findings)")
        elif args.cmd == "gen":
            if args.n_people < 0:
                print("repro-xq: error: N must be >= 0", file=sys.stderr)
                return 1
            sys.stdout.write(xmark_like_xml(args.n_people, seed=args.seed))
        elif args.cmd == "index":
            return _index_cmd(args)
        elif args.cmd == "repo":
            return _repo_cmd(args)
        elif args.cmd == "serve":
            from .serve import run_serve

            return run_serve(args)
    except BrokenPipeError:
        # downstream consumer (head, etc.) closed the pipe — not an error
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    except (ReproError, OSError) as exc:
        print(f"repro-xq: error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
