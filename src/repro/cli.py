"""``repro-xq`` — command-line front end.

Subcommands::

    repro-xq stats FILE                      vectorization statistics
    repro-xq query FILE QUERY [--mode vx|naive] [--values] [--canonical]
                              [--plan]
    repro-xq reconstruct FILE                vectorize then decompress back
    repro-xq gen N [--seed S]                synthetic XMark-like document

``query`` dispatches on the query text: a leading ``/`` is an XPath of
P[*,//]; anything else is an XQ FLWR expression (``for .. where ..
return ..``), evaluated by graph reduction (``--plan`` prints the
heuristic operation order first).
"""

from __future__ import annotations

import argparse
import os
import sys

from . import __version__
from .core.engine import XQVXResult, eval_query, eval_xq
from .core.vdoc import VectorizedDocument
from .datasets.synth import xmark_like_xml
from .errors import ReproError


def _load(path: str) -> VectorizedDocument:
    with open(path, "r", encoding="utf-8") as f:
        return VectorizedDocument.from_xml(f.read())


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro-xq",
        description="Vectorized XML store and query engine (ICDE 2005 repro)",
    )
    ap.add_argument("--version", action="version", version=f"repro-xq {__version__}")
    sub = ap.add_subparsers(dest="cmd", required=True)

    p_stats = sub.add_parser("stats", help="vectorization statistics")
    p_stats.add_argument("file")

    p_query = sub.add_parser("query", help="evaluate an XPath or XQ query")
    p_query.add_argument("file")
    p_query.add_argument("xpath", metavar="query",
                         help="an XPath (starts with '/') or an XQ FLWR "
                              "expression")
    p_query.add_argument("--mode", choices=("vx", "naive"), default="vx")
    p_query.add_argument("--values", action="store_true",
                         help="XPath only: print text values of text-path "
                              "results")
    p_query.add_argument("--canonical", action="store_true",
                         help="XPath only: print canonical content of each "
                              "result")
    p_query.add_argument("--plan", action="store_true",
                         help="XQ only: print the heuristic reduction plan")

    p_rec = sub.add_parser("reconstruct",
                           help="vectorize, then decompress back to XML")
    p_rec.add_argument("file")

    p_gen = sub.add_parser("gen", help="emit a synthetic XMark-like document")
    p_gen.add_argument("n_people", type=int)
    p_gen.add_argument("--seed", type=int, default=0)

    args = ap.parse_args(argv)
    try:
        if args.cmd == "stats":
            stats = _load(args.file).stats()
            for k, v in stats.items():
                print(f"{k:16} {v}")
        elif args.cmd == "query":
            text = args.xpath.lstrip()
            if text.startswith("/"):
                result = eval_query(_load(args.file), text, mode=args.mode)
                print(f"count {result.count()}")
                if args.values:
                    for v in result.text_values():
                        print(v)
                if args.canonical:
                    for item in result.canonical():
                        print(item)
            else:
                result = eval_xq(_load(args.file), text, mode=args.mode)
                if args.plan and isinstance(result, XQVXResult):
                    print(result.plan.explain(), file=sys.stderr)
                print(result.to_xml())
        elif args.cmd == "reconstruct":
            sys.stdout.write(_load(args.file).to_xml())
        elif args.cmd == "gen":
            if args.n_people < 0:
                print("repro-xq: error: N must be >= 0", file=sys.stderr)
                return 1
            sys.stdout.write(xmark_like_xml(args.n_people, seed=args.seed))
    except BrokenPipeError:
        # downstream consumer (head, etc.) closed the pipe — not an error
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    except (ReproError, OSError) as exc:
        print(f"repro-xq: error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
