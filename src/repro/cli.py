"""``repro-xq`` — command-line front end.

Subcommands::

    repro-xq stats FILE [--pool N]           vectorization statistics
    repro-xq query FILE QUERY [--mode vx|naive] [--values] [--canonical]
                              [--plan] [--pool N] [--io-stats]
    repro-xq reconstruct FILE [--pool N]     vectorize then decompress back
    repro-xq save FILE OUT [--page-size B]   write the on-disk vdoc format
    repro-xq open FILE [--pool N]            print a saved vdoc's catalog
    repro-xq check FILE [--deep]             verify a .vdoc's integrity
    repro-xq gen N [--seed S]                synthetic XMark-like document

``FILE`` may be XML text or a saved ``.vdoc`` page file (sniffed by
magic); vdoc inputs are opened disk-backed through a buffer pool of
``--pool`` pages (default unbounded) and ``--io-stats`` reports the
pool's physical I/O counters on stderr after a query.

``query`` dispatches on the query text: a leading ``/`` is an XPath of
P[*,//]; anything else is an XQ FLWR expression (``for .. where ..
return ..``), evaluated by graph reduction (``--plan`` prints the
heuristic operation order first).  Flags that do not apply to the query
kind (``--values``/``--canonical`` for XQ, ``--plan`` for XPath) are
usage errors, not silently ignored.
"""

from __future__ import annotations

import argparse
import os
import sys

from . import __version__
from .core.engine import XQVXResult, eval_query, eval_xq
from .core.vdoc import VectorizedDocument
from .datasets.synth import xmark_like_xml
from .errors import ReproError
from .storage.disk import PageFile

USAGE_ERROR = 2


def _load(path: str, pool: int | None = None) -> VectorizedDocument:
    if PageFile.is_page_file(path):
        return VectorizedDocument.open(path, pool_pages=pool)
    with open(path, "r", encoding="utf-8") as f:
        return VectorizedDocument.from_xml(f.read())


def _usage_error(message: str) -> int:
    print(f"repro-xq: error: {message}", file=sys.stderr)
    return USAGE_ERROR


def _print_io_stats(vdoc: VectorizedDocument) -> None:
    if vdoc.pool is None:
        print("io: document is memory-resident (no buffer pool)",
              file=sys.stderr)
        return
    stats = vdoc.io_stats()
    print("io: " + "  ".join(f"{k}={v}" for k, v in stats.items()),
          file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro-xq",
        description="Vectorized XML store and query engine (ICDE 2005 repro)",
    )
    ap.add_argument("--version", action="version", version=f"repro-xq {__version__}")
    sub = ap.add_subparsers(dest="cmd", required=True)

    pool_help = ("buffer pool size in pages for .vdoc inputs "
                 "(default: unbounded)")

    p_stats = sub.add_parser("stats", help="vectorization statistics")
    p_stats.add_argument("file")
    p_stats.add_argument("--pool", type=int, default=None, help=pool_help)

    p_query = sub.add_parser("query", help="evaluate an XPath or XQ query")
    p_query.add_argument("file")
    p_query.add_argument("xpath", metavar="query",
                         help="an XPath (starts with '/') or an XQ FLWR "
                              "expression")
    p_query.add_argument("--mode", choices=("vx", "naive"), default="vx")
    p_query.add_argument("--values", action="store_true",
                         help="XPath only: print text values of text-path "
                              "results")
    p_query.add_argument("--canonical", action="store_true",
                         help="XPath only: print canonical content of each "
                              "result")
    p_query.add_argument("--plan", action="store_true",
                         help="XQ only: print the heuristic reduction plan")
    p_query.add_argument("--pool", type=int, default=None, help=pool_help)
    p_query.add_argument("--io-stats", action="store_true",
                         help="print buffer-pool I/O counters on stderr "
                              "after the query")

    p_rec = sub.add_parser("reconstruct",
                           help="vectorize, then decompress back to XML")
    p_rec.add_argument("file")
    p_rec.add_argument("--pool", type=int, default=None, help=pool_help)

    p_save = sub.add_parser("save",
                            help="vectorize FILE and write the paged "
                                 "on-disk vdoc format to OUT")
    p_save.add_argument("file")
    p_save.add_argument("out")
    p_save.add_argument("--page-size", type=int, default=None,
                        help="page size in bytes (default 4096)")

    p_open = sub.add_parser("open",
                            help="open a saved vdoc and print its on-disk "
                                 "catalog (no vector is materialized)")
    p_open.add_argument("file")
    p_open.add_argument("--pool", type=int, default=None, help=pool_help)

    p_check = sub.add_parser("check",
                             help="verify a .vdoc page file: header, page "
                                  "checksums, heap chains, catalog cross-"
                                  "checks; exits nonzero on any finding")
    p_check.add_argument("file")
    p_check.add_argument("--deep", action="store_true",
                         help="additionally UTF-8-decode every value and "
                              "report orphaned pages")

    p_gen = sub.add_parser("gen", help="emit a synthetic XMark-like document")
    p_gen.add_argument("n_people", type=int)
    p_gen.add_argument("--seed", type=int, default=0)

    args = ap.parse_args(argv)
    try:
        if args.cmd == "stats":
            stats = _load(args.file, args.pool).stats()
            for k, v in stats.items():
                print(f"{k:16} {v}")
        elif args.cmd == "query":
            text = args.xpath.lstrip()
            if text.startswith("/"):
                if args.plan:
                    return _usage_error(
                        "--plan is only valid for XQ queries, not XPath")
                vdoc = _load(args.file, args.pool)
                result = eval_query(vdoc, text, mode=args.mode)
                print(f"count {result.count()}")
                if args.values:
                    for v in result.text_values():
                        print(v)
                if args.canonical:
                    for item in result.canonical():
                        print(item)
            else:
                for flag, on in (("--values", args.values),
                                 ("--canonical", args.canonical)):
                    if on:
                        return _usage_error(
                            f"{flag} is only valid for XPath queries, "
                            f"not XQ")
                vdoc = _load(args.file, args.pool)
                result = eval_xq(vdoc, text, mode=args.mode)
                if args.plan and isinstance(result, XQVXResult):
                    print(result.plan.explain(), file=sys.stderr)
                print(result.to_xml())
            if args.io_stats:
                _print_io_stats(vdoc)
        elif args.cmd == "reconstruct":
            sys.stdout.write(_load(args.file, args.pool).to_xml())
        elif args.cmd == "save":
            with open(args.file, "r", encoding="utf-8") as f:
                vdoc = VectorizedDocument.from_xml(f.read())
            summary = vdoc.save(args.out, page_size=args.page_size)
            for k, v in summary.items():
                print(f"{k:16} {v}")
        elif args.cmd == "open":
            vdoc = VectorizedDocument.open(args.file, pool_pages=args.pool)
            with vdoc:
                print(f"{'page_size':16} {vdoc.file.page_size}")
                print(f"{'pages':16} {vdoc.file.n_pages}")
                print(f"{'skeleton_nodes':16} {len(vdoc.store)}")
                print(f"{'vectors':16} {len(vdoc.vectors)}")
                print(f"{'values':16} {sum(len(v) for v in vdoc.vectors.values())}")
                print(f"{'vector_pages':16} "
                      f"{sum(v.n_pages for v in vdoc.vectors.values())}")
        elif args.cmd == "check":
            from .storage.fsck import verify_vdoc

            findings = verify_vdoc(args.file, deep=args.deep)
            for finding in findings:
                print(finding)
            if findings:
                print(f"{args.file}: {len(findings)} integrity "
                      f"finding(s)", file=sys.stderr)
                return 1
            mode = "deep" if args.deep else "shallow"
            print(f"{args.file}: ok ({mode} check, no findings)")
        elif args.cmd == "gen":
            if args.n_people < 0:
                print("repro-xq: error: N must be >= 0", file=sys.stderr)
                return 1
            sys.stdout.write(xmark_like_xml(args.n_people, seed=args.seed))
    except BrokenPipeError:
        # downstream consumer (head, etc.) closed the pipe — not an error
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    except (ReproError, OSError) as exc:
        print(f"repro-xq: error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
