"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by repro."""


class ParseError(ReproError):
    """Malformed XML input."""

    def __init__(self, message: str, pos: int | None = None):
        if pos is not None:
            message = f"{message} (at offset {pos})"
        super().__init__(message)
        self.pos = pos


class XPathSyntaxError(ReproError):
    """Malformed XPath expression."""


class XQSyntaxError(ReproError):
    """Malformed XQ (FLWR) query."""


class XQCompileError(ReproError):
    """A well-formed XQ query that cannot be compiled to a query graph
    (unknown variable, cyclic let chain, misplaced text/attribute step)."""


class StorageError(ReproError):
    """On-disk storage failure: corrupt page file, buffer pool exhaustion
    (every frame pinned), or pin/unpin misuse."""


class DecompressionForbiddenError(ReproError):
    """Skeleton decompression attempted inside a forbid_decompression() block.

    The vectorized evaluator must never reconstruct the document tree; the
    engine wraps evaluation in this guard so a regression fails loudly.
    """


class EngineInvariantError(ReproError):
    """A query-engine invariant was violated (e.g. a vector scanned twice)."""
