"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by repro."""


class ParseError(ReproError):
    """Malformed XML input."""

    def __init__(self, message: str, pos: int | None = None):
        if pos is not None:
            message = f"{message} (at offset {pos})"
        super().__init__(message)
        self.pos = pos


class XPathSyntaxError(ReproError):
    """Malformed XPath expression."""


class XQSyntaxError(ReproError):
    """Malformed XQ (FLWR) query."""


class XQCompileError(ReproError):
    """A well-formed XQ query that cannot be compiled to a query graph
    (unknown variable, cyclic let chain, misplaced text/attribute step)."""


class StorageError(ReproError):
    """On-disk storage failure: corrupt page file, buffer pool exhaustion
    (every frame pinned), or pin/unpin misuse."""


class PoolExhaustedError(StorageError):
    """Every buffer-pool frame holds a pinned page, so nothing can be
    evicted to make room.  This is *overload*, not corruption: admission
    control sheds load (HTTP 503) on it instead of treating it as a broken
    file.  Carries ``capacity`` (frame count) and ``pinned`` (total pin
    count across those frames) for the error report."""

    def __init__(self, capacity: int, pinned: int):
        super().__init__(
            f"buffer pool exhausted: all {capacity} frames pinned "
            f"({pinned} pins held)")
        self.capacity = capacity
        self.pinned = pinned


class CorruptDataError(StorageError):
    """On-disk bytes failed validation: a page checksum mismatch, a slot
    entry pointing outside its page, a broken heap chain, an undecodable
    record.  Carries the location when known (``page``, ``slot``,
    ``offset``) so fsck and error reports can name the damaged spot."""

    def __init__(self, message: str, page: int | None = None,
                 slot: int | None = None, offset: int | None = None):
        where = []
        if page is not None:
            where.append(f"page {page}")
        if slot is not None:
            where.append(f"slot {slot}")
        if offset is not None:
            where.append(f"offset {offset}")
        if where:
            message = f"{', '.join(where)}: {message}"
        super().__init__(message)
        self.page = page
        self.slot = slot
        self.offset = offset


class DeadlineExceededError(ReproError):
    """A query ran past its cooperative deadline and was unwound.

    Raised from :meth:`~repro.core.context.EvalContext.checkpoint` — the
    cheap check the scan/reduction/builder loops and buffer-pool faults
    call — so an expired request stops at the next checkpoint with zero
    leaked pins, the pool intact and every sibling request unaffected.
    This is *cancellation*, not corruption or overload: the service maps
    it to HTTP 504.  Carries the budget (seconds) and the checkpoint
    index at which the request died."""

    def __init__(self, budget: float | None, checkpoint: int):
        what = (f"{budget:.3f}s deadline" if budget is not None
                else "deadline")
        super().__init__(
            f"query exceeded its {what} (checkpoint {checkpoint})")
        self.budget = budget
        self.checkpoint = checkpoint


class DecompressionForbiddenError(ReproError):
    """Skeleton decompression attempted inside a forbid_decompression() block.

    The vectorized evaluator must never reconstruct the document tree; the
    engine wraps evaluation in this guard so a regression fails loudly.
    """


class EngineInvariantError(ReproError):
    """A query-engine invariant was violated (e.g. a vector scanned twice)."""
