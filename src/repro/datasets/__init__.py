"""Dataset generators (XMark / TreeBank / MedLine / SkyServer to come;
see ROADMAP.md).  Currently: a synthetic XMark-like generator."""

from .synth import xmark_like_xml

__all__ = ["xmark_like_xml"]
