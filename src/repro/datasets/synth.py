"""Synthetic XMark-like document generator for tests and benchmarks.

Miniature auction-site documents with the *structural* character the paper
relies on: highly regular element structure (so hash-consing collapses the
skeleton to a few dozen nodes regardless of document size) with varying
text values (so data vectors grow linearly).  A small amount of structural
irregularity — optional fields — keeps run-length indexes honest.
"""

from __future__ import annotations

import random

_REGIONS = ("africa", "asia", "europe", "namerica")
_LOCATIONS = (
    "United States", "Germany", "Japan", "Kenya", "Brazil", "Australia",
)
_EDUCATION = ("High School", "College", "Graduate School")
_INTERESTS = ("auctions", "astronomy", "databases", "music", "hiking")


def xmark_like_xml(n_people: int, seed: int = 0,
                   regions: tuple[str, ...] = _REGIONS) -> str:
    """An auction-site document with ``n_people`` people, a proportional
    number of items and closed auctions (~13 nodes per person overall).

    ``regions`` controls how many distinct region labels the items are
    spread over — each label is a distinct concrete path in the dataguide,
    so more regions means more path combos for a ``//item`` variable."""
    rng = random.Random(seed)
    n_items = max(1, n_people // 2)
    n_auctions = max(1, n_people // 4)
    out: list[str] = ["<site>"]

    out.append("<regions>")
    for r, region in enumerate(regions):
        out.append(f"<{region}>")
        for i in range(r, n_items, len(regions)):
            location = _LOCATIONS[rng.randrange(len(_LOCATIONS))]
            quantity = rng.randint(1, 9)
            out.append(
                f'<item id="item{i}">'
                f"<location>{location}</location>"
                f"<quantity>{quantity}</quantity>"
                f"<name>thing {i}</name>"
                f"<payment>Cash</payment>"
                "</item>"
            )
        out.append(f"</{region}>")
    out.append("</regions>")

    out.append("<people>")
    for i in range(n_people):
        age = rng.randint(18, 80)
        out.append(
            f'<person id="person{i}">'
            f"<name>name {i}</name>"
            f"<emailaddress>mailto:person{i}@example.com</emailaddress>"
        )
        if rng.random() < 0.3:
            out.append(f"<phone>+1 555 {i:07d}</phone>")
        out.append(f"<profile><age>{age}</age>")
        if rng.random() < 0.5:
            out.append(
                f"<education>{_EDUCATION[rng.randrange(len(_EDUCATION))]}"
                "</education>"
            )
        for _ in range(rng.randrange(3)):
            out.append(
                f"<interest>{_INTERESTS[rng.randrange(len(_INTERESTS))]}"
                "</interest>"
            )
        out.append("</profile></person>")
    out.append("</people>")

    out.append("<closed_auctions>")
    for i in range(n_auctions):
        price = rng.randint(5, 500)
        buyer = rng.randrange(n_people) if n_people else 0
        out.append(
            "<closed_auction>"
            f"<price>{price}</price>"
            f"<buyer>person{buyer}</buyer>"
            f"<date>2005-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}</date>"
            "</closed_auction>"
        )
    out.append("</closed_auctions>")

    out.append("</site>")
    return "".join(out)


def manypath_xml(n_people: int, n_regions: int = 16, seed: int = 0) -> str:
    """A structurally wide document: items spread over ``n_regions``
    distinct region labels, so descendant variables (``//item``) expand to
    ``n_regions`` concrete paths and a multi-variable query's combo table
    multiplies accordingly.  This is the regime where batched combo
    execution pays: shared vectors would otherwise be swept once per
    combo."""
    regions = tuple(f"region{r:02d}" for r in range(n_regions))
    return xmark_like_xml(n_people, seed=seed, regions=regions)
