"""Shim for editable installs in environments without the ``wheel``
package (``python setup.py develop``); everything lives in pyproject.toml."""

from setuptools import setup

setup()
